//! Staggered client placement relative to the primary replica.

use mayflower_net::{HostId, Topology};
use mayflower_simcore::SimRng;
use serde::{Deserialize, Serialize};

/// The staggered probability distribution of client locations (§6.1.1,
/// after Hedera): a client lands in the primary replica's rack with
/// probability `R`, elsewhere in its pod with probability `P`, and in
/// another pod with probability `O = 1 − R − P`.
///
/// Figure 5 sweeps four of these: `(0.5, 0.3, 0.2)`, `(0.3, 0.5,
/// 0.2)`, `(0.2, 0.3, 0.5)` and `(0.33, 0.33, 0.33)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalityDist {
    /// Probability of the client being in the primary's rack.
    pub same_rack: f64,
    /// Probability of the client being in the primary's pod but
    /// another rack.
    pub same_pod: f64,
}

impl LocalityDist {
    /// Creates a distribution `(R, P, O = 1 − R − P)`.
    ///
    /// # Panics
    ///
    /// Panics if probabilities are negative or sum above 1.
    #[must_use]
    pub fn new(same_rack: f64, same_pod: f64) -> LocalityDist {
        assert!(
            same_rack >= 0.0 && same_pod >= 0.0,
            "probabilities must be non-negative"
        );
        assert!(
            same_rack + same_pod <= 1.0 + 1e-12,
            "R + P must not exceed 1"
        );
        LocalityDist {
            same_rack,
            same_pod,
        }
    }

    /// `(0.5, 0.3, 0.2)` — the paper's "common scenario": half the
    /// clients co-located with the primary's rack (Figures 4, 6a, 7).
    #[must_use]
    pub fn rack_heavy() -> LocalityDist {
        LocalityDist::new(0.5, 0.3)
    }

    /// `(0.3, 0.5, 0.2)` — load concentrated on the aggregation tier.
    #[must_use]
    pub fn pod_heavy() -> LocalityDist {
        LocalityDist::new(0.3, 0.5)
    }

    /// `(0.2, 0.3, 0.5)` — half the reads traverse the core tier
    /// (Figure 6b).
    #[must_use]
    pub fn core_heavy() -> LocalityDist {
        LocalityDist::new(0.2, 0.3)
    }

    /// `(0.33, 0.33, 0.33)` — clients anywhere with equal probability.
    #[must_use]
    pub fn uniform() -> LocalityDist {
        LocalityDist::new(1.0 / 3.0, 1.0 / 3.0)
    }

    /// The cross-pod probability `O`.
    #[must_use]
    pub fn other_pod(&self) -> f64 {
        (1.0 - self.same_rack - self.same_pod).max(0.0)
    }

    /// Draws a client host relative to `primary`.
    ///
    /// The client is never the primary host itself — the paper ignores
    /// machine-local reads ("we ignore this scenario due to lack of
    /// network activity", §6.4).
    ///
    /// # Panics
    ///
    /// Panics if the topology cannot satisfy the drawn tier (e.g. a
    /// single-rack pod when a same-pod client is drawn).
    pub fn place_client(&self, topo: &Topology, primary: HostId, rng: &mut SimRng) -> HostId {
        let u = rng.uniform();
        let rack = topo.rack_of(primary);
        let pod = topo.pod_of(primary);
        if u < self.same_rack {
            let candidates: Vec<HostId> = topo
                .hosts_in_rack(rack)
                .iter()
                .copied()
                .filter(|h| *h != primary)
                .collect();
            assert!(!candidates.is_empty(), "rack too small for a client");
            *rng.choose(&candidates)
        } else if u < self.same_rack + self.same_pod {
            let candidates: Vec<HostId> = topo
                .racks_in_pod(pod)
                .iter()
                .filter(|r| **r != rack)
                .flat_map(|r| topo.hosts_in_rack(*r).iter().copied())
                .collect();
            assert!(!candidates.is_empty(), "pod too small for a client");
            *rng.choose(&candidates)
        } else {
            let candidates: Vec<HostId> = topo
                .hosts()
                .into_iter()
                .filter(|h| topo.pod_of(*h) != pod)
                .collect();
            assert!(!candidates.is_empty(), "need a second pod for a client");
            *rng.choose(&candidates)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mayflower_net::{Locality, TreeParams};

    #[test]
    fn empirical_distribution_matches() {
        let t = mayflower_net::Topology::three_tier(&TreeParams::paper_testbed());
        let dist = LocalityDist::rack_heavy();
        let mut rng = SimRng::seed_from(1);
        let primary = HostId(10);
        let n = 50_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            let c = dist.place_client(&t, primary, &mut rng);
            match Locality::classify(&t, c, primary) {
                Locality::SameRack => counts[0] += 1,
                Locality::SamePod => counts[1] += 1,
                Locality::CrossPod => counts[2] += 1,
                Locality::SameHost => panic!("client must not be the primary"),
            }
        }
        let f = |c: usize| c as f64 / n as f64;
        assert!((f(counts[0]) - 0.5).abs() < 0.01);
        assert!((f(counts[1]) - 0.3).abs() < 0.01);
        assert!((f(counts[2]) - 0.2).abs() < 0.01);
    }

    #[test]
    fn presets_sum_to_one() {
        for d in [
            LocalityDist::rack_heavy(),
            LocalityDist::pod_heavy(),
            LocalityDist::core_heavy(),
            LocalityDist::uniform(),
        ] {
            let total = d.same_rack + d.same_pod + d.other_pod();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn client_is_never_the_primary() {
        let t = mayflower_net::Topology::three_tier(&TreeParams::paper_testbed());
        let dist = LocalityDist::new(1.0, 0.0); // always same rack
        let mut rng = SimRng::seed_from(2);
        for _ in 0..1000 {
            assert_ne!(dist.place_client(&t, HostId(0), &mut rng), HostId(0));
        }
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn overfull_distribution_rejected() {
        let _ = LocalityDist::new(0.8, 0.5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_probability_rejected() {
        let _ = LocalityDist::new(-0.1, 0.5);
    }
}
