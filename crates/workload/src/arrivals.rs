//! Poisson job-arrival process.

use mayflower_simcore::{SimRng, SimTime};

/// A Poisson arrival process: exponential inter-arrival times with a
/// configurable aggregate rate.
///
/// The paper specifies arrivals per server: "the job arrival (λ) rate
/// is defined per server. Thus the job arrival rate of 0.07 means
/// that, system wide, about 5 new read jobs are started every second"
/// (§6.5, on 64 hosts). Use [`PoissonArrivals::per_server`] for that
/// parameterization.
///
/// # Example
///
/// ```
/// use mayflower_simcore::SimRng;
/// use mayflower_workload::PoissonArrivals;
///
/// let rng = SimRng::seed_from(7);
/// let mut arrivals = PoissonArrivals::per_server(0.07, 64, rng);
/// let t1 = arrivals.next_arrival();
/// let t2 = arrivals.next_arrival();
/// assert!(t2 > t1);
/// ```
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rate: f64,
    now: SimTime,
    rng: SimRng,
}

impl PoissonArrivals {
    /// Creates a process with the given aggregate rate (events/sec).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive and finite.
    #[must_use]
    pub fn new(rate: f64, rng: SimRng) -> PoissonArrivals {
        assert!(
            rate.is_finite() && rate > 0.0,
            "arrival rate must be positive"
        );
        PoissonArrivals {
            rate,
            now: SimTime::ZERO,
            rng,
        }
    }

    /// Creates a process from a per-server rate λ and a server count —
    /// the paper's parameterization (aggregate rate `λ × servers`).
    #[must_use]
    pub fn per_server(lambda: f64, servers: usize, rng: SimRng) -> PoissonArrivals {
        PoissonArrivals::new(lambda * servers as f64, rng)
    }

    /// The aggregate rate, events per second.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Draws the next arrival instant (strictly increasing).
    pub fn next_arrival(&mut self) -> SimTime {
        let dt = self.rng.exponential(self.rate);
        self.now += SimTime::from_secs(dt);
        self.now
    }

    /// Generates all arrivals up to `horizon`, in order.
    pub fn arrivals_until(&mut self, horizon: SimTime) -> Vec<SimTime> {
        let mut out = Vec::new();
        loop {
            let t = self.next_arrival();
            if t > horizon {
                break;
            }
            out.push(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_strictly_increasing() {
        let mut p = PoissonArrivals::new(10.0, SimRng::seed_from(1));
        let mut last = SimTime::ZERO;
        for _ in 0..1000 {
            let t = p.next_arrival();
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn mean_rate_matches() {
        // λ = 0.07/server × 64 servers = 4.48 jobs/sec: "about 5 new
        // read jobs every second".
        let mut p = PoissonArrivals::per_server(0.07, 64, SimRng::seed_from(2));
        let horizon = SimTime::from_secs(10_000.0);
        let n = p.arrivals_until(horizon).len() as f64;
        let rate = n / 10_000.0;
        assert!((rate - 4.48).abs() < 0.15, "observed rate {rate}");
    }

    #[test]
    fn arrivals_until_respects_horizon() {
        let mut p = PoissonArrivals::new(100.0, SimRng::seed_from(3));
        let horizon = SimTime::from_secs(1.0);
        for t in p.arrivals_until(horizon) {
            assert!(t <= horizon);
        }
    }

    #[test]
    fn deterministic_with_seed() {
        let mut a = PoissonArrivals::new(5.0, SimRng::seed_from(9));
        let mut b = PoissonArrivals::new(5.0, SimRng::seed_from(9));
        for _ in 0..100 {
            assert_eq!(a.next_arrival(), b.next_arrival());
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = PoissonArrivals::new(0.0, SimRng::seed_from(0));
    }

    #[test]
    fn interarrival_variance_is_exponential() {
        // For an exponential distribution, std dev == mean.
        let mut p = PoissonArrivals::new(2.0, SimRng::seed_from(4));
        let mut prev = SimTime::ZERO;
        let mut gaps = Vec::new();
        for _ in 0..50_000 {
            let t = p.next_arrival();
            gaps.push(t.secs_since(prev));
            prev = t;
        }
        let mean: f64 = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var: f64 = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        assert!((mean - 0.5).abs() < 0.02);
        assert!((var.sqrt() - 0.5).abs() < 0.02);
    }
}
