//! Zipf-distributed sampling for file popularity.

use mayflower_simcore::SimRng;

/// A Zipf distribution over ranks `0..n`: rank `k` (0-based) has
/// probability proportional to `1 / (k+1)^s`.
///
/// The paper's workload draws file popularity from Zipf with skewness
/// ρ = 1.1 (§6.1.1, following Scarlett's observation of skewed content
/// popularity in MapReduce clusters).
///
/// Sampling is by inverse-CDF binary search over a precomputed table —
/// O(n) setup, O(log n) per sample, exact.
///
/// # Example
///
/// ```
/// use mayflower_simcore::SimRng;
/// use mayflower_workload::Zipf;
///
/// let zipf = Zipf::new(1000, 1.1);
/// let mut rng = SimRng::seed_from(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    s: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/NaN.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0 && !s.is_nan(), "Zipf exponent must be >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf, s }
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is degenerate (single rank).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false // construction guarantees n > 0
    }

    /// The skewness exponent.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// The probability of rank `k` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[must_use]
    pub fn pmf(&self, k: usize) -> f64 {
        let lo = if k == 0 { 0.0 } else { self.cdf[k - 1] };
        self.cdf[k] - lo
    }

    /// Draws a rank in `0..n`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.uniform();
        // First index with cdf >= u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf has no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.1);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_zero_is_most_popular() {
        let z = Zipf::new(50, 1.1);
        for k in 1..50 {
            assert!(z.pmf(0) > z.pmf(k));
        }
        // Monotone decreasing.
        for k in 1..50 {
            assert!(z.pmf(k - 1) >= z.pmf(k));
        }
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn empirical_frequencies_match_pmf() {
        let z = Zipf::new(20, 1.1);
        let mut rng = SimRng::seed_from(42);
        let n = 200_000;
        let mut counts = [0usize; 20];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, count) in counts.iter().enumerate() {
            let emp = *count as f64 / n as f64;
            let expected = z.pmf(k);
            assert!(
                (emp - expected).abs() < 0.01,
                "rank {k}: {emp} vs {expected}"
            );
        }
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 1.1);
        let mut rng = SimRng::seed_from(3);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Zipf::new(0, 1.1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Samples are always valid ranks, and the CDF is monotone.
        #[test]
        fn samples_in_range(n in 1usize..500, s in 0.0f64..3.0, seed in any::<u64>()) {
            let z = Zipf::new(n, s);
            let mut rng = SimRng::seed_from(seed);
            for _ in 0..50 {
                prop_assert!(z.sample(&mut rng) < n);
            }
            for k in 1..n {
                prop_assert!(z.pmf(k - 1) >= z.pmf(k) - 1e-12);
            }
        }
    }
}
