//! File size distributions.
//!
//! The paper's workload assumption (§3.1): "file sizes typically range
//! from hundreds of megabytes to tens of gigabytes", read as large
//! sequential whole-file fetches. The evaluation uses fixed 256 MB
//! blocks; the heterogeneous distributions here let experiments
//! exercise multi-chunk files and mixed transfer lengths.

use mayflower_simcore::SimRng;
use serde::{Deserialize, Serialize};

/// How file sizes are drawn at population-generation time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FileSizeDist {
    /// Every file is exactly this many bits (the evaluation's 256 MB
    /// default).
    Fixed(f64),
    /// Uniform in `[lo, hi]` bits.
    Uniform {
        /// Smallest size, bits.
        lo: f64,
        /// Largest size, bits.
        hi: f64,
    },
    /// Log-uniform in `[lo, hi]` bits: equal probability mass per
    /// decade, matching "hundreds of megabytes to tens of gigabytes"
    /// (most files are small-ish, a long tail is huge).
    LogUniform {
        /// Smallest size, bits.
        lo: f64,
        /// Largest size, bits.
        hi: f64,
    },
}

impl FileSizeDist {
    /// The paper's fixed 256 MB block.
    #[must_use]
    pub fn paper_default() -> FileSizeDist {
        FileSizeDist::Fixed(256.0 * 8e6)
    }

    /// The §3.1 workload description: log-uniform from 100 MB to 10 GB.
    #[must_use]
    pub fn section_3_1() -> FileSizeDist {
        FileSizeDist::LogUniform {
            lo: 100.0 * 8e6,
            hi: 10_000.0 * 8e6,
        }
    }

    /// Draws one file size in bits.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are non-positive or inverted.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        match *self {
            FileSizeDist::Fixed(bits) => {
                assert!(bits > 0.0, "fixed size must be positive");
                bits
            }
            FileSizeDist::Uniform { lo, hi } => {
                assert!(lo > 0.0 && hi >= lo, "need 0 < lo <= hi");
                if hi == lo {
                    lo
                } else {
                    rng.uniform_range(lo, hi)
                }
            }
            FileSizeDist::LogUniform { lo, hi } => {
                assert!(lo > 0.0 && hi >= lo, "need 0 < lo <= hi");
                if hi == lo {
                    lo
                } else {
                    (rng.uniform_range(lo.ln(), hi.ln())).exp()
                }
            }
        }
    }

    /// The distribution's mean, bits (exact).
    #[must_use]
    pub fn mean(&self) -> f64 {
        match *self {
            FileSizeDist::Fixed(bits) => bits,
            FileSizeDist::Uniform { lo, hi } => (lo + hi) / 2.0,
            FileSizeDist::LogUniform { lo, hi } => {
                if (hi - lo).abs() < f64::EPSILON {
                    lo
                } else {
                    (hi - lo) / (hi.ln() - lo.ln())
                }
            }
        }
    }
}

impl Default for FileSizeDist {
    fn default() -> FileSizeDist {
        FileSizeDist::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_constant() {
        let d = FileSizeDist::Fixed(42.0);
        let mut rng = SimRng::seed_from(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 42.0);
        }
        assert_eq!(d.mean(), 42.0);
    }

    #[test]
    fn uniform_stays_in_range_and_matches_mean() {
        let d = FileSizeDist::Uniform { lo: 10.0, hi: 20.0 };
        let mut rng = SimRng::seed_from(2);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let s = d.sample(&mut rng);
            assert!((10.0..=20.0).contains(&s));
            sum += s;
        }
        assert!((sum / f64::from(n) - 15.0).abs() < 0.1);
    }

    #[test]
    fn log_uniform_spreads_decades() {
        let d = FileSizeDist::LogUniform {
            lo: 1.0,
            hi: 1000.0,
        };
        let mut rng = SimRng::seed_from(3);
        let n = 60_000;
        let mut per_decade = [0usize; 3];
        for _ in 0..n {
            let s = d.sample(&mut rng);
            assert!((1.0..=1000.0).contains(&s));
            let decade = (s.log10().floor() as usize).min(2);
            per_decade[decade] += 1;
        }
        // Roughly a third of the mass per decade.
        for c in per_decade {
            let frac = c as f64 / f64::from(n);
            assert!((frac - 1.0 / 3.0).abs() < 0.02, "decade fraction {frac}");
        }
    }

    #[test]
    fn log_uniform_mean_is_analytic() {
        let d = FileSizeDist::LogUniform {
            lo: 1.0,
            hi: std::f64::consts::E,
        };
        // mean = (e − 1) / 1 = 1.718...
        assert!((d.mean() - (std::f64::consts::E - 1.0)).abs() < 1e-12);
        let mut rng = SimRng::seed_from(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        assert!((sum / f64::from(n) - d.mean()).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn inverted_range_rejected() {
        let mut rng = SimRng::seed_from(5);
        let _ = FileSizeDist::Uniform { lo: 5.0, hi: 1.0 }.sample(&mut rng);
    }
}
