//! Criterion benches for the Reed-Solomon codec: encode and
//! any-k-of-n decode throughput at the k+m points the storage tier
//! actually uses (4+2, 6+3, 10+4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mayflower_ec::Codec;

const PAYLOAD: usize = 4 << 20; // 4 MiB stripe, a realistic seal unit

fn payload(len: usize) -> Vec<u8> {
    let mut x = 0x243f_6a88_85a3_08d3u64;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 32) as u8
        })
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("ec_encode");
    group.throughput(Throughput::Bytes(PAYLOAD as u64));
    for (k, m) in [(4usize, 2usize), (6, 3), (10, 4)] {
        let codec = Codec::new(k, m);
        let data = payload(PAYLOAD);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{k}+{m}")),
            &data,
            |b, data| b.iter(|| codec.encode_payload(data)),
        );
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("ec_decode_m_lost");
    group.throughput(Throughput::Bytes(PAYLOAD as u64));
    for (k, m) in [(4usize, 2usize), (6, 3), (10, 4)] {
        let codec = Codec::new(k, m);
        let data = payload(PAYLOAD);
        let shards = codec.encode_payload(&data);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{k}+{m}")),
            &shards,
            |b, shards| {
                b.iter(|| {
                    // Worst case: the first m data shards are lost.
                    let mut opts: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
                    for slot in opts.iter_mut().take(m) {
                        *slot = None;
                    }
                    codec.decode_payload(&mut opts, PAYLOAD).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
