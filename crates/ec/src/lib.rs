#![warn(missing_docs)]

//! Deterministic systematic Reed-Solomon erasure coding over GF(2^8).
//!
//! This crate is the arithmetic core of Mayflower's erasure-coded
//! storage tier (DESIGN.md §14): sealed chunks are striped into `k`
//! data fragments plus `m` parity fragments, and any `k` of the
//! `k + m` fragments reconstruct the chunk. It is deliberately
//! dependency-free and allocation-free in its hot kernels so that the
//! filesystem, the recovery pipeline, and the simulator can all share
//! one codec without layering concerns.
//!
//! * [`gf`] — GF(2^8) arithmetic with compile-time `MUL`/`INV` tables
//!   and the slice kernels (`mul_acc_slice`) everything reduces to.
//! * [`matrix`] — small dense matrices: Vandermonde and Cauchy
//!   constructions, Gauss-Jordan inversion.
//! * [`codec`] — [`Codec`]: systematic encode, any-k-of-n reconstruct,
//!   and the payload-level helpers used at seal / degraded-read time.
//!
//! # Example
//!
//! ```
//! use mayflower_ec::Codec;
//!
//! let codec = Codec::new(4, 2); // 4 data + 2 parity
//! let payload = b"the quick brown fox jumps over the lazy dog".to_vec();
//! let shards = codec.encode_payload(&payload);
//!
//! // Lose any two fragments...
//! let mut got: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
//! got[1] = None;
//! got[5] = None;
//!
//! // ...and the payload still decodes byte-identically.
//! assert_eq!(codec.decode_payload(&mut got, payload.len()).unwrap(), payload);
//! ```

pub mod codec;
pub mod gf;
pub mod matrix;

pub use codec::{Codec, EcError, MatrixKind};
pub use matrix::Matrix;
