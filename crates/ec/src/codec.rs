//! The systematic Reed-Solomon codec: `k` data shards, `m` parity
//! shards, any `k` of the `k + m` reconstruct the data.

use crate::gf;
use crate::matrix::Matrix;
use std::fmt;

/// Which construction builds the encode matrix. Both are MDS; they
/// differ only in the parity coefficients (and therefore in which
/// bytes an implementation bug would corrupt — the proptests run
/// both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixKind {
    /// `[I; C]` with a Cauchy parity block — every square submatrix of
    /// a Cauchy matrix is invertible by construction.
    Cauchy,
    /// A raw Vandermonde matrix normalised to systematic form by
    /// multiplying with the inverse of its top `k × k` block.
    Vandermonde,
}

/// Codec errors. Shard-shape violations are errors rather than panics
/// because the shards arrive from remote dataservers at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcError {
    /// Fewer than `k` shards survive; the stripe is unrecoverable.
    TooFewShards {
        /// Shards present.
        have: usize,
        /// Shards required (`k`).
        need: usize,
    },
    /// The shard vector is not `k + m` long.
    WrongShardCount {
        /// Slots provided.
        have: usize,
        /// Slots expected (`k + m`).
        need: usize,
    },
    /// Present shards disagree on length.
    ShardSizeMismatch,
}

impl fmt::Display for EcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcError::TooFewShards { have, need } => {
                write!(f, "too few shards to reconstruct: have {have}, need {need}")
            }
            EcError::WrongShardCount { have, need } => {
                write!(f, "wrong shard count: have {have}, need {need}")
            }
            EcError::ShardSizeMismatch => write!(f, "present shards differ in length"),
        }
    }
}

impl std::error::Error for EcError {}

/// A `(k, m)` systematic Reed-Solomon codec over GF(2^8).
///
/// Construction is deterministic: the same `(k, m, MatrixKind)` always
/// yields the same encode matrix, so fragments written by one process
/// decode in any other.
#[derive(Debug, Clone)]
pub struct Codec {
    k: usize,
    m: usize,
    /// Systematic `(k + m) × k` encode matrix; top block is `I_k`.
    enc: Matrix,
}

impl Codec {
    /// Builds a `(k, m)` codec with the default (Cauchy) matrix.
    ///
    /// # Panics
    /// Panics when `k == 0`, `m == 0`, or `k + m > 255`.
    #[must_use]
    pub fn new(k: usize, m: usize) -> Codec {
        Codec::with_matrix(k, m, MatrixKind::Cauchy)
    }

    /// Builds a `(k, m)` codec with an explicit matrix construction.
    ///
    /// # Panics
    /// Panics when `k == 0`, `m == 0`, or `k + m > 255`.
    #[must_use]
    pub fn with_matrix(k: usize, m: usize, kind: MatrixKind) -> Codec {
        assert!(k > 0, "k must be positive");
        assert!(m > 0, "m must be positive");
        assert!(k + m <= 255, "k + m must fit in GF(256) minus zero");
        let enc = match kind {
            MatrixKind::Cauchy => {
                let parity = Matrix::cauchy(m, k);
                let mut sys = Matrix::zero(k + m, k);
                for i in 0..k {
                    sys.set(i, i, 1);
                }
                for r in 0..m {
                    for c in 0..k {
                        sys.set(k + r, c, parity.get(r, c));
                    }
                }
                sys
            }
            MatrixKind::Vandermonde => {
                let raw = Matrix::vandermonde(k + m, k);
                let top_inv = raw
                    .select_rows(&(0..k).collect::<Vec<_>>())
                    .inverse()
                    .expect("vandermonde top block is invertible");
                raw.mul(&top_inv)
            }
        };
        Codec { k, m, enc }
    }

    /// Data shard count.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Parity shard count.
    #[must_use]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Total shard count `k + m`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.k + self.m
    }

    /// Computes the `m` parity shards from the `k` data shards.
    /// Allocation-free: parity buffers are caller-provided and every
    /// inner step is a [`gf::mul_acc_slice`] over one table row.
    ///
    /// # Panics
    /// Panics when shard counts or lengths disagree.
    pub fn encode(&self, data: &[&[u8]], parity: &mut [&mut [u8]]) {
        assert_eq!(data.len(), self.k, "encode expects k data shards");
        assert_eq!(parity.len(), self.m, "encode expects m parity shards");
        for p in parity.iter_mut() {
            assert_eq!(p.len(), data[0].len(), "shard length mismatch");
        }
        for (r, p) in parity.iter_mut().enumerate() {
            let row = self.enc.row(self.k + r);
            // The first column *scales* into the buffer (no zero-fill
            // pass over the parity shard), the rest accumulate.
            gf::mul_slice(row[0], data[0], p);
            for (c, d) in data.iter().enumerate().skip(1) {
                gf::mul_acc_slice(row[c], d, p);
            }
        }
    }

    /// Fills every `None` slot in `shards` (length `k + m`, data
    /// shards first) from any `k` present shards.
    ///
    /// # Errors
    /// [`EcError::WrongShardCount`] when `shards.len() != k + m`,
    /// [`EcError::TooFewShards`] when fewer than `k` are present, and
    /// [`EcError::ShardSizeMismatch`] when present shards disagree on
    /// length.
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), EcError> {
        let n = self.n();
        if shards.len() != n {
            return Err(EcError::WrongShardCount {
                have: shards.len(),
                need: n,
            });
        }
        let present: Vec<usize> = (0..n).filter(|&i| shards[i].is_some()).collect();
        if present.len() < self.k {
            return Err(EcError::TooFewShards {
                have: present.len(),
                need: self.k,
            });
        }
        let shard_len = shards[present[0]].as_ref().map_or(0, Vec::len);
        if present
            .iter()
            .any(|&i| shards[i].as_ref().map_or(0, Vec::len) != shard_len)
        {
            return Err(EcError::ShardSizeMismatch);
        }

        let missing_data: Vec<usize> = (0..self.k).filter(|&i| shards[i].is_none()).collect();
        if !missing_data.is_empty() {
            // Invert the k×k encode submatrix for the first k present
            // shards; row i of the inverse rebuilds data shard i.
            let chosen = &present[..self.k];
            let dec = self
                .enc
                .select_rows(chosen)
                .inverse()
                .expect("any k rows of an MDS matrix are invertible");
            for &d in &missing_data {
                let mut out = vec![0u8; shard_len];
                for (j, &src) in chosen.iter().enumerate() {
                    let shard = shards[src].as_ref().expect("chosen shards are present");
                    gf::mul_acc_slice(dec.get(d, j), shard, &mut out);
                }
                shards[d] = Some(out);
            }
        }
        // All data shards exist now; recompute any missing parity.
        for r in 0..self.m {
            if shards[self.k + r].is_some() {
                continue;
            }
            let row = self.enc.row(self.k + r).to_vec();
            let mut out = vec![0u8; shard_len];
            for (c, coeff) in row.iter().enumerate() {
                let shard = shards[c].as_ref().expect("data shards reconstructed");
                gf::mul_acc_slice(*coeff, shard, &mut out);
            }
            shards[self.k + r] = Some(out);
        }
        Ok(())
    }

    /// Shard length for a payload of `payload_len` bytes: the payload
    /// is split into `k` equal shards, zero-padding the last.
    #[must_use]
    pub fn shard_len(&self, payload_len: usize) -> usize {
        payload_len.div_ceil(self.k)
    }

    /// Splits `payload` into `k` data shards (zero-padded) and returns
    /// all `k + m` shards. The convenience wrapper around
    /// [`Codec::encode`] used at seal time.
    #[must_use]
    pub fn encode_payload(&self, payload: &[u8]) -> Vec<Vec<u8>> {
        let len = self.shard_len(payload.len());
        let mut shards: Vec<Vec<u8>> = Vec::with_capacity(self.n());
        for i in 0..self.k {
            let start = (i * len).min(payload.len());
            let end = ((i + 1) * len).min(payload.len());
            let mut s = payload[start..end].to_vec();
            s.resize(len, 0);
            shards.push(s);
        }
        let data_refs: Vec<&[u8]> = shards.iter().map(Vec::as_slice).collect();
        let mut parity: Vec<Vec<u8>> = vec![vec![0u8; len]; self.m];
        {
            let mut parity_refs: Vec<&mut [u8]> =
                parity.iter_mut().map(Vec::as_mut_slice).collect();
            self.encode(&data_refs, &mut parity_refs);
        }
        shards.extend(parity);
        shards
    }

    /// Reconstructs the original payload of `payload_len` bytes from
    /// any `k` present shards (data shards first, `None` for missing).
    ///
    /// # Errors
    /// Propagates [`Codec::reconstruct`] errors; additionally returns
    /// [`EcError::ShardSizeMismatch`] when present shards are not
    /// `shard_len(payload_len)` bytes.
    pub fn decode_payload(
        &self,
        shards: &mut [Option<Vec<u8>>],
        payload_len: usize,
    ) -> Result<Vec<u8>, EcError> {
        let want = self.shard_len(payload_len);
        if shards.iter().flatten().any(|s| s.len() != want) {
            return Err(EcError::ShardSizeMismatch);
        }
        self.reconstruct(shards)?;
        let mut out = Vec::with_capacity(payload_len);
        for shard in shards.iter().take(self.k) {
            let shard = shard.as_ref().expect("reconstruct filled all shards");
            let take = want.min(payload_len - out.len());
            out.extend_from_slice(&shard[..take]);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(len: usize) -> Vec<u8> {
        // Deterministic pseudo-random bytes (xorshift), no RNG dep.
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn encode_then_full_decode_round_trips() {
        for kind in [MatrixKind::Cauchy, MatrixKind::Vandermonde] {
            let codec = Codec::with_matrix(4, 2, kind);
            let data = payload(4096 + 17);
            let shards = codec.encode_payload(&data);
            assert_eq!(shards.len(), 6);
            let mut opts: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
            let back = codec.decode_payload(&mut opts, data.len()).unwrap();
            assert_eq!(back, data, "kind={kind:?}");
        }
    }

    #[test]
    fn any_k_of_n_reconstructs() {
        let codec = Codec::new(4, 2);
        let data = payload(1000);
        let shards = codec.encode_payload(&data);
        // Drop every 2-subset of the 6 shards.
        for a in 0..6 {
            for b in (a + 1)..6 {
                let mut opts: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
                opts[a] = None;
                opts[b] = None;
                let back = codec.decode_payload(&mut opts, data.len()).unwrap();
                assert_eq!(back, data, "lost shards {a} and {b}");
                // Reconstruct also restored the lost shards verbatim.
                assert_eq!(opts[a].as_deref(), Some(shards[a].as_slice()));
                assert_eq!(opts[b].as_deref(), Some(shards[b].as_slice()));
            }
        }
    }

    #[test]
    fn too_many_losses_is_an_error() {
        let codec = Codec::new(4, 2);
        let shards = codec.encode_payload(&payload(64));
        let mut opts: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        opts[0] = None;
        opts[2] = None;
        opts[5] = None;
        assert_eq!(
            codec.reconstruct(&mut opts),
            Err(EcError::TooFewShards { have: 3, need: 4 })
        );
    }

    #[test]
    fn shard_shape_violations_are_errors() {
        let codec = Codec::new(3, 2);
        let mut short = vec![Some(vec![0u8; 4]); 4];
        assert_eq!(
            codec.reconstruct(&mut short),
            Err(EcError::WrongShardCount { have: 4, need: 5 })
        );
        let mut ragged = vec![Some(vec![0u8; 4]); 5];
        ragged[3] = Some(vec![0u8; 5]);
        assert_eq!(
            codec.reconstruct(&mut ragged),
            Err(EcError::ShardSizeMismatch)
        );
    }

    #[test]
    fn vandermonde_and_cauchy_are_both_systematic() {
        for kind in [MatrixKind::Cauchy, MatrixKind::Vandermonde] {
            let codec = Codec::with_matrix(5, 3, kind);
            let data = payload(555);
            let shards = codec.encode_payload(&data);
            let len = codec.shard_len(data.len());
            // Data shards are the payload verbatim (plus padding).
            let mut flat: Vec<u8> = shards[..5].concat();
            flat.truncate(data.len());
            assert_eq!(flat, data, "kind={kind:?} systematic property");
            assert_eq!(shards[5].len(), len);
        }
    }

    #[test]
    fn empty_payload_round_trips() {
        let codec = Codec::new(4, 2);
        let shards = codec.encode_payload(&[]);
        assert!(shards.iter().all(Vec::is_empty));
        let mut opts: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        assert_eq!(
            codec.decode_payload(&mut opts, 0).unwrap(),
            Vec::<u8>::new()
        );
    }
}
