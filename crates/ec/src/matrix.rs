//! Small dense matrices over GF(2^8): construction (Vandermonde,
//! Cauchy), Gauss-Jordan inversion, and multiplication. Matrix sizes
//! here are `(k + m) × k` with `k ≤ 255`, so clarity beats asymptotics.

use crate::gf;

/// Row-major matrix over GF(256).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl Matrix {
    /// All-zero `rows × cols` matrix.
    ///
    /// # Panics
    /// Panics when either dimension is zero.
    #[must_use]
    pub fn zero(rows: usize, cols: usize) -> Matrix {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// The `n × n` identity.
    #[must_use]
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// Raw Vandermonde matrix: `V[r][c] = r^c`. Any `cols` rows are
    /// linearly independent because the row indices are distinct field
    /// elements.
    ///
    /// # Panics
    /// Panics when `rows > 256` (row indices must be distinct in
    /// GF(256)) or either dimension is zero.
    #[must_use]
    pub fn vandermonde(rows: usize, cols: usize) -> Matrix {
        assert!(rows <= 256, "vandermonde needs distinct field elements");
        let mut m = Matrix::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, gf::pow(r as u8, c));
            }
        }
        m
    }

    /// `m × k` Cauchy matrix `C[r][c] = 1 / (x_r + y_c)` with
    /// `x_r = k + r` and `y_c = c`: every square submatrix is
    /// invertible, which is exactly the MDS property.
    ///
    /// # Panics
    /// Panics when `parity_rows + k > 256` (the `x` and `y` index sets
    /// must be disjoint field elements) or either dimension is zero.
    #[must_use]
    pub fn cauchy(parity_rows: usize, k: usize) -> Matrix {
        assert!(parity_rows + k <= 256, "cauchy index sets overflow GF(256)");
        let mut m = Matrix::zero(parity_rows, k);
        for r in 0..parity_rows {
            for c in 0..k {
                let x = (k + r) as u8;
                let y = c as u8;
                m.set(r, c, gf::inv(gf::add(x, y)));
            }
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    #[must_use]
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> u8 {
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: u8) {
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[must_use]
    pub fn row(&self, r: usize) -> &[u8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    /// Panics when the inner dimensions disagree.
    #[must_use]
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matrix product dimension mismatch");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for r in 0..self.rows {
            for i in 0..self.cols {
                let a = self.get(r, i);
                if a == 0 {
                    continue;
                }
                for c in 0..rhs.cols {
                    let v = out.get(r, c) ^ gf::mul(a, rhs.get(i, c));
                    out.set(r, c, v);
                }
            }
        }
        out
    }

    /// New matrix made of the given rows of `self`, in order.
    ///
    /// # Panics
    /// Panics when `rows` is empty or any index is out of bounds.
    #[must_use]
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut out = Matrix::zero(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            assert!(r < self.rows, "row index out of bounds");
            for c in 0..self.cols {
                out.set(i, c, self.get(r, c));
            }
        }
        out
    }

    /// Gauss-Jordan inverse; `None` when singular.
    ///
    /// # Panics
    /// Panics when `self` is not square.
    #[must_use]
    pub fn inverse(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "inverse requires a square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Find a pivot at or below the diagonal.
            let pivot = (col..n).find(|&r| a.get(r, col) != 0)?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            let scale = gf::inv(a.get(col, col));
            a.scale_row(col, scale);
            inv.scale_row(col, scale);
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = a.get(r, col);
                if factor != 0 {
                    a.add_scaled_row(col, r, factor);
                    inv.add_scaled_row(col, r, factor);
                }
            }
        }
        Some(inv)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            let tmp = self.get(a, c);
            self.set(a, c, self.get(b, c));
            self.set(b, c, tmp);
        }
    }

    fn scale_row(&mut self, r: usize, factor: u8) {
        for c in 0..self.cols {
            let v = gf::mul(self.get(r, c), factor);
            self.set(r, c, v);
        }
    }

    /// `row[dst] ^= factor · row[src]`.
    fn add_scaled_row(&mut self, src: usize, dst: usize, factor: u8) {
        for c in 0..self.cols {
            let v = self.get(dst, c) ^ gf::mul(factor, self.get(src, c));
            self.set(dst, c, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_inverse_is_identity() {
        let id = Matrix::identity(5);
        assert_eq!(id.inverse().unwrap(), id);
    }

    #[test]
    fn inverse_round_trips() {
        // A Cauchy square is always invertible.
        let c = Matrix::cauchy(4, 4);
        let inv = c.inverse().expect("cauchy square is invertible");
        assert_eq!(c.mul(&inv), Matrix::identity(4));
        assert_eq!(inv.mul(&c), Matrix::identity(4));
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let mut m = Matrix::zero(2, 2);
        m.set(0, 0, 3);
        m.set(0, 1, 5);
        m.set(1, 0, 3);
        m.set(1, 1, 5);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn every_square_cauchy_submatrix_is_invertible() {
        let k = 6;
        let m = 3;
        let c = Matrix::cauchy(m, k);
        // Any single parity row combined with k-1 identity rows must
        // stay invertible — spot-check by dropping each data column in
        // turn against each parity row.
        let mut sys = Matrix::zero(k + m, k);
        for i in 0..k {
            sys.set(i, i, 1);
        }
        for r in 0..m {
            for col in 0..k {
                sys.set(k + r, col, c.get(r, col));
            }
        }
        for lost in 0..k {
            for parity in 0..m {
                let rows: Vec<usize> = (0..k).filter(|&i| i != lost).chain([k + parity]).collect();
                assert!(
                    sys.select_rows(&rows).inverse().is_some(),
                    "lost={lost} parity={parity}"
                );
            }
        }
    }
}
