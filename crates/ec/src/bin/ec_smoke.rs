//! Release-mode codec throughput smoke: measures systematic encode and
//! worst-case (m data shards lost) decode at k+m ∈ {4+2, 6+3, 10+4}
//! and writes `BENCH_ec.json` to the repo root.
//!
//! Companion to the Criterion benches in `benches/codec.rs`: criterion
//! is a dev-dependency, so this binary hand-rolls its timing with
//! `std::time::Instant` and emits a small JSON baseline the CI driver
//! can diff across PRs.

use std::time::Instant;

use mayflower_ec::Codec;

const PAYLOAD: usize = 4 << 20; // 4 MiB stripe per measured call

fn payload(len: usize) -> Vec<u8> {
    let mut x = 0x243f_6a88_85a3_08d3u64;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 32) as u8
        })
        .collect()
}

/// Median of `iters` timed runs of `f`, in nanoseconds per call.
///
/// A few untimed warmup calls run first so the measurement reflects
/// steady-state throughput rather than allocator/page-fault cold start
/// (glibc's mmap threshold adapts only after the first large frees).
fn median_ns<F: FnMut() -> u64>(iters: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = Vec::with_capacity(iters);
    let mut sink = 0u64;
    for _ in 0..3 {
        sink = sink.wrapping_add(f());
    }
    for _ in 0..iters {
        let start = Instant::now();
        sink = sink.wrapping_add(f());
        samples.push(start.elapsed().as_nanos() as f64);
    }
    std::hint::black_box(sink);
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn mb_per_s(ns_per_call: f64) -> f64 {
    (PAYLOAD as f64 / 1e6) / (ns_per_call / 1e9)
}

fn main() {
    let iters = 20;
    let data = payload(PAYLOAD);
    let mut entries = Vec::new();

    for (k, m) in [(4usize, 2usize), (6, 3), (10, 4)] {
        let codec = Codec::new(k, m);
        let encode_ns = median_ns(iters, || {
            let shards = codec.encode_payload(&data);
            shards.len() as u64
        });
        let shards = codec.encode_payload(&data);
        let decode_ns = median_ns(iters, || {
            // Worst case: the first m data shards are lost.
            let mut opts: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
            for slot in opts.iter_mut().take(m) {
                *slot = None;
            }
            let back = codec.decode_payload(&mut opts, PAYLOAD).expect("decode");
            back.len() as u64
        });
        let enc_mb = mb_per_s(encode_ns);
        let dec_mb = mb_per_s(decode_ns);
        println!("k+m={k:>2}+{m}  encode={enc_mb:>8.1} MB/s  decode(m lost)={dec_mb:>8.1} MB/s");
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"k\": {},\n",
                "      \"m\": {},\n",
                "      \"encode_mb_s\": {:.1},\n",
                "      \"decode_degraded_mb_s\": {:.1}\n",
                "    }}"
            ),
            k, m, enc_mb, dec_mb
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"ec_codec\",\n  \"payload_bytes\": {PAYLOAD},\n  \"iters_per_point\": {iters},\n  \"unit\": \"mb_per_s_median\",\n  \"points\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ec.json");
    std::fs::write(out, &json).expect("write BENCH_ec.json");
    println!("wrote {out}");
}
