//! GF(2^8) arithmetic with compile-time tables.
//!
//! The field is GF(256) with the AES-adjacent primitive polynomial
//! x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the conventional choice for
//! Reed-Solomon storage codes. All tables are built by `const fn` at
//! compile time, so every operation is a pure array lookup: no lazy
//! initialisation, no locks, identical results on every platform.

/// The primitive polynomial (x^8 + x^4 + x^3 + x^2 + 1), reduced.
const POLY: u16 = 0x11d;

const fn build_exp_log() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        // Doubled table: exp[i + 255] == exp[i] lets mul() skip the
        // `mod 255` reduction on the summed logs.
        exp[i + 255] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
        i += 1;
    }
    exp[510] = exp[0];
    exp[511] = exp[1];
    (exp, log)
}

const TABLES: ([u8; 512], [u8; 256]) = build_exp_log();

/// `EXP[i]` = generator^i; doubled so `EXP[log a + log b]` needs no
/// modular reduction.
pub const EXP: [u8; 512] = TABLES.0;

/// `LOG[x]` = discrete log of `x` (undefined at 0, stored as 0).
pub const LOG: [u8; 256] = TABLES.1;

const fn build_mul() -> [[u8; 256]; 256] {
    let mut t = [[0u8; 256]; 256];
    let mut a = 1;
    while a < 256 {
        let mut b = 1;
        while b < 256 {
            t[a][b] = EXP[LOG[a] as usize + LOG[b] as usize];
            b += 1;
        }
        a += 1;
    }
    t
}

const fn build_inv() -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut a = 1;
    while a < 256 {
        t[a] = EXP[255 - LOG[a] as usize];
        a += 1;
    }
    t
}

/// Full 256×256 product table; `MUL[a][b] == a · b` in GF(256). 64 KiB
/// keeps the hot encode/decode kernels down to one load per byte.
pub static MUL: [[u8; 256]; 256] = build_mul();

const fn build_nibble_tables() -> ([[u8; 16]; 256], [[u8; 16]; 256]) {
    let mut lo = [[0u8; 16]; 256];
    let mut hi = [[0u8; 16]; 256];
    let mut c = 0;
    while c < 256 {
        let mut v = 0;
        while v < 16 {
            lo[c][v] = MUL[c][v];
            hi[c][v] = MUL[c][v << 4];
            v += 1;
        }
        c += 1;
    }
    (lo, hi)
}

const NIBBLE_TABLES: ([[u8; 16]; 256], [[u8; 16]; 256]) = build_nibble_tables();

/// Nibble-split product tables: `NIB_LO[c][v] == c · v` for the low
/// nibble `v` of an input byte, `NIB_HI[c][v] == c · (v << 4)` for the
/// high nibble. Because multiplication by `c` is GF(2)-linear,
/// `c · x == NIB_LO[c][x & 15] ^ NIB_HI[c][x >> 4]` — and a 16-entry
/// table fits a SIMD register, so `pshufb` evaluates 16/32 lanes per
/// instruction. 8 KiB total for all multipliers.
pub static NIB_LO: [[u8; 16]; 256] = NIBBLE_TABLES.0;
/// High-nibble halves of the nibble-split tables; see [`NIB_LO`].
pub static NIB_HI: [[u8; 16]; 256] = NIBBLE_TABLES.1;

/// `INV[a]` = multiplicative inverse of `a`; `INV[0] == 0` (unused).
pub static INV: [u8; 256] = build_inv();

/// Field addition (== subtraction): bytewise XOR.
#[inline]
#[must_use]
pub const fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Field multiplication via the product table.
#[inline]
#[must_use]
pub fn mul(a: u8, b: u8) -> u8 {
    MUL[a as usize][b as usize]
}

/// Multiplicative inverse.
///
/// # Panics
/// Panics in debug builds when `a == 0` (zero has no inverse).
#[inline]
#[must_use]
pub fn inv(a: u8) -> u8 {
    debug_assert!(a != 0, "gf::inv(0) is undefined");
    INV[a as usize]
}

/// Exponentiation `base^exp` by log/exp tables.
#[must_use]
pub fn pow(base: u8, exp: usize) -> u8 {
    if exp == 0 {
        return 1;
    }
    if base == 0 {
        return 0;
    }
    let l = (LOG[base as usize] as usize * exp) % 255;
    EXP[l]
}

/// The low bit of every byte lane in a 64-bit word.
const LANE_LSB: u64 = 0x0101_0101_0101_0101;

/// Slices shorter than this stay on the scalar table kernels: the wide
/// paths pay a table-broadcast setup that only amortises over a few
/// words.
const WIDE_CUTOFF: usize = 32;

/// SIMD nibble-table kernels (x86-64). `pshufb` performs sixteen (or,
/// with AVX2, thirty-two) 16-entry table lookups per instruction, which
/// turns the nibble-split decomposition `c·x = NIB_LO[c][x&15] ^
/// NIB_HI[c][x>>4]` into two shuffles and a XOR per register of input.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{NIB_HI, NIB_LO};
    use core::arch::x86_64::*;

    /// `dst[i] ^= c · src[i]` (`ACC = true`) or `dst[i] = c · src[i]`
    /// (`ACC = false`) over 32-byte blocks; the sub-block tail is left
    /// to the caller. Returns the number of bytes processed.
    ///
    /// # Safety
    /// Callers must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_slice_avx2<const ACC: bool>(c: u8, src: &[u8], dst: &mut [u8]) -> usize {
        let tl = _mm256_broadcastsi128_si256(_mm_loadu_si128(NIB_LO[c as usize].as_ptr().cast()));
        let th = _mm256_broadcastsi128_si256(_mm_loadu_si128(NIB_HI[c as usize].as_ptr().cast()));
        let mask = _mm256_set1_epi8(0x0f);
        let blocks = src.len() / 32;
        for b in 0..blocks {
            let s = src.as_ptr().add(b * 32).cast();
            let d = dst.as_mut_ptr().add(b * 32).cast();
            let x = _mm256_loadu_si256(s);
            let lo = _mm256_and_si256(x, mask);
            let hi = _mm256_and_si256(_mm256_srli_epi64::<4>(x), mask);
            let mut p = _mm256_xor_si256(_mm256_shuffle_epi8(tl, lo), _mm256_shuffle_epi8(th, hi));
            if ACC {
                p = _mm256_xor_si256(p, _mm256_loadu_si256(d));
            }
            _mm256_storeu_si256(d, p);
        }
        blocks * 32
    }

    /// The SSE/SSSE3 variant of [`mul_slice_avx2`]: 16-byte blocks.
    ///
    /// # Safety
    /// Callers must have verified SSSE3 support at runtime.
    #[target_feature(enable = "ssse3")]
    pub unsafe fn mul_slice_ssse3<const ACC: bool>(c: u8, src: &[u8], dst: &mut [u8]) -> usize {
        let tl = _mm_loadu_si128(NIB_LO[c as usize].as_ptr().cast());
        let th = _mm_loadu_si128(NIB_HI[c as usize].as_ptr().cast());
        let mask = _mm_set1_epi8(0x0f);
        let blocks = src.len() / 16;
        for b in 0..blocks {
            let s = src.as_ptr().add(b * 16).cast();
            let d = dst.as_mut_ptr().add(b * 16).cast();
            let x = _mm_loadu_si128(s);
            let lo = _mm_and_si128(x, mask);
            let hi = _mm_and_si128(_mm_srli_epi64::<4>(x), mask);
            let mut p = _mm_xor_si128(_mm_shuffle_epi8(tl, lo), _mm_shuffle_epi8(th, hi));
            if ACC {
                p = _mm_xor_si128(p, _mm_loadu_si128(d));
            }
            _mm_storeu_si128(d, p);
        }
        blocks * 16
    }
}

/// Nibble-split bit-column table for a fixed multiplier `c`: entry `j`
/// holds `c · 2^j` broadcast-ready as a `u64`. Entries `0..4` cover the
/// low nibble of an input byte, `4..8` the high nibble — multiplication
/// by `c` is GF(2)-linear, so `c · x` is the XOR of the entries whose
/// bit is set in `x`, and the split means each 16-value nibble table is
/// never materialised: four columns reconstruct it on the fly.
#[inline]
fn bit_columns(c: u8) -> [u64; 8] {
    let row = &MUL[c as usize];
    let mut cols = [0u64; 8];
    let mut j = 0;
    while j < 8 {
        cols[j] = row[1usize << j] as u64;
        j += 1;
    }
    cols
}

/// Multiplies all 8 byte lanes of `w` by the multiplier whose bit
/// columns are `cols`, 64 bits at a time.
///
/// For each bit plane `j`, `(w >> j) & LANE_LSB` exposes bit `j` of
/// every lane as a 0/1 byte; multiplying that mask by the column value
/// `c · 2^j` (< 256, so lanes never carry into each other) deposits the
/// column into exactly the lanes whose bit was set. XOR-summing the
/// eight planes is field addition per lane.
#[inline]
fn mul_word(cols: &[u64; 8], w: u64) -> u64 {
    // Two accumulators halve the XOR dependency chain (low nibble in
    // `a`, high nibble in `b`).
    let mut a = (w & LANE_LSB).wrapping_mul(cols[0]);
    a ^= ((w >> 1) & LANE_LSB).wrapping_mul(cols[1]);
    a ^= ((w >> 2) & LANE_LSB).wrapping_mul(cols[2]);
    a ^= ((w >> 3) & LANE_LSB).wrapping_mul(cols[3]);
    let mut b = ((w >> 4) & LANE_LSB).wrapping_mul(cols[4]);
    b ^= ((w >> 5) & LANE_LSB).wrapping_mul(cols[5]);
    b ^= ((w >> 6) & LANE_LSB).wrapping_mul(cols[6]);
    b ^= ((w >> 7) & LANE_LSB).wrapping_mul(cols[7]);
    a ^ b
}

/// Runs the widest available kernel over the aligned prefix of
/// `src`/`dst` and returns how many bytes it handled; the caller
/// finishes the tail with the product table. `ACC` selects
/// multiply-accumulate (`^=`) over plain scale (`=`).
#[inline]
fn wide_prefix<const ACC: bool>(c: u8, src: &[u8], dst: &mut [u8]) -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 presence was just verified.
            return unsafe { x86::mul_slice_avx2::<ACC>(c, src, dst) };
        }
        if std::arch::is_x86_feature_detected!("ssse3") {
            // SAFETY: SSSE3 presence was just verified.
            return unsafe { x86::mul_slice_ssse3::<ACC>(c, src, dst) };
        }
    }
    // Portable fallback: 64-bit SWAR over the bit columns.
    let cols = bit_columns(c);
    let words = src.len() / 8;
    for i in 0..words {
        let s: [u8; 8] = src[i * 8..i * 8 + 8].try_into().expect("8-byte chunk");
        let mut w = mul_word(&cols, u64::from_le_bytes(s));
        if ACC {
            let d: [u8; 8] = dst[i * 8..i * 8 + 8].try_into().expect("8-byte chunk");
            w ^= u64::from_le_bytes(d);
        }
        dst[i * 8..i * 8 + 8].copy_from_slice(&w.to_le_bytes());
    }
    words * 8
}

/// `dst[i] = c · src[i]` — allocation-free scale kernel. Long slices
/// run on the widest nibble-split path the CPU offers (AVX2 / SSSE3
/// `pshufb` over the 16-entry nibble tables, 64-bit SWAR elsewhere);
/// short slices and tails use the product table.
///
/// # Panics
/// Panics when the slices differ in length.
#[inline]
pub fn mul_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "mul_slice length mismatch");
    if c == 0 {
        dst.fill(0);
        return;
    }
    if c == 1 {
        dst.copy_from_slice(src);
        return;
    }
    let mut done = 0;
    if src.len() >= WIDE_CUTOFF {
        done = wide_prefix::<false>(c, src, dst);
    }
    let row = &MUL[c as usize];
    for (d, s) in dst[done..].iter_mut().zip(&src[done..]) {
        *d = row[*s as usize];
    }
}

/// `dst[i] ^= c · src[i]` — the multiply-accumulate kernel that both
/// encode and decode reduce to. Long slices run on the widest
/// nibble-split path the CPU offers (AVX2 / SSSE3 `pshufb` over the
/// 16-entry nibble tables, 64-bit SWAR elsewhere); short slices and
/// tails fall back to the product table, one hot row per call.
///
/// # Panics
/// Panics when the slices differ in length.
#[inline]
pub fn mul_acc_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "mul_acc_slice length mismatch");
    if c == 0 {
        return;
    }
    let mut done = 0;
    if src.len() >= WIDE_CUTOFF {
        done = wide_prefix::<true>(c, src, dst);
    }
    let row = &MUL[c as usize];
    for (d, s) in dst[done..].iter_mut().zip(&src[done..]) {
        *d ^= row[*s as usize];
    }
}

/// `mul_add_slice` is the conventional erasure-coding name for the
/// multiply-accumulate kernel; alias of [`mul_acc_slice`].
#[inline]
pub fn mul_add_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    mul_acc_slice(c, src, dst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_agree_with_direct_multiplication() {
        // Russian-peasant reference multiplication.
        fn slow_mul(mut a: u8, mut b: u8) -> u8 {
            let mut p = 0u8;
            while b != 0 {
                if b & 1 != 0 {
                    p ^= a;
                }
                let hi = a & 0x80 != 0;
                a <<= 1;
                if hi {
                    a ^= (POLY & 0xff) as u8;
                }
                b >>= 1;
            }
            p
        }
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), slow_mul(a, b), "mul({a},{b})");
            }
        }
    }

    #[test]
    fn inverse_is_inverse() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a={a}");
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for base in 0..=255u8 {
            let mut acc = 1u8;
            for e in 0..10 {
                assert_eq!(pow(base, e), acc, "base={base} e={e}");
                acc = mul(acc, base);
            }
        }
    }

    #[test]
    fn kernels_match_scalar_ops() {
        let src: Vec<u8> = (0..=255).collect();
        for c in [0u8, 1, 2, 0x53, 0xff] {
            let mut dst = vec![0u8; 256];
            mul_slice(c, &src, &mut dst);
            for (i, &s) in src.iter().enumerate() {
                assert_eq!(dst[i], mul(c, s));
            }
            let mut acc = src.clone();
            mul_acc_slice(c, &src, &mut acc);
            for (i, &s) in src.iter().enumerate() {
                assert_eq!(acc[i], s ^ mul(c, s));
            }
        }
    }

    #[test]
    fn wide_kernels_match_table_kernels_for_every_multiplier() {
        // Length 259 exercises the u64 fast path plus a 3-byte tail;
        // the pattern covers every byte value.
        let src: Vec<u8> = (0..259u32)
            .map(|i| (i.wrapping_mul(31) >> 2) as u8)
            .collect();
        for c in 0..=255u8 {
            let mut wide = vec![0u8; src.len()];
            mul_slice(c, &src, &mut wide);
            let mut scalar = vec![0u8; src.len()];
            for (d, s) in scalar.iter_mut().zip(&src) {
                *d = mul(c, *s);
            }
            assert_eq!(wide, scalar, "mul_slice c={c}");

            let mut wide_acc = src.clone();
            mul_acc_slice(c, &src, &mut wide_acc);
            let mut scalar_acc = src.clone();
            for (d, s) in scalar_acc.iter_mut().zip(&src) {
                *d ^= mul(c, *s);
            }
            assert_eq!(wide_acc, scalar_acc, "mul_acc_slice c={c}");

            let mut alias = src.clone();
            mul_add_slice(c, &src, &mut alias);
            assert_eq!(alias, wide_acc, "mul_add_slice c={c}");
        }
    }

    #[test]
    fn short_slices_stay_below_the_wide_cutoff() {
        // Every length from empty to past the cutoff, so the scalar
        // fallback, the word loop, and the tail all get hit.
        for len in 0..=(WIDE_CUTOFF + 9) {
            let src: Vec<u8> = (0..len as u32).map(|i| (i * 7 + 3) as u8).collect();
            for c in [0u8, 1, 0x1d, 0xb7] {
                let mut dst = vec![0xAAu8; len];
                mul_slice(c, &src, &mut dst);
                let mut acc = vec![0x55u8; len];
                mul_acc_slice(c, &src, &mut acc);
                for i in 0..len {
                    assert_eq!(dst[i], mul(c, src[i]), "len={len} c={c} i={i}");
                    assert_eq!(acc[i], 0x55 ^ mul(c, src[i]), "len={len} c={c} i={i}");
                }
            }
        }
    }
}
