//! GF(2^8) arithmetic with compile-time tables.
//!
//! The field is GF(256) with the AES-adjacent primitive polynomial
//! x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the conventional choice for
//! Reed-Solomon storage codes. All tables are built by `const fn` at
//! compile time, so every operation is a pure array lookup: no lazy
//! initialisation, no locks, identical results on every platform.

/// The primitive polynomial (x^8 + x^4 + x^3 + x^2 + 1), reduced.
const POLY: u16 = 0x11d;

const fn build_exp_log() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        // Doubled table: exp[i + 255] == exp[i] lets mul() skip the
        // `mod 255` reduction on the summed logs.
        exp[i + 255] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
        i += 1;
    }
    exp[510] = exp[0];
    exp[511] = exp[1];
    (exp, log)
}

const TABLES: ([u8; 512], [u8; 256]) = build_exp_log();

/// `EXP[i]` = generator^i; doubled so `EXP[log a + log b]` needs no
/// modular reduction.
pub const EXP: [u8; 512] = TABLES.0;

/// `LOG[x]` = discrete log of `x` (undefined at 0, stored as 0).
pub const LOG: [u8; 256] = TABLES.1;

const fn build_mul() -> [[u8; 256]; 256] {
    let mut t = [[0u8; 256]; 256];
    let mut a = 1;
    while a < 256 {
        let mut b = 1;
        while b < 256 {
            t[a][b] = EXP[LOG[a] as usize + LOG[b] as usize];
            b += 1;
        }
        a += 1;
    }
    t
}

const fn build_inv() -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut a = 1;
    while a < 256 {
        t[a] = EXP[255 - LOG[a] as usize];
        a += 1;
    }
    t
}

/// Full 256×256 product table; `MUL[a][b] == a · b` in GF(256). 64 KiB
/// keeps the hot encode/decode kernels down to one load per byte.
pub static MUL: [[u8; 256]; 256] = build_mul();

/// `INV[a]` = multiplicative inverse of `a`; `INV[0] == 0` (unused).
pub static INV: [u8; 256] = build_inv();

/// Field addition (== subtraction): bytewise XOR.
#[inline]
#[must_use]
pub const fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Field multiplication via the product table.
#[inline]
#[must_use]
pub fn mul(a: u8, b: u8) -> u8 {
    MUL[a as usize][b as usize]
}

/// Multiplicative inverse.
///
/// # Panics
/// Panics in debug builds when `a == 0` (zero has no inverse).
#[inline]
#[must_use]
pub fn inv(a: u8) -> u8 {
    debug_assert!(a != 0, "gf::inv(0) is undefined");
    INV[a as usize]
}

/// Exponentiation `base^exp` by log/exp tables.
#[must_use]
pub fn pow(base: u8, exp: usize) -> u8 {
    if exp == 0 {
        return 1;
    }
    if base == 0 {
        return 0;
    }
    let l = (LOG[base as usize] as usize * exp) % 255;
    EXP[l]
}

/// `dst[i] = c · src[i]` — allocation-free scale kernel.
///
/// # Panics
/// Panics when the slices differ in length.
#[inline]
pub fn mul_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "mul_slice length mismatch");
    let row = &MUL[c as usize];
    for (d, s) in dst.iter_mut().zip(src) {
        *d = row[*s as usize];
    }
}

/// `dst[i] ^= c · src[i]` — the multiply-accumulate kernel that both
/// encode and decode reduce to. One table row stays hot in cache for
/// the whole slice.
///
/// # Panics
/// Panics when the slices differ in length.
#[inline]
pub fn mul_acc_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "mul_acc_slice length mismatch");
    if c == 0 {
        return;
    }
    let row = &MUL[c as usize];
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= row[*s as usize];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_agree_with_direct_multiplication() {
        // Russian-peasant reference multiplication.
        fn slow_mul(mut a: u8, mut b: u8) -> u8 {
            let mut p = 0u8;
            while b != 0 {
                if b & 1 != 0 {
                    p ^= a;
                }
                let hi = a & 0x80 != 0;
                a <<= 1;
                if hi {
                    a ^= (POLY & 0xff) as u8;
                }
                b >>= 1;
            }
            p
        }
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), slow_mul(a, b), "mul({a},{b})");
            }
        }
    }

    #[test]
    fn inverse_is_inverse() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a={a}");
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for base in 0..=255u8 {
            let mut acc = 1u8;
            for e in 0..10 {
                assert_eq!(pow(base, e), acc, "base={base} e={e}");
                acc = mul(acc, base);
            }
        }
    }

    #[test]
    fn kernels_match_scalar_ops() {
        let src: Vec<u8> = (0..=255).collect();
        for c in [0u8, 1, 2, 0x53, 0xff] {
            let mut dst = vec![0u8; 256];
            mul_slice(c, &src, &mut dst);
            for (i, &s) in src.iter().enumerate() {
                assert_eq!(dst[i], mul(c, s));
            }
            let mut acc = src.clone();
            mul_acc_slice(c, &src, &mut acc);
            for (i, &s) in src.iter().enumerate() {
                assert_eq!(acc[i], s ^ mul(c, s));
            }
        }
    }
}
