//! Property tests for the Reed-Solomon codec: any-k-of-(k+m)
//! reconstruction round-trips for every k ≤ 10, m ≤ 4, both matrix
//! constructions, with ragged last stripes and adversarial loss sets.

use mayflower_ec::{Codec, EcError, MatrixKind};
use mayflower_simcore::testutil::SeedGuard;
use mayflower_simcore::SimRng;
use proptest::prelude::*;

/// Deterministic payload bytes from a seed (ragged lengths included).
fn payload(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = SimRng::seed_from(seed);
    (0..len).map(|_| (rng.next_u64() >> 24) as u8).collect()
}

/// Drop exactly `losses` shards chosen by the seeded RNG.
fn drop_shards(shards: &[Vec<u8>], losses: usize, rng: &mut SimRng) -> Vec<Option<Vec<u8>>> {
    let mut opts: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
    let mut lost = 0;
    while lost < losses {
        let i = (rng.next_u64() % opts.len() as u64) as usize;
        if opts[i].is_some() {
            opts[i] = None;
            lost += 1;
        }
    }
    opts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Encode → lose up to m shards → decode is the identity for every
    /// (k, m) the storage tier supports, under both matrix kinds and
    /// ragged (non-multiple-of-k) payload lengths.
    #[test]
    fn any_k_of_n_round_trips(
        k in 1usize..11,
        m in 1usize..5,
        len in 0usize..4096,
        seed in any::<u64>(),
        vandermonde in any::<bool>(),
    ) {
        let _guard = SeedGuard::new("ec::any_k_of_n_round_trips", seed);
        let kind = if vandermonde { MatrixKind::Vandermonde } else { MatrixKind::Cauchy };
        let codec = Codec::with_matrix(k, m, kind);
        let data = payload(seed, len);
        let shards = codec.encode_payload(&data);
        prop_assert_eq!(shards.len(), k + m);

        let mut rng = SimRng::seed_from(seed ^ 0xec);
        let losses = (rng.next_u64() % (m as u64 + 1)) as usize;
        let mut opts = drop_shards(&shards, losses, &mut rng);
        let back = codec.decode_payload(&mut opts, data.len()).expect("k shards survive");
        prop_assert_eq!(back, data);
        // Reconstruction also restored every lost shard verbatim.
        for (i, orig) in shards.iter().enumerate() {
            prop_assert_eq!(opts[i].as_deref(), Some(orig.as_slice()));
        }
    }

    /// Losing more than m shards is detected, never mis-decoded.
    #[test]
    fn too_many_losses_error(
        k in 1usize..11,
        m in 1usize..5,
        len in 1usize..1024,
        seed in any::<u64>(),
    ) {
        let _guard = SeedGuard::new("ec::too_many_losses_error", seed);
        let codec = Codec::new(k, m);
        let shards = codec.encode_payload(&payload(seed, len));
        let mut rng = SimRng::seed_from(seed ^ 0xdead);
        let mut opts = drop_shards(&shards, m + 1, &mut rng);
        prop_assert_eq!(
            codec.decode_payload(&mut opts, len),
            Err(EcError::TooFewShards { have: k.saturating_sub(1), need: k })
        );
    }

    /// A silently corrupted shard changes the decoded payload whenever
    /// the corrupt shard participates in reconstruction — which is why
    /// the dataserver layer checksums fragments (corruption must be
    /// detected *before* the codec, since RS itself cannot).
    #[test]
    fn corruption_propagates_without_checksums(
        k in 2usize..11,
        m in 1usize..5,
        len in 64usize..1024,
        seed in any::<u64>(),
    ) {
        let _guard = SeedGuard::new("ec::corruption_propagates", seed);
        let codec = Codec::new(k, m);
        let data = payload(seed, len);
        let shards = codec.encode_payload(&data);
        let shard_len = codec.shard_len(len);
        prop_assume!(shard_len > 0);

        // Corrupt one byte of data shard 0, drop one parity shard so
        // shard 0 must participate, then decode.
        let mut opts: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
        let mut rng = SimRng::seed_from(seed ^ 0xbad);
        let byte = (rng.next_u64() % shard_len as u64) as usize;
        opts[0].as_mut().expect("present")[byte] ^= 0x5a;
        opts[k] = None;
        let back = codec.decode_payload(&mut opts, len).expect("enough shards");
        prop_assert!(back != data, "corruption must change the decode");
    }
}
