#![warn(missing_docs)]

//! OpenFlow-style SDN substrate.
//!
//! The paper's Flowserver runs inside a Floodlight SDN controller and
//! talks OpenFlow to the switches: it installs per-flow forwarding
//! rules along a chosen path, and periodically fetches byte counters
//! (per switch port and per flow rule) from the **edge** switches to
//! estimate flow bandwidth (§3.3.3).
//!
//! This crate reproduces that interface:
//!
//! * [`Fabric`] — one [`Switch`] per switch node of a topology, with
//!   flow tables; [`Fabric::install_path`] / [`Fabric::remove_flow`]
//!   mirror OpenFlow `FLOW_MOD` add/delete along a path.
//! * [`CounterSource`] — where counter values actually come from. In
//!   production this is switch hardware; in the reproduction the fluid
//!   simulator implements it. Keeping it a trait guarantees the control
//!   plane only ever sees counters, never ground-truth rates.
//! * [`StatsCollector`] — the periodic poller: reads edge-switch
//!   counters, differences them against the previous poll, and emits
//!   per-flow and per-port bandwidth measurements exactly like
//!   Floodlight's statistics request/reply cycle.
//!
//! # Example
//!
//! ```
//! use mayflower_net::{HostId, Topology, TreeParams};
//! use mayflower_sdn::{Fabric, FlowCookie};
//!
//! let topo = Topology::three_tier(&TreeParams::paper_testbed());
//! let mut fabric = Fabric::new(&topo);
//! let path = topo.shortest_paths(HostId(0), HostId(20))[0].clone();
//! fabric.install_path(FlowCookie(1), &path);
//! // One rule per switch on the 6-hop path (5 switches).
//! assert_eq!(fabric.rule_count(), 5);
//! fabric.remove_flow(FlowCookie(1));
//! assert_eq!(fabric.rule_count(), 0);
//! ```

pub mod counters;
pub mod fabric;
pub mod stats;

pub use counters::{BlackoutCounters, CounterSource};
pub use fabric::{Fabric, FlowCookie, FlowRule, Switch};
pub use stats::{FlowStat, PortStat, StatsCollector, StatsReport};
