//! The counter interface between the data plane and the control plane.

use mayflower_net::LinkId;

use crate::fabric::FlowCookie;

/// A source of cumulative byte/bit counters — the data plane as seen by
/// the control plane.
///
/// Real OpenFlow switches expose cumulative byte counters per port and
/// per flow-table entry. The reproduction's fluid simulator implements
/// this trait (through an adapter in the experiment harness), and a
/// test double can script arbitrary counter trajectories.
///
/// **Information hiding is the point**: the Flowserver's bandwidth
/// model is built exclusively from these counters plus its own
/// bookkeeping, so estimation error relative to ground truth (stale
/// polls, in-between-poll drift) is faithfully reproduced.
pub trait CounterSource {
    /// Cumulative bits carried by a directed link (switch port) since
    /// boot.
    fn port_bits(&self, link: LinkId) -> f64;

    /// Cumulative bits forwarded so far for the given flow, or `None`
    /// if the flow's rules have expired (flow finished).
    fn flow_bits(&self, cookie: FlowCookie) -> Option<f64>;
}

/// A scriptable counter source for tests.
#[derive(Debug, Clone, Default)]
pub struct StaticCounters {
    /// Per-link cumulative bits.
    pub ports: std::collections::HashMap<LinkId, f64>,
    /// Per-flow cumulative bits.
    pub flows: std::collections::HashMap<FlowCookie, f64>,
}

impl CounterSource for StaticCounters {
    fn port_bits(&self, link: LinkId) -> f64 {
        self.ports.get(&link).copied().unwrap_or(0.0)
    }

    fn flow_bits(&self, cookie: FlowCookie) -> Option<f64> {
        self.flows.get(&cookie).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_counters_default_to_zero_ports() {
        let c = StaticCounters::default();
        assert_eq!(c.port_bits(LinkId(3)), 0.0);
        assert!(c.flow_bits(FlowCookie(1)).is_none());
    }

    #[test]
    fn static_counters_store_values() {
        let mut c = StaticCounters::default();
        c.ports.insert(LinkId(0), 100.0);
        c.flows.insert(FlowCookie(9), 50.0);
        assert_eq!(c.port_bits(LinkId(0)), 100.0);
        assert_eq!(c.flow_bits(FlowCookie(9)), Some(50.0));
    }
}
