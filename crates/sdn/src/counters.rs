//! The counter interface between the data plane and the control plane.

use mayflower_net::LinkId;

use crate::fabric::FlowCookie;

/// A source of cumulative byte/bit counters — the data plane as seen by
/// the control plane.
///
/// Real OpenFlow switches expose cumulative byte counters per port and
/// per flow-table entry. The reproduction's fluid simulator implements
/// this trait (through an adapter in the experiment harness), and a
/// test double can script arbitrary counter trajectories.
///
/// **Information hiding is the point**: the Flowserver's bandwidth
/// model is built exclusively from these counters plus its own
/// bookkeeping, so estimation error relative to ground truth (stale
/// polls, in-between-poll drift) is faithfully reproduced.
pub trait CounterSource {
    /// Cumulative bits carried by a directed link (switch port) since
    /// boot.
    fn port_bits(&self, link: LinkId) -> f64;

    /// Cumulative bits forwarded so far for the given flow, or `None`
    /// if the flow's rules have expired (flow finished).
    fn flow_bits(&self, cookie: FlowCookie) -> Option<f64>;
}

/// A [`CounterSource`] decorator that blacks out the counters of
/// failed components (fault injection).
///
/// Ports on `dead_links` read as zero — a real controller's stats
/// request to a dead switch times out, and differencing a zero counter
/// yields a zero rate, which is exactly what the Flowserver would
/// conclude from the missing reply. Flow counters whose ingress switch
/// is dark are reported as absent, so the collector skips them and the
/// flow's model entry goes stale (update-freeze expiry then governs
/// when the stale estimate may be overwritten).
#[derive(Debug)]
pub struct BlackoutCounters<'a, C> {
    inner: &'a C,
    dead_links: &'a std::collections::BTreeSet<LinkId>,
}

impl<'a, C: CounterSource> BlackoutCounters<'a, C> {
    /// Wraps `inner`, blacking out every link in `dead_links`.
    #[must_use]
    pub fn new(
        inner: &'a C,
        dead_links: &'a std::collections::BTreeSet<LinkId>,
    ) -> BlackoutCounters<'a, C> {
        BlackoutCounters { inner, dead_links }
    }

    /// Whether any blackout is in effect.
    #[must_use]
    pub fn any_dark(&self) -> bool {
        !self.dead_links.is_empty()
    }
}

impl<C: CounterSource> CounterSource for BlackoutCounters<'_, C> {
    fn port_bits(&self, link: LinkId) -> f64 {
        if self.dead_links.contains(&link) {
            0.0
        } else {
            self.inner.port_bits(link)
        }
    }

    fn flow_bits(&self, cookie: FlowCookie) -> Option<f64> {
        self.inner.flow_bits(cookie)
    }
}

/// A scriptable counter source for tests.
#[derive(Debug, Clone, Default)]
pub struct StaticCounters {
    /// Per-link cumulative bits.
    pub ports: std::collections::HashMap<LinkId, f64>,
    /// Per-flow cumulative bits.
    pub flows: std::collections::HashMap<FlowCookie, f64>,
}

impl CounterSource for StaticCounters {
    fn port_bits(&self, link: LinkId) -> f64 {
        self.ports.get(&link).copied().unwrap_or(0.0)
    }

    fn flow_bits(&self, cookie: FlowCookie) -> Option<f64> {
        self.flows.get(&cookie).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_counters_default_to_zero_ports() {
        let c = StaticCounters::default();
        assert_eq!(c.port_bits(LinkId(3)), 0.0);
        assert!(c.flow_bits(FlowCookie(1)).is_none());
    }

    #[test]
    fn static_counters_store_values() {
        let mut c = StaticCounters::default();
        c.ports.insert(LinkId(0), 100.0);
        c.flows.insert(FlowCookie(9), 50.0);
        assert_eq!(c.port_bits(LinkId(0)), 100.0);
        assert_eq!(c.flow_bits(FlowCookie(9)), Some(50.0));
    }

    #[test]
    fn blackout_masks_dead_ports_and_passes_the_rest() {
        let mut c = StaticCounters::default();
        c.ports.insert(LinkId(0), 100.0);
        c.ports.insert(LinkId(1), 200.0);
        c.flows.insert(FlowCookie(9), 50.0);
        let dead: std::collections::BTreeSet<LinkId> = [LinkId(0)].into_iter().collect();
        let b = BlackoutCounters::new(&c, &dead);
        assert!(b.any_dark());
        assert_eq!(b.port_bits(LinkId(0)), 0.0, "dark port reads zero");
        assert_eq!(b.port_bits(LinkId(1)), 200.0, "live port passes through");
        assert_eq!(b.flow_bits(FlowCookie(9)), Some(50.0));
    }
}
