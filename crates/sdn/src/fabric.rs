//! The switch fabric: flow tables and path installation.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use mayflower_net::{HostId, LinkId, NodeId, Path, Topology};
use serde::{Deserialize, Serialize};

/// Identifies a flow across the fabric — the OpenFlow *cookie* the
/// controller stamps on every rule belonging to one flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowCookie(pub u64);

impl std::fmt::Display for FlowCookie {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// One forwarding rule in a switch's flow table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowRule {
    /// The flow this rule belongs to.
    pub cookie: FlowCookie,
    /// Match: source host of the flow.
    pub src: HostId,
    /// Match: destination host of the flow.
    pub dst: HostId,
    /// Ingress port (the link the packets arrive on).
    pub in_link: LinkId,
    /// Action: output port (the next link on the path).
    pub out_link: LinkId,
    /// Whether this switch is the flow's first hop — the edge switch of
    /// the rack the *source* host (the dataserver on a read) sits in.
    /// The stats collector polls flow counters only at ingress edges
    /// (§4: "flow stats are collected for only those flows that
    /// originate from dataservers attached to the edge switch being
    /// queried").
    pub ingress_edge: bool,
}

/// One switch's flow table.
#[derive(Debug, Clone, Default)]
pub struct Switch {
    rules: BTreeMap<FlowCookie, FlowRule>,
}

impl Switch {
    /// The rules currently installed, in cookie order.
    pub fn rules(&self) -> impl Iterator<Item = &FlowRule> {
        self.rules.values()
    }

    /// Number of installed rules.
    #[must_use]
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Looks up the rule for a flow.
    #[must_use]
    pub fn rule(&self, cookie: FlowCookie) -> Option<&FlowRule> {
        self.rules.get(&cookie)
    }
}

/// The whole data plane: a flow table per switch node, plus the
/// path-level install/remove operations the controller uses.
///
/// A `Fabric` is pure control-plane state — it moves no bytes. Byte
/// counters come from a [`crate::CounterSource`].
#[derive(Debug, Clone)]
pub struct Fabric {
    topo: Arc<Topology>,
    /// Flow tables, keyed by switch node.
    switches: HashMap<NodeId, Switch>,
    /// Path each installed flow follows, for removal and introspection.
    flow_paths: BTreeMap<FlowCookie, Path>,
}

impl Fabric {
    /// Creates a fabric with an empty flow table per switch in `topo`.
    #[must_use]
    pub fn new(topo: &Topology) -> Fabric {
        let switches = topo
            .nodes()
            .iter()
            .filter(|n| n.kind().is_switch())
            .map(|n| (n.id(), Switch::default()))
            .collect();
        Fabric {
            topo: Arc::new(topo.clone()),
            switches,
            flow_paths: BTreeMap::new(),
        }
    }

    /// Creates a fabric sharing an existing topology handle.
    #[must_use]
    pub fn with_topology(topo: Arc<Topology>) -> Fabric {
        let switches = topo
            .nodes()
            .iter()
            .filter(|n| n.kind().is_switch())
            .map(|n| (n.id(), Switch::default()))
            .collect();
        Fabric {
            topo,
            switches,
            flow_paths: BTreeMap::new(),
        }
    }

    /// The topology the fabric spans.
    #[must_use]
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// Installs forwarding rules for `cookie` along `path`: one rule in
    /// every switch the path traverses (every interior node of the
    /// link sequence).
    ///
    /// # Panics
    ///
    /// Panics if the cookie is already installed, the path is empty, or
    /// the path is not connected in the fabric's topology.
    pub fn install_path(&mut self, cookie: FlowCookie, path: &Path) {
        assert!(
            !self.flow_paths.contains_key(&cookie),
            "flow {cookie} already installed"
        );
        assert!(!path.is_empty(), "cannot install an empty path");
        assert!(
            path.validate(&self.topo),
            "path is not connected in this topology"
        );
        let links = path.links();
        for w in links.windows(2) {
            let (in_link, out_link) = (w[0], w[1]);
            let node = self.topo.link(in_link).dst();
            let rule = FlowRule {
                cookie,
                src: path.src(),
                dst: path.dst(),
                in_link,
                out_link,
                ingress_edge: in_link == links[0],
            };
            self.switches
                .get_mut(&node)
                .expect("interior path nodes are switches")
                .rules
                .insert(cookie, rule);
        }
        self.flow_paths.insert(cookie, path.clone());
    }

    /// Removes all rules belonging to `cookie`. Returns the path the
    /// flow was using, or `None` if unknown.
    pub fn remove_flow(&mut self, cookie: FlowCookie) -> Option<Path> {
        let path = self.flow_paths.remove(&cookie)?;
        for w in path.links().windows(2) {
            let node = self.topo.link(w[0]).dst();
            if let Some(sw) = self.switches.get_mut(&node) {
                sw.rules.remove(&cookie);
            }
        }
        Some(path)
    }

    /// The path an installed flow follows.
    #[must_use]
    pub fn flow_path(&self, cookie: FlowCookie) -> Option<&Path> {
        self.flow_paths.get(&cookie)
    }

    /// All installed flows, in cookie order.
    pub fn flows(&self) -> impl Iterator<Item = (FlowCookie, &Path)> {
        self.flow_paths.iter().map(|(c, p)| (*c, p))
    }

    /// Number of installed flows.
    #[must_use]
    pub fn flow_count(&self) -> usize {
        self.flow_paths.len()
    }

    /// Total number of rules across all switches.
    #[must_use]
    pub fn rule_count(&self) -> usize {
        self.switches.values().map(Switch::rule_count).sum()
    }

    /// The flow table of a switch node, if it is a switch.
    #[must_use]
    pub fn switch(&self, node: NodeId) -> Option<&Switch> {
        self.switches.get(&node)
    }

    /// Flows whose **ingress edge** is the given switch — the flows a
    /// stats poll of that edge switch reports (flows originating from
    /// hosts in that rack).
    #[must_use]
    pub fn ingress_flows_at(&self, edge: NodeId) -> Vec<FlowCookie> {
        self.switches
            .get(&edge)
            .map(|sw| {
                sw.rules()
                    .filter(|r| r.ingress_edge)
                    .map(|r| r.cookie)
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mayflower_net::TreeParams;

    fn setup() -> (Arc<Topology>, Fabric) {
        let topo = Arc::new(Topology::three_tier(&TreeParams::paper_testbed()));
        let fabric = Fabric::with_topology(topo.clone());
        (topo, fabric)
    }

    #[test]
    fn install_places_rule_per_switch() {
        let (topo, mut fabric) = setup();
        // Same rack: 2 links, 1 switch.
        let p2 = topo.shortest_paths(HostId(0), HostId(1))[0].clone();
        fabric.install_path(FlowCookie(1), &p2);
        assert_eq!(fabric.rule_count(), 1);
        // Cross pod: 6 links, 5 switches.
        let p6 = topo.shortest_paths(HostId(0), HostId(20))[0].clone();
        fabric.install_path(FlowCookie(2), &p6);
        assert_eq!(fabric.rule_count(), 1 + 5);
        assert_eq!(fabric.flow_count(), 2);
    }

    #[test]
    fn remove_clears_every_rule() {
        let (topo, mut fabric) = setup();
        let p = topo.shortest_paths(HostId(0), HostId(20))[0].clone();
        fabric.install_path(FlowCookie(7), &p);
        let removed = fabric.remove_flow(FlowCookie(7)).unwrap();
        assert_eq!(removed, p);
        assert_eq!(fabric.rule_count(), 0);
        assert!(fabric.remove_flow(FlowCookie(7)).is_none());
    }

    #[test]
    fn ingress_edge_is_source_rack_switch() {
        let (topo, mut fabric) = setup();
        let p = topo.shortest_paths(HostId(0), HostId(20))[0].clone();
        fabric.install_path(FlowCookie(3), &p);
        let src_edge = topo.edge_switch_of(topo.rack_of(HostId(0)));
        let dst_edge = topo.edge_switch_of(topo.rack_of(HostId(20)));
        assert_eq!(fabric.ingress_flows_at(src_edge), vec![FlowCookie(3)]);
        assert!(fabric.ingress_flows_at(dst_edge).is_empty());
    }

    #[test]
    fn rules_chain_along_path() {
        let (topo, mut fabric) = setup();
        let p = topo.shortest_paths(HostId(0), HostId(20))[0].clone();
        fabric.install_path(FlowCookie(5), &p);
        // Walk the path; each interior switch must have a rule whose
        // in/out links match the path.
        for w in p.links().windows(2) {
            let node = topo.link(w[0]).dst();
            let rule = fabric.switch(node).unwrap().rule(FlowCookie(5)).unwrap();
            assert_eq!(rule.in_link, w[0]);
            assert_eq!(rule.out_link, w[1]);
            assert_eq!(rule.src, HostId(0));
            assert_eq!(rule.dst, HostId(20));
        }
    }

    #[test]
    #[should_panic(expected = "already installed")]
    fn double_install_rejected() {
        let (topo, mut fabric) = setup();
        let p = topo.shortest_paths(HostId(0), HostId(1))[0].clone();
        fabric.install_path(FlowCookie(1), &p);
        fabric.install_path(FlowCookie(1), &p);
    }

    #[test]
    #[should_panic(expected = "not connected")]
    fn invalid_path_rejected() {
        let (topo, mut fabric) = setup();
        let p = topo.shortest_paths(HostId(0), HostId(1))[0].clone();
        let backwards = Path::new(HostId(1), HostId(0), p.links().to_vec());
        fabric.install_path(FlowCookie(1), &backwards);
    }

    #[test]
    fn flows_iterates_in_cookie_order() {
        let (topo, mut fabric) = setup();
        let p1 = topo.shortest_paths(HostId(0), HostId(1))[0].clone();
        let p2 = topo.shortest_paths(HostId(2), HostId(3))[0].clone();
        fabric.install_path(FlowCookie(9), &p2);
        fabric.install_path(FlowCookie(1), &p1);
        let cookies: Vec<_> = fabric.flows().map(|(c, _)| c).collect();
        assert_eq!(cookies, vec![FlowCookie(1), FlowCookie(9)]);
    }
}
