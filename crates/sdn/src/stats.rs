//! Periodic statistics collection from edge switches.

use std::collections::HashMap;

use mayflower_net::{LinkId, NodeId, NodeKind, Topology};
use mayflower_simcore::SimTime;

use crate::counters::CounterSource;
use crate::fabric::{Fabric, FlowCookie};

/// A per-flow measurement from one poll cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowStat {
    /// The flow.
    pub cookie: FlowCookie,
    /// Cumulative bits forwarded, as read from the ingress edge switch.
    pub total_bits: f64,
    /// Measured bandwidth over the last poll interval, bits/sec.
    pub rate_bps: f64,
}

/// A per-port measurement from one poll cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct PortStat {
    /// The directed link (switch port direction).
    pub link: LinkId,
    /// Cumulative bits carried.
    pub total_bits: f64,
    /// Measured bandwidth over the last poll interval, bits/sec.
    pub rate_bps: f64,
}

/// Everything one poll cycle produced.
#[derive(Debug, Clone, Default)]
pub struct StatsReport {
    /// When the poll ran.
    pub measured_at: SimTime,
    /// Per-flow measurements (flows whose ingress edge was polled).
    pub flows: Vec<FlowStat>,
    /// Per-port measurements for every port of every edge switch, both
    /// directions.
    pub ports: Vec<PortStat>,
}

impl StatsReport {
    /// Looks up the stat for a flow.
    #[must_use]
    pub fn flow(&self, cookie: FlowCookie) -> Option<&FlowStat> {
        self.flows.iter().find(|f| f.cookie == cookie)
    }

    /// Looks up the stat for a port.
    #[must_use]
    pub fn port(&self, link: LinkId) -> Option<&PortStat> {
        self.ports.iter().find(|p| p.link == link)
    }
}

/// Polls edge-switch counters and differences them into bandwidth
/// measurements, mimicking Floodlight's periodic statistics cycle
/// (§3.3.3: "periodically fetching from the edge switches the byte
/// counters for both Mayflower-related flows and each switch port").
///
/// Only **edge** switches are polled — a deliberate fidelity choice
/// from the paper (monitoring every switch would not scale); the
/// Flowserver extrapolates the rest of the network from its own flow
/// bookkeeping.
#[derive(Debug, Clone)]
pub struct StatsCollector {
    /// Ports (directed links) adjacent to edge switches.
    edge_ports: Vec<LinkId>,
    /// Edge switch nodes.
    edge_switches: Vec<NodeId>,
    last_poll: SimTime,
    prev_flow_bits: HashMap<FlowCookie, f64>,
    prev_port_bits: HashMap<LinkId, f64>,
}

impl StatsCollector {
    /// Creates a collector for the edge tier of `topo`.
    #[must_use]
    pub fn new(topo: &Topology) -> StatsCollector {
        let edge_switches: Vec<NodeId> = topo
            .nodes()
            .iter()
            .filter(|n| n.kind() == NodeKind::EdgeSwitch)
            .map(|n| n.id())
            .collect();
        let mut edge_ports = Vec::new();
        for &sw in &edge_switches {
            for &l in topo.out_links(sw) {
                edge_ports.push(l); // tx direction
                edge_ports.push(topo.reverse_link(l)); // rx direction
            }
        }
        edge_ports.sort_unstable();
        edge_ports.dedup();
        StatsCollector {
            edge_ports,
            edge_switches,
            last_poll: SimTime::ZERO,
            prev_flow_bits: HashMap::new(),
            prev_port_bits: HashMap::new(),
        }
    }

    /// Time of the previous poll.
    #[must_use]
    pub fn last_poll(&self) -> SimTime {
        self.last_poll
    }

    /// Runs one poll cycle at time `now`: reads the counters of every
    /// edge switch and differences them against the previous cycle to
    /// produce rates.
    ///
    /// Flows observed for the first time have their rate computed from
    /// their full counter over the interval since the last poll — an
    /// overestimate-free approximation that mirrors what a real
    /// controller can know.
    pub fn poll<C: CounterSource>(
        &mut self,
        fabric: &Fabric,
        counters: &C,
        now: SimTime,
    ) -> StatsReport {
        let dt = now.secs_since(self.last_poll);
        let mut report = StatsReport {
            measured_at: now,
            ..StatsReport::default()
        };

        // Per-flow counters at ingress edge switches.
        let mut seen: Vec<FlowCookie> = Vec::new();
        for &edge in &self.edge_switches {
            for cookie in fabric.ingress_flows_at(edge) {
                let Some(total) = counters.flow_bits(cookie) else {
                    continue;
                };
                let prev = self.prev_flow_bits.get(&cookie).copied().unwrap_or(0.0);
                let rate = if dt > 0.0 {
                    (total - prev).max(0.0) / dt
                } else {
                    0.0
                };
                report.flows.push(FlowStat {
                    cookie,
                    total_bits: total,
                    rate_bps: rate,
                });
                seen.push(cookie);
            }
        }
        self.prev_flow_bits.retain(|c, _| seen.contains(c));
        for f in &report.flows {
            self.prev_flow_bits.insert(f.cookie, f.total_bits);
        }

        // Per-port counters.
        for &link in &self.edge_ports {
            let total = counters.port_bits(link);
            let prev = self.prev_port_bits.get(&link).copied().unwrap_or(0.0);
            let rate = if dt > 0.0 {
                (total - prev).max(0.0) / dt
            } else {
                0.0
            };
            report.ports.push(PortStat {
                link,
                total_bits: total,
                rate_bps: rate,
            });
            self.prev_port_bits.insert(link, total);
        }

        self.last_poll = now;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::StaticCounters;
    use mayflower_net::{HostId, TreeParams};
    use std::sync::Arc;

    fn setup() -> (Arc<Topology>, Fabric, StatsCollector) {
        let topo = Arc::new(Topology::three_tier(&TreeParams::paper_testbed()));
        let fabric = Fabric::with_topology(topo.clone());
        let collector = StatsCollector::new(&topo);
        (topo, fabric, collector)
    }

    #[test]
    fn rates_are_counter_deltas_over_interval() {
        let (topo, mut fabric, mut coll) = setup();
        let p = topo.shortest_paths(HostId(0), HostId(20))[0].clone();
        fabric.install_path(FlowCookie(1), &p);

        let mut counters = StaticCounters::default();
        counters.flows.insert(FlowCookie(1), 1e9);
        let r1 = coll.poll(&fabric, &counters, SimTime::from_secs(1.0));
        let f1 = r1.flow(FlowCookie(1)).unwrap();
        assert!((f1.rate_bps - 1e9).abs() < 1.0);

        counters.flows.insert(FlowCookie(1), 1.5e9);
        let r2 = coll.poll(&fabric, &counters, SimTime::from_secs(2.0));
        let f2 = r2.flow(FlowCookie(1)).unwrap();
        assert!((f2.rate_bps - 0.5e9).abs() < 1.0);
        assert!((f2.total_bits - 1.5e9).abs() < 1.0);
    }

    #[test]
    fn expired_flows_drop_out_of_reports() {
        let (topo, mut fabric, mut coll) = setup();
        let p = topo.shortest_paths(HostId(0), HostId(1))[0].clone();
        fabric.install_path(FlowCookie(2), &p);
        let mut counters = StaticCounters::default();
        counters.flows.insert(FlowCookie(2), 1.0);
        let r = coll.poll(&fabric, &counters, SimTime::from_secs(1.0));
        assert_eq!(r.flows.len(), 1);
        // Flow finishes: counters disappear and rules removed.
        counters.flows.remove(&FlowCookie(2));
        fabric.remove_flow(FlowCookie(2));
        let r = coll.poll(&fabric, &counters, SimTime::from_secs(2.0));
        assert!(r.flows.is_empty());
    }

    #[test]
    fn port_stats_cover_edge_ports_both_directions() {
        let (topo, fabric, mut coll) = setup();
        let counters = StaticCounters::default();
        let r = coll.poll(&fabric, &counters, SimTime::from_secs(1.0));
        // 16 edge switches × (4 host ports + 2 uplinks) × 2 directions.
        assert_eq!(r.ports.len(), 16 * 6 * 2);
        let up = topo.host_uplink(HostId(0));
        assert!(r.port(up).is_some());
        assert!(r.port(topo.reverse_link(up)).is_some());
    }

    #[test]
    fn zero_interval_poll_yields_zero_rates() {
        let (topo, mut fabric, mut coll) = setup();
        let p = topo.shortest_paths(HostId(0), HostId(1))[0].clone();
        fabric.install_path(FlowCookie(1), &p);
        let mut counters = StaticCounters::default();
        counters.flows.insert(FlowCookie(1), 5.0);
        let r = coll.poll(&fabric, &counters, SimTime::ZERO);
        assert_eq!(r.flow(FlowCookie(1)).unwrap().rate_bps, 0.0);
    }

    #[test]
    fn only_ingress_edge_reports_the_flow() {
        let (topo, mut fabric, mut coll) = setup();
        let p = topo.shortest_paths(HostId(0), HostId(20))[0].clone();
        fabric.install_path(FlowCookie(4), &p);
        let mut counters = StaticCounters::default();
        counters.flows.insert(FlowCookie(4), 10.0);
        let r = coll.poll(&fabric, &counters, SimTime::from_secs(1.0));
        // Exactly one report even though the flow crosses two edge
        // switches (ingress and egress racks).
        assert_eq!(r.flows.len(), 1);
    }
}
