//! The dataserver: chunked, append-only file storage (§3.3.2).
//!
//! On-disk layout, matching the paper:
//!
//! ```text
//! <root>/<file-uuid>/meta      # JSON-serialized FileMeta
//! <root>/<file-uuid>/1         # first chunk
//! <root>/<file-uuid>/2         # second chunk
//! ...
//! ```

use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use mayflower_net::HostId;
use mayflower_telemetry::trace::{self as trace, ActiveSpan, TraceHandle};
use mayflower_telemetry::{Counter, Histogram};
use parking_lot::Mutex;

use crate::chunk::split_range;
use crate::error::FsError;
use crate::types::{FileId, FileMeta};

/// Chunk-IO telemetry shared by every dataserver in a cluster (the
/// registry dedups by metric name, so each handle aggregates across
/// hosts).
#[derive(Debug)]
struct DsMetrics {
    appends: Arc<Counter>,
    append_bytes: Arc<Histogram>,
    reads: Arc<Counter>,
    read_bytes: Arc<Histogram>,
    refused: Arc<Counter>,
}

/// Fragment frame (DESIGN.md §14): 4-byte magic, 8-byte LE payload
/// length, 4-byte LE CRC32 of the shard bytes.
const FRAGMENT_MAGIC: &[u8; 4] = b"MFEC";
const FRAGMENT_HEADER: usize = 16;

/// A single storage server: owns one directory tree of file-UUID
/// directories, services appends (one at a time per file) and
/// concurrent reads.
#[derive(Debug)]
pub struct Dataserver {
    host: HostId,
    root: PathBuf,
    /// Per-file append locks, lazily created ("the dataserver only
    /// services one append request at a time for each file").
    append_locks: Mutex<HashMap<FileId, Arc<Mutex<()>>>>,
    /// Fault-injection switch: while false, every data operation
    /// returns [`FsError::Unavailable`], as a crashed process would
    /// refuse connections. State on disk is untouched, so a restart
    /// recovers everything — a fail-stop crash, not data loss.
    up: AtomicBool,
    /// Injected per-request service delay in microseconds: simulates
    /// the network round trip of a data-plane RPC so single-machine
    /// benchmarks can measure how much of it the parallel pipeline
    /// overlaps. Zero (the default) adds nothing; the fluid simulator
    /// and the model checker never set it, so modeled timing stays
    /// deterministic.
    rtt_us: AtomicU64,
    /// Chunk-IO telemetry, attached once by the cluster (absent in
    /// bare unit-test deployments).
    metrics: std::sync::OnceLock<DsMetrics>,
    /// Causal-tracing handle (DESIGN.md §17), attached once by the
    /// cluster. Chunk-IO spans only open under an ambient parent, so a
    /// bare dataserver call outside a traced operation records nothing.
    trace: std::sync::OnceLock<TraceHandle>,
}

impl Dataserver {
    /// Opens (creating if needed) a dataserver rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns an error if the root directory cannot be created.
    pub fn open(host: HostId, root: &Path) -> Result<Dataserver, FsError> {
        std::fs::create_dir_all(root)?;
        Ok(Dataserver {
            host,
            root: root.to_path_buf(),
            append_locks: Mutex::new(HashMap::new()),
            up: AtomicBool::new(true),
            rtt_us: AtomicU64::new(0),
            metrics: std::sync::OnceLock::new(),
            trace: std::sync::OnceLock::new(),
        })
    }

    /// Sets the simulated per-request round-trip delay applied to
    /// data-plane operations (reads, appends, fragment IO). Benchmarks
    /// use this to stand in for network latency; zero disables it.
    pub fn set_simulated_rtt(&self, rtt: std::time::Duration) {
        self.rtt_us.store(
            rtt.as_micros().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
    }

    fn simulate_rtt(&self) {
        let us = self.rtt_us.load(Ordering::Relaxed);
        if us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(us));
        }
    }

    /// Attaches chunk-IO telemetry: `appends_total` / `reads_total`,
    /// `append_bytes` / `read_bytes` histograms, and `refused_total`
    /// (requests rejected while crashed). Idempotent; a second attach
    /// is ignored.
    pub fn attach_metrics(&self, scope: &mayflower_telemetry::Scope) {
        let _ = self.metrics.set(DsMetrics {
            appends: scope.counter("appends_total"),
            append_bytes: scope.histogram("append_bytes"),
            reads: scope.counter("reads_total"),
            read_bytes: scope.histogram("read_bytes"),
            refused: scope.counter("refused_total"),
        });
    }

    /// Attaches a causal-tracing handle. Idempotent; a second attach
    /// is ignored.
    pub fn attach_trace(&self, handle: TraceHandle) {
        // Idempotent: the first cluster to open this store wins.
        let _ = self.trace.set(handle);
    }

    /// Opens a chunk-IO span under the caller's ambient span, stamped
    /// with this host. `None` when tracing is off, unattached, or the
    /// call is not part of a traced operation.
    fn io_span(&self, name: &str) -> Option<ActiveSpan> {
        let mut span = self.trace.get()?.child(name)?;
        span.annotate("host", self.host.0.to_string());
        Some(span)
    }

    /// Simulates a fail-stop crash: subsequent operations return
    /// [`FsError::Unavailable`] until [`Dataserver::restart`].
    pub fn crash(&self) {
        self.up.store(false, Ordering::SeqCst);
    }

    /// Brings a crashed dataserver back; on-disk state is intact.
    pub fn restart(&self) {
        self.up.store(true, Ordering::SeqCst);
    }

    /// Whether the dataserver is accepting requests.
    #[must_use]
    pub fn is_up(&self) -> bool {
        self.up.load(Ordering::SeqCst)
    }

    fn ensure_up(&self) -> Result<(), FsError> {
        if self.is_up() {
            Ok(())
        } else {
            if let Some(m) = self.metrics.get() {
                m.refused.inc();
            }
            Err(FsError::Unavailable(format!(
                "dataserver on host {} is down",
                self.host.0
            )))
        }
    }

    /// The host this dataserver runs on.
    #[must_use]
    pub fn host(&self) -> HostId {
        self.host
    }

    /// The storage root.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn file_dir(&self, id: FileId) -> PathBuf {
        self.root.join(id.as_hex())
    }

    fn chunk_path(&self, id: FileId, chunk: u64) -> PathBuf {
        // On-disk chunk names are 1-based (§3.3.2).
        self.file_dir(id).join(format!("{}", chunk + 1))
    }

    /// On-disk location of a sealed chunk's fragment (`f<chunk>.<j>`,
    /// chunk 1-based like chunk files). Public so tests and tooling can
    /// inject fragment corruption.
    #[must_use]
    pub fn fragment_path(&self, id: FileId, chunk: u64, index: usize) -> PathBuf {
        self.file_dir(id).join(format!("f{}.{index}", chunk + 1))
    }

    /// Creates the local directory and metadata for a new file replica.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::AlreadyExists`] if this replica already holds
    /// the file.
    pub fn create_file(&self, meta: &FileMeta) -> Result<(), FsError> {
        self.ensure_up()?;
        let dir = self.file_dir(meta.id);
        if dir.exists() {
            return Err(FsError::AlreadyExists(meta.name.clone()));
        }
        std::fs::create_dir_all(&dir)?;
        self.write_meta(meta)?;
        Ok(())
    }

    fn write_meta(&self, meta: &FileMeta) -> Result<(), FsError> {
        let body =
            serde_json::to_vec_pretty(meta).map_err(|e| FsError::CorruptMetadata(e.to_string()))?;
        // Write-then-rename: concurrent readers must never observe a
        // truncated metadata file mid-rewrite.
        let dir = self.file_dir(meta.id);
        let tmp = dir.join(format!("meta.tmp.{:?}", std::thread::current().id()));
        std::fs::write(&tmp, body)?;
        std::fs::rename(&tmp, dir.join("meta"))?;
        Ok(())
    }

    /// Overwrites the locally stored metadata of a replica (used when
    /// a file is renamed, so a post-crash nameserver rebuild sees the
    /// current name).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if the replica is absent.
    pub fn update_meta(&self, meta: &FileMeta) -> Result<(), FsError> {
        self.ensure_up()?;
        if !self.has_file(meta.id) {
            return Err(FsError::NotFound(meta.id.to_string()));
        }
        self.write_meta(meta)
    }

    /// Reads the locally stored metadata of a file replica.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if the replica is absent, or
    /// [`FsError::CorruptMetadata`] if the metadata fails to parse.
    pub fn read_meta(&self, id: FileId) -> Result<FileMeta, FsError> {
        self.ensure_up()?;
        let path = self.file_dir(id).join("meta");
        if !path.exists() {
            return Err(FsError::NotFound(id.to_string()));
        }
        let body = std::fs::read(&path)?;
        serde_json::from_slice(&body).map_err(|e| FsError::CorruptMetadata(e.to_string()))
    }

    /// Whether this dataserver holds a replica of the file. A downed
    /// dataserver answers no — callers probing for live copies (repair,
    /// primary election) must not count a crashed replica.
    #[must_use]
    pub fn has_file(&self, id: FileId) -> bool {
        self.is_up() && self.file_dir(id).join("meta").exists()
    }

    /// The replica's current size in bytes (sum of chunk files).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if the replica is absent.
    pub fn local_size(&self, id: FileId) -> Result<u64, FsError> {
        let meta = self.read_meta(id)?;
        // Sum every chunk file the replica holds. Sealed chunks of a
        // coded file are dropped locally, leaving holes below the seal
        // watermark, so absence must not terminate the walk early.
        let mut size = 0u64;
        for chunk in 0..meta.chunk_count().max(meta.sealed_chunks) {
            if let Ok(md) = std::fs::metadata(self.chunk_path(id, chunk)) {
                size += md.len();
            }
        }
        Ok(size)
    }

    /// Appends `data` to the local replica, spilling across chunk
    /// boundaries as needed. Returns the file's new size.
    ///
    /// Only one append per file runs at a time; concurrent reads of
    /// non-last chunks proceed unblocked (§3.3.2).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if the replica is absent.
    pub fn append_local(&self, id: FileId, data: &[u8]) -> Result<u64, FsError> {
        let mut span = self.io_span("chunk_append");
        trace::annotate(&mut span, "bytes", data.len().to_string());
        let out = self.append_local_inner(id, data);
        match &out {
            Ok(size) => trace::annotate(&mut span, "size", size.to_string()),
            Err(_) => trace::mark_error(&mut span),
        }
        out
    }

    fn append_local_inner(&self, id: FileId, data: &[u8]) -> Result<u64, FsError> {
        self.simulate_rtt();
        let lock = {
            let mut locks = self.append_locks.lock();
            locks.entry(id).or_default().clone()
        };
        let _guard = lock.lock();

        let mut meta = self.read_meta(id)?;
        let chunk_size = meta.chunk_size;
        let mut pos = meta.size;
        let mut remaining = data;
        while !remaining.is_empty() {
            let chunk = pos / chunk_size;
            let offset_in_chunk = pos % chunk_size;
            let take = ((chunk_size - offset_in_chunk) as usize).min(remaining.len());
            let mut f = OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.chunk_path(id, chunk))?;
            debug_assert_eq!(f.metadata()?.len(), offset_in_chunk);
            f.write_all(&remaining[..take])?;
            remaining = &remaining[take..];
            pos += take as u64;
        }
        meta.size = pos;
        self.write_meta(&meta)?;
        if let Some(m) = self.metrics.get() {
            m.appends.inc();
            m.append_bytes.record(data.len() as u64);
        }
        Ok(pos)
    }

    /// Reads `[offset, offset + len)` from the local replica. Returns
    /// the bytes read (shorter than `len` at end-of-file) together
    /// with the replica's current size — the paper's way of letting
    /// clients discover appended chunks ("the dataserver includes the
    /// file's size with each read result").
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if the replica is absent.
    pub fn read_local(&self, id: FileId, offset: u64, len: u64) -> Result<(Vec<u8>, u64), FsError> {
        self.simulate_rtt();
        let meta = self.read_meta(id)?;
        // Size the allocation from the replica's actual extent — `len`
        // may reach far past end-of-file.
        let want = (offset + len).min(meta.size).saturating_sub(offset);
        let mut out = vec![0u8; want as usize];
        let (filled, size) = self.fill_from_chunks(&meta, offset, &mut out)?;
        debug_assert_eq!(filled, out.len());
        Ok((out, size))
    }

    /// Zero-copy variant of [`Dataserver::read_local`]: reads
    /// `[offset, offset + buf.len())` directly into `buf`, returning
    /// the byte count actually filled (shorter than the buffer at
    /// end-of-file) and the replica's current size. The parallel read
    /// pipeline hands each piece a disjoint slice of one preallocated
    /// output buffer, so assembly needs no per-piece `Vec` churn.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if the replica is absent.
    pub fn read_local_into(
        &self,
        id: FileId,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<(usize, u64), FsError> {
        let mut span = self.io_span("chunk_read");
        trace::annotate(&mut span, "offset", offset.to_string());
        let out = (|| {
            self.simulate_rtt();
            let meta = self.read_meta(id)?;
            self.fill_from_chunks(&meta, offset, buf)
        })();
        match &out {
            Ok((filled, _)) => trace::annotate(&mut span, "bytes", filled.to_string()),
            Err(_) => trace::mark_error(&mut span),
        }
        out
    }

    /// The shared read core: fills `buf` from the chunk files starting
    /// at `offset`, truncating at the replica's size.
    fn fill_from_chunks(
        &self,
        meta: &FileMeta,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<(usize, u64), FsError> {
        let size = meta.size;
        let end = (offset + buf.len() as u64).min(size);
        if offset >= end {
            // Size probes (zero-length reads) are requests too.
            if let Some(m) = self.metrics.get() {
                m.reads.inc();
                m.read_bytes.record(0);
            }
            return Ok((0, size));
        }
        let mut filled = 0usize;
        for slice in split_range(meta.chunk_size, offset, end - offset) {
            let mut f = std::fs::File::open(self.chunk_path(meta.id, slice.chunk))?;
            f.seek(SeekFrom::Start(slice.offset_in_chunk))?;
            f.read_exact(&mut buf[filled..filled + slice.len as usize])?;
            filled += slice.len as usize;
        }
        if let Some(m) = self.metrics.get() {
            m.reads.inc();
            m.read_bytes.record(filled as u64);
        }
        Ok((filled, size))
    }

    /// Stores fragment `index` of sealed chunk `chunk` (DESIGN.md §14).
    /// The fragment is framed with a magic, the chunk's original
    /// payload length, and a CRC32 of the shard so silent corruption is
    /// detected at read time — Reed-Solomon itself cannot tell a
    /// corrupt shard from a valid one. Idempotent (write-then-rename).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::Unavailable`] if this dataserver is down.
    pub fn put_fragment(
        &self,
        id: FileId,
        chunk: u64,
        index: usize,
        payload_len: u64,
        shard: &[u8],
    ) -> Result<(), FsError> {
        let mut span = self.io_span("fragment_put");
        trace::annotate(&mut span, "chunk", chunk.to_string());
        trace::annotate(&mut span, "fragment", index.to_string());
        let out = self.put_fragment_inner(id, chunk, index, payload_len, shard);
        if out.is_err() {
            trace::mark_error(&mut span);
        }
        out
    }

    fn put_fragment_inner(
        &self,
        id: FileId,
        chunk: u64,
        index: usize,
        payload_len: u64,
        shard: &[u8],
    ) -> Result<(), FsError> {
        self.simulate_rtt();
        self.ensure_up()?;
        let dir = self.file_dir(id);
        std::fs::create_dir_all(&dir)?;
        let mut body = Vec::with_capacity(FRAGMENT_HEADER + shard.len());
        body.extend_from_slice(FRAGMENT_MAGIC);
        body.extend_from_slice(&payload_len.to_le_bytes());
        body.extend_from_slice(&mayflower_kvstore::crc::crc32(shard).to_le_bytes());
        body.extend_from_slice(shard);
        let tmp = dir.join(format!(
            "f{}.{index}.tmp.{:?}",
            chunk + 1,
            std::thread::current().id()
        ));
        std::fs::write(&tmp, body)?;
        std::fs::rename(&tmp, self.fragment_path(id, chunk, index))?;
        if let Some(m) = self.metrics.get() {
            m.appends.inc();
            m.append_bytes.record(shard.len() as u64);
        }
        Ok(())
    }

    /// Reads fragment `index` of sealed chunk `chunk`, verifying the
    /// checksum. Returns the shard bytes and the chunk's original
    /// payload length.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::Unavailable`] if down, [`FsError::NotFound`]
    /// if the fragment is absent, or [`FsError::CorruptMetadata`] when
    /// the frame or checksum fails — callers treat a corrupt fragment
    /// exactly like a lost one and fetch a different source.
    pub fn read_fragment(
        &self,
        id: FileId,
        chunk: u64,
        index: usize,
    ) -> Result<(Vec<u8>, u64), FsError> {
        let mut span = self.io_span("fragment_read");
        trace::annotate(&mut span, "chunk", chunk.to_string());
        trace::annotate(&mut span, "fragment", index.to_string());
        let out = self.read_fragment_inner(id, chunk, index);
        if out.is_err() {
            trace::mark_error(&mut span);
        }
        out
    }

    fn read_fragment_inner(
        &self,
        id: FileId,
        chunk: u64,
        index: usize,
    ) -> Result<(Vec<u8>, u64), FsError> {
        self.simulate_rtt();
        self.ensure_up()?;
        let path = self.fragment_path(id, chunk, index);
        if !path.exists() {
            return Err(FsError::NotFound(format!(
                "fragment {index} of chunk {chunk} of {id}"
            )));
        }
        let body = std::fs::read(&path)?;
        if body.len() < FRAGMENT_HEADER || &body[..4] != FRAGMENT_MAGIC {
            return Err(FsError::CorruptMetadata(format!(
                "fragment {index} of chunk {chunk} of {id}: bad frame"
            )));
        }
        let payload_len = u64::from_le_bytes(body[4..12].try_into().expect("8 bytes"));
        let want_crc = u32::from_le_bytes(body[12..16].try_into().expect("4 bytes"));
        let shard = &body[FRAGMENT_HEADER..];
        if mayflower_kvstore::crc::crc32(shard) != want_crc {
            return Err(FsError::CorruptMetadata(format!(
                "fragment {index} of chunk {chunk} of {id}: checksum mismatch"
            )));
        }
        if let Some(m) = self.metrics.get() {
            m.reads.inc();
            m.read_bytes.record(shard.len() as u64);
        }
        Ok((shard.to_vec(), payload_len))
    }

    /// Whether this dataserver holds the given fragment. A downed
    /// dataserver answers no, like [`Dataserver::has_file`].
    #[must_use]
    pub fn has_fragment(&self, id: FileId, chunk: u64, index: usize) -> bool {
        self.is_up() && self.fragment_path(id, chunk, index).exists()
    }

    /// Removes the replicated copy of a sealed chunk (the storage
    /// reclaim half of seal-and-encode). Missing chunk files are fine —
    /// the seal may be retried after a partial failure.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::Unavailable`] if this dataserver is down.
    pub fn drop_chunk(&self, id: FileId, chunk: u64) -> Result<(), FsError> {
        self.ensure_up()?;
        match std::fs::remove_file(self.chunk_path(id, chunk)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Deletes the local replica.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if the replica is absent.
    pub fn delete_file(&self, id: FileId) -> Result<(), FsError> {
        self.ensure_up()?;
        let dir = self.file_dir(id);
        if !dir.exists() {
            return Err(FsError::NotFound(id.to_string()));
        }
        std::fs::remove_dir_all(dir)?;
        self.append_locks.lock().remove(&id);
        Ok(())
    }

    /// Lists the metadata of every replica stored here — the
    /// nameserver's rebuild source after an unclean restart (§3.3.1).
    ///
    /// # Errors
    ///
    /// Returns an error if the root directory cannot be read.
    pub fn list_files(&self) -> Result<Vec<FileMeta>, FsError> {
        self.ensure_up()?;
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let Some(id) = entry.file_name().to_str().and_then(FileId::from_hex) else {
                continue;
            };
            if let Ok(meta) = self.read_meta(id) {
                out.push(meta);
            }
        }
        out.sort_by_key(|a| a.id);
        Ok(out)
    }

    /// **Repair pull** (dataserver → dataserver): copies a replica
    /// from `source` onto this dataserver chunk-by-chunk, creating the
    /// local directory and stamping the authoritative metadata when
    /// the copy completes. This is the receiving half of the repair
    /// RPC — `source` is either a co-resident [`Dataserver`] or a
    /// remote stub speaking `dataserver.repair_read` over the RPC
    /// layer.
    ///
    /// Idempotent: if this dataserver already holds the file, nothing
    /// is copied and `Ok(0)` is returned. A mid-copy failure removes
    /// the partial replica so a retry starts clean.
    ///
    /// Returns the number of bytes copied.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::Unavailable`] if either side is down, or the
    /// source's read errors.
    pub fn pull_repair(&self, source: &dyn RepairSource, meta: &FileMeta) -> Result<u64, FsError> {
        let mut span = self.io_span("pull_repair");
        trace::annotate(&mut span, "file", &meta.name);
        let out = self.pull_repair_inner(source, meta);
        match &out {
            Ok(copied) => trace::annotate(&mut span, "bytes", copied.to_string()),
            Err(_) => trace::mark_error(&mut span),
        }
        out
    }

    fn pull_repair_inner(
        &self,
        source: &dyn RepairSource,
        meta: &FileMeta,
    ) -> Result<u64, FsError> {
        self.ensure_up()?;
        if self.has_file(meta.id) {
            return Ok(0);
        }
        // A coded file's replicas hold only the chunks above the seal
        // watermark (the sealed region lives in fragments), so the copy
        // starts there. `sealed_bytes` is chunk-aligned, which keeps
        // `append_local`'s chunk numbering consistent with the source.
        let start = meta.sealed_bytes().min(meta.size);
        let mut shell = meta.clone();
        shell.size = start;
        self.create_file(&shell)?;
        let copy = || -> Result<u64, FsError> {
            let mut copied = 0u64;
            loop {
                let (data, total) = source.repair_read(meta.id, start + copied, meta.chunk_size)?;
                if !data.is_empty() {
                    copied += data.len() as u64;
                    self.append_local(meta.id, &data)?;
                }
                if start + copied >= total || data.is_empty() {
                    return Ok(copied);
                }
            }
        };
        match copy() {
            Ok(copied) => {
                // Stamp the replica with the copied size so a
                // nameserver rebuild sees a consistent mapping.
                let mut stamped = meta.clone();
                stamped.size = start + copied;
                self.update_meta(&stamped)?;
                Ok(copied)
            }
            Err(e) => {
                let _ = self.delete_file(meta.id);
                Err(e)
            }
        }
    }
}

/// The source side of the dataserver-to-dataserver repair RPC: a
/// destination [`Dataserver::pull_repair`] streams chunks through this
/// trait, so the same pull loop works against a local dataserver
/// (in-process cluster) or a remote one (the
/// `dataserver.repair_read` RPC stub in [`crate::remote`]).
pub trait RepairSource {
    /// Reads `[offset, offset + len)` of the replica, returning the
    /// bytes and the replica's current total size.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::Unavailable`] if the source is down or
    /// [`FsError::NotFound`] if it does not hold the replica.
    fn repair_read(&self, id: FileId, offset: u64, len: u64) -> Result<(Vec<u8>, u64), FsError>;
}

impl RepairSource for Dataserver {
    fn repair_read(&self, id: FileId, offset: u64, len: u64) -> Result<(Vec<u8>, u64), FsError> {
        self.ensure_up()?;
        self.read_local(id, offset, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir = std::env::temp_dir().join(format!(
                "mayflower-ds-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            std::fs::remove_dir_all(&dir).ok();
            TempDir(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    fn meta(id: u128, chunk_size: u64) -> FileMeta {
        FileMeta {
            id: FileId(id),
            name: format!("file-{id}"),
            chunk_size,
            size: 0,
            replicas: vec![HostId(0)],
            redundancy: crate::types::Redundancy::default(),
            fragments: Vec::new(),
            sealed_chunks: 0,
        }
    }

    #[test]
    fn create_append_read_roundtrip() {
        let dir = TempDir::new("roundtrip");
        let ds = Dataserver::open(HostId(0), &dir.0).unwrap();
        let m = meta(1, 8);
        ds.create_file(&m).unwrap();
        assert_eq!(ds.append_local(m.id, b"hello ").unwrap(), 6);
        assert_eq!(ds.append_local(m.id, b"world!").unwrap(), 12);
        let (data, size) = ds.read_local(m.id, 0, 100).unwrap();
        assert_eq!(data, b"hello world!");
        assert_eq!(size, 12);
    }

    #[test]
    fn appends_spill_across_chunks() {
        let dir = TempDir::new("spill");
        let ds = Dataserver::open(HostId(0), &dir.0).unwrap();
        let m = meta(2, 4);
        ds.create_file(&m).unwrap();
        ds.append_local(m.id, b"abcdefghij").unwrap(); // 10 bytes, chunk 4
                                                       // Chunks 1..=3 exist with sizes 4, 4, 2 (1-based names).
        let d = dir.0.join(m.id.as_hex());
        assert_eq!(std::fs::metadata(d.join("1")).unwrap().len(), 4);
        assert_eq!(std::fs::metadata(d.join("2")).unwrap().len(), 4);
        assert_eq!(std::fs::metadata(d.join("3")).unwrap().len(), 2);
        // Ranged read across boundaries.
        let (data, _) = ds.read_local(m.id, 3, 5).unwrap();
        assert_eq!(data, b"defgh");
    }

    #[test]
    fn read_past_eof_truncates_and_reports_size() {
        let dir = TempDir::new("eof");
        let ds = Dataserver::open(HostId(0), &dir.0).unwrap();
        let m = meta(3, 8);
        ds.create_file(&m).unwrap();
        ds.append_local(m.id, b"12345").unwrap();
        let (data, size) = ds.read_local(m.id, 3, 100).unwrap();
        assert_eq!(data, b"45");
        assert_eq!(size, 5);
        let (data, size) = ds.read_local(m.id, 99, 10).unwrap();
        assert!(data.is_empty());
        assert_eq!(size, 5);
    }

    #[test]
    fn double_create_rejected() {
        let dir = TempDir::new("dup");
        let ds = Dataserver::open(HostId(0), &dir.0).unwrap();
        let m = meta(4, 8);
        ds.create_file(&m).unwrap();
        assert!(matches!(ds.create_file(&m), Err(FsError::AlreadyExists(_))));
    }

    #[test]
    fn delete_removes_everything() {
        let dir = TempDir::new("delete");
        let ds = Dataserver::open(HostId(0), &dir.0).unwrap();
        let m = meta(5, 8);
        ds.create_file(&m).unwrap();
        ds.append_local(m.id, b"data").unwrap();
        ds.delete_file(m.id).unwrap();
        assert!(!ds.has_file(m.id));
        assert!(matches!(
            ds.read_local(m.id, 0, 1),
            Err(FsError::NotFound(_))
        ));
        assert!(matches!(ds.delete_file(m.id), Err(FsError::NotFound(_))));
    }

    #[test]
    fn list_files_finds_all_replicas() {
        let dir = TempDir::new("list");
        let ds = Dataserver::open(HostId(0), &dir.0).unwrap();
        for i in 0..5u128 {
            ds.create_file(&meta(i, 8)).unwrap();
        }
        let listed = ds.list_files().unwrap();
        assert_eq!(listed.len(), 5);
        assert!(listed.windows(2).all(|w| w[0].id < w[1].id));
    }

    #[test]
    fn local_size_tracks_chunks() {
        let dir = TempDir::new("size");
        let ds = Dataserver::open(HostId(0), &dir.0).unwrap();
        let m = meta(6, 4);
        ds.create_file(&m).unwrap();
        ds.append_local(m.id, b"123456789").unwrap();
        assert_eq!(ds.local_size(m.id).unwrap(), 9);
    }

    #[test]
    fn concurrent_appends_serialize() {
        let dir = TempDir::new("concurrent");
        let ds = Arc::new(Dataserver::open(HostId(0), &dir.0).unwrap());
        let m = meta(7, 1 << 20);
        ds.create_file(&m).unwrap();
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let ds = ds.clone();
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        ds.append_local(FileId(7), &[t as u8; 16]).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let (data, size) = ds.read_local(m.id, 0, 1 << 20).unwrap();
        assert_eq!(size, 8 * 50 * 16);
        assert_eq!(data.len() as u64, size);
        // Atomicity: every 16-byte record is homogeneous.
        for rec in data.chunks(16) {
            assert!(rec.iter().all(|b| *b == rec[0]), "torn append: {rec:?}");
        }
    }

    #[test]
    fn crash_refuses_requests_and_restart_recovers_data() {
        let dir = TempDir::new("crash");
        let ds = Dataserver::open(HostId(0), &dir.0).unwrap();
        let m = meta(9, 8);
        ds.create_file(&m).unwrap();
        ds.append_local(m.id, b"durable").unwrap();
        ds.crash();
        assert!(!ds.is_up());
        // Every data op refuses; the replica looks absent to probes.
        assert!(matches!(
            ds.read_local(m.id, 0, 7),
            Err(FsError::Unavailable(_))
        ));
        assert!(matches!(
            ds.append_local(m.id, b"x"),
            Err(FsError::Unavailable(_))
        ));
        assert!(matches!(ds.list_files(), Err(FsError::Unavailable(_))));
        assert!(!ds.has_file(m.id));
        // Fail-stop, not data loss: restart serves the old bytes.
        ds.restart();
        assert!(ds.has_file(m.id));
        let (data, size) = ds.read_local(m.id, 0, 100).unwrap();
        assert_eq!(data, b"durable");
        assert_eq!(size, 7);
    }

    #[test]
    fn pull_repair_copies_across_chunk_boundaries() {
        let src_dir = TempDir::new("pull-src");
        let dst_dir = TempDir::new("pull-dst");
        let src = Dataserver::open(HostId(0), &src_dir.0).unwrap();
        let dst = Dataserver::open(HostId(1), &dst_dir.0).unwrap();
        let mut m = meta(21, 8); // tiny chunks: the pull loops
        src.create_file(&m).unwrap();
        let payload = b"twenty-three byte body!";
        m.size = src.append_local(m.id, payload).unwrap();
        let copied = dst.pull_repair(&src, &m).unwrap();
        assert_eq!(copied, payload.len() as u64);
        let (data, size) = dst.read_local(m.id, 0, 100).unwrap();
        assert_eq!(data, payload);
        assert_eq!(size, payload.len() as u64);
        // Idempotent: a second pull is a no-op.
        assert_eq!(dst.pull_repair(&src, &m).unwrap(), 0);
    }

    #[test]
    fn pull_repair_of_empty_file_creates_shell() {
        let src_dir = TempDir::new("pull-empty-src");
        let dst_dir = TempDir::new("pull-empty-dst");
        let src = Dataserver::open(HostId(0), &src_dir.0).unwrap();
        let dst = Dataserver::open(HostId(1), &dst_dir.0).unwrap();
        let m = meta(22, 8);
        src.create_file(&m).unwrap();
        assert_eq!(dst.pull_repair(&src, &m).unwrap(), 0);
        assert!(dst.has_file(m.id));
    }

    #[test]
    fn pull_repair_from_downed_source_leaves_no_partial() {
        let src_dir = TempDir::new("pull-down-src");
        let dst_dir = TempDir::new("pull-down-dst");
        let src = Dataserver::open(HostId(0), &src_dir.0).unwrap();
        let dst = Dataserver::open(HostId(1), &dst_dir.0).unwrap();
        let mut m = meta(23, 8);
        src.create_file(&m).unwrap();
        m.size = src.append_local(m.id, b"payload").unwrap();
        src.crash();
        assert!(matches!(
            dst.pull_repair(&src, &m),
            Err(FsError::Unavailable(_))
        ));
        // The failed pull cleaned up after itself.
        assert!(!dst.has_file(m.id));
    }

    #[test]
    fn meta_survives_reopen() {
        let dir = TempDir::new("reopen");
        {
            let ds = Dataserver::open(HostId(0), &dir.0).unwrap();
            let m = meta(8, 8);
            ds.create_file(&m).unwrap();
            ds.append_local(m.id, b"persist").unwrap();
        }
        let ds = Dataserver::open(HostId(0), &dir.0).unwrap();
        let m = ds.read_meta(FileId(8)).unwrap();
        assert_eq!(m.size, 7);
        let (data, _) = ds.read_local(FileId(8), 0, 7).unwrap();
        assert_eq!(data, b"persist");
    }
}
