//! Chunk-range arithmetic: mapping byte ranges onto numbered chunks.
//!
//! The paper stores "the first and second chunks as filenames of 1
//! and 2 respectively" (§3.3.2) — chunk numbering is 1-based on disk;
//! this module works in 0-based indices and converts at the I/O layer.

/// One contiguous piece of a byte range that falls in a single chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkSlice {
    /// 0-based chunk index.
    pub chunk: u64,
    /// Offset of the slice within the chunk.
    pub offset_in_chunk: u64,
    /// Length of the slice in bytes.
    pub len: u64,
}

/// Splits the byte range `[offset, offset + len)` into per-chunk
/// slices, in order.
///
/// # Panics
///
/// Panics if `chunk_size == 0`.
#[must_use]
pub fn split_range(chunk_size: u64, offset: u64, len: u64) -> Vec<ChunkSlice> {
    assert!(chunk_size > 0, "chunk size must be positive");
    let mut out = Vec::new();
    let mut pos = offset;
    let end = offset + len;
    while pos < end {
        let chunk = pos / chunk_size;
        let offset_in_chunk = pos % chunk_size;
        let take = (chunk_size - offset_in_chunk).min(end - pos);
        out.push(ChunkSlice {
            chunk,
            offset_in_chunk,
            len: take,
        });
        pos += take;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_within_one_chunk() {
        let s = split_range(100, 10, 20);
        assert_eq!(
            s,
            vec![ChunkSlice {
                chunk: 0,
                offset_in_chunk: 10,
                len: 20
            }]
        );
    }

    #[test]
    fn range_spanning_three_chunks() {
        let s = split_range(10, 5, 22);
        assert_eq!(s.len(), 3);
        assert_eq!(
            s[0],
            ChunkSlice {
                chunk: 0,
                offset_in_chunk: 5,
                len: 5
            }
        );
        assert_eq!(
            s[1],
            ChunkSlice {
                chunk: 1,
                offset_in_chunk: 0,
                len: 10
            }
        );
        assert_eq!(
            s[2],
            ChunkSlice {
                chunk: 2,
                offset_in_chunk: 0,
                len: 7
            }
        );
    }

    #[test]
    fn empty_range_is_empty() {
        assert!(split_range(10, 3, 0).is_empty());
    }

    #[test]
    fn exact_chunk_boundaries() {
        let s = split_range(10, 10, 10);
        assert_eq!(
            s,
            vec![ChunkSlice {
                chunk: 1,
                offset_in_chunk: 0,
                len: 10
            }]
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_chunk_size_rejected() {
        let _ = split_range(0, 0, 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Slices tile the range exactly: contiguous, in-bounds, total
        /// length preserved, no slice crossing a chunk boundary.
        #[test]
        fn slices_tile_the_range(
            chunk_size in 1u64..1000,
            offset in 0u64..10_000,
            len in 0u64..10_000,
        ) {
            let slices = split_range(chunk_size, offset, len);
            let total: u64 = slices.iter().map(|s| s.len).sum();
            prop_assert_eq!(total, len);
            let mut pos = offset;
            for s in &slices {
                prop_assert_eq!(s.chunk * chunk_size + s.offset_in_chunk, pos);
                prop_assert!(s.len > 0);
                prop_assert!(s.offset_in_chunk + s.len <= chunk_size);
                pos += s.len;
            }
        }
    }
}
