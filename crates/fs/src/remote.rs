//! The nameserver exposed over the RPC layer — the paper's Thrift
//! control interface (§5), usable over TCP for multi-process
//! deployments.
//!
//! Methods:
//!
//! | method              | argument        | result     |
//! |---------------------|-----------------|------------|
//! | `nameserver.create` | file name       | `FileMeta` |
//! | `nameserver.lookup` | file name       | `FileMeta` |
//! | `nameserver.delete` | file name       | `FileMeta` |
//! | `nameserver.size`   | `(name, size)`  | `()`       |
//! | `nameserver.list`   | `()`            | `Vec<FileMeta>` |

use std::sync::Arc;

use mayflower_rpc::{Client as RpcClient, RpcError, Service, Transport};

use crate::dataserver::{Dataserver, RepairSource};
use crate::error::FsError;
use crate::nameserver::Nameserver;
use crate::types::{FileId, FileMeta};

/// Server-side adapter: dispatches RPC methods onto a [`Nameserver`].
pub struct NameserverService {
    inner: Arc<Nameserver>,
}

impl NameserverService {
    /// Wraps a nameserver.
    #[must_use]
    pub fn new(inner: Arc<Nameserver>) -> NameserverService {
        NameserverService { inner }
    }
}

fn to_remote(e: &FsError) -> RpcError {
    RpcError::Remote(e.to_string())
}

impl Service for NameserverService {
    fn call(&self, method: &str, body: &[u8]) -> Result<Vec<u8>, RpcError> {
        match method {
            "nameserver.create" => {
                let name: String = serde_json::from_slice(body)?;
                let meta = self.inner.create(&name).map_err(|e| to_remote(&e))?;
                Ok(serde_json::to_vec(&meta)?)
            }
            "nameserver.lookup" => {
                let name: String = serde_json::from_slice(body)?;
                let meta = self.inner.lookup(&name).map_err(|e| to_remote(&e))?;
                Ok(serde_json::to_vec(&meta)?)
            }
            "nameserver.delete" => {
                let name: String = serde_json::from_slice(body)?;
                let meta = self.inner.delete(&name).map_err(|e| to_remote(&e))?;
                Ok(serde_json::to_vec(&meta)?)
            }
            "nameserver.size" => {
                let (name, size): (String, u64) = serde_json::from_slice(body)?;
                self.inner
                    .record_size(&name, size)
                    .map_err(|e| to_remote(&e))?;
                Ok(serde_json::to_vec(&())?)
            }
            "nameserver.list" => Ok(serde_json::to_vec(&self.inner.list())?),
            other => Err(RpcError::UnknownMethod(other.to_string())),
        }
    }
}

/// Client-side typed stub for a remote nameserver.
pub struct RemoteNameserver<T> {
    rpc: RpcClient<T>,
}

impl<T: Transport> RemoteNameserver<T> {
    /// Wraps a transport (in-process or TCP).
    #[must_use]
    pub fn new(transport: T) -> RemoteNameserver<T> {
        RemoteNameserver {
            rpc: RpcClient::new(transport),
        }
    }

    /// Creates a file remotely.
    ///
    /// # Errors
    ///
    /// Returns RPC failures or remote filesystem errors.
    pub fn create(&self, name: &str) -> Result<FileMeta, FsError> {
        Ok(self.rpc.call("nameserver.create", &name.to_string())?)
    }

    /// Looks a file up remotely.
    ///
    /// # Errors
    ///
    /// Returns RPC failures or remote filesystem errors.
    pub fn lookup(&self, name: &str) -> Result<FileMeta, FsError> {
        Ok(self.rpc.call("nameserver.lookup", &name.to_string())?)
    }

    /// Deletes a file remotely.
    ///
    /// # Errors
    ///
    /// Returns RPC failures or remote filesystem errors.
    pub fn delete(&self, name: &str) -> Result<FileMeta, FsError> {
        Ok(self.rpc.call("nameserver.delete", &name.to_string())?)
    }

    /// Records a file's new size remotely.
    ///
    /// # Errors
    ///
    /// Returns RPC failures or remote filesystem errors.
    pub fn record_size(&self, name: &str, size: u64) -> Result<(), FsError> {
        Ok(self
            .rpc
            .call("nameserver.size", &(name.to_string(), size))?)
    }

    /// Lists all files remotely.
    ///
    /// # Errors
    ///
    /// Returns RPC failures.
    pub fn list(&self) -> Result<Vec<FileMeta>, FsError> {
        Ok(self.rpc.call("nameserver.list", &())?)
    }
}

/// Server-side adapter for the dataserver-to-dataserver **repair**
/// RPC: exposes the chunk-read half of a repair pull
/// ([`crate::dataserver::RepairSource`]) so a remote dataserver can
/// re-replicate from this one.
///
/// Methods:
///
/// | method                   | argument              | result             |
/// |--------------------------|-----------------------|--------------------|
/// | `dataserver.repair_read` | `(id, offset, len)`   | `(bytes, size)`    |
pub struct DataserverRepairService {
    inner: Arc<Dataserver>,
}

impl DataserverRepairService {
    /// Wraps a dataserver.
    #[must_use]
    pub fn new(inner: Arc<Dataserver>) -> DataserverRepairService {
        DataserverRepairService { inner }
    }
}

impl Service for DataserverRepairService {
    fn call(&self, method: &str, body: &[u8]) -> Result<Vec<u8>, RpcError> {
        match method {
            "dataserver.repair_read" => {
                let (id, offset, len): (FileId, u64, u64) = serde_json::from_slice(body)?;
                let reply = RepairSource::repair_read(&*self.inner, id, offset, len)
                    .map_err(|e| to_remote(&e))?;
                Ok(serde_json::to_vec(&reply)?)
            }
            other => Err(RpcError::UnknownMethod(other.to_string())),
        }
    }
}

/// Client-side typed stub for a remote repair source: lets a
/// dataserver [`pull_repair`](Dataserver::pull_repair) from a peer in
/// another process over the RPC layer.
pub struct RemoteRepairSource<T> {
    rpc: RpcClient<T>,
}

impl<T: Transport> RemoteRepairSource<T> {
    /// Wraps a transport (in-process or TCP).
    #[must_use]
    pub fn new(transport: T) -> RemoteRepairSource<T> {
        RemoteRepairSource {
            rpc: RpcClient::new(transport),
        }
    }
}

impl<T: Transport> RepairSource for RemoteRepairSource<T> {
    fn repair_read(&self, id: FileId, offset: u64, len: u64) -> Result<(Vec<u8>, u64), FsError> {
        Ok(self
            .rpc
            .call("dataserver.repair_read", &(id, offset, len))?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nameserver::NameserverConfig;
    use mayflower_net::{Topology, TreeParams};
    use mayflower_rpc::{InProcTransport, TcpServer, TcpTransport};
    use std::path::PathBuf;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir = std::env::temp_dir().join(format!(
                "mayflower-remote-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            std::fs::remove_dir_all(&dir).ok();
            TempDir(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    fn nameserver(dir: &TempDir) -> Arc<Nameserver> {
        let topo = Arc::new(Topology::three_tier(&TreeParams::paper_testbed()));
        Arc::new(Nameserver::open(topo, &dir.0, NameserverConfig::default()).unwrap())
    }

    #[test]
    fn inproc_full_lifecycle() {
        let dir = TempDir::new("inproc");
        let ns = nameserver(&dir);
        let service = Arc::new(NameserverService::new(ns));
        let remote = RemoteNameserver::new(InProcTransport::new(service));
        let meta = remote.create("remote/file").unwrap();
        assert_eq!(remote.lookup("remote/file").unwrap(), meta);
        remote.record_size("remote/file", 99).unwrap();
        assert_eq!(remote.lookup("remote/file").unwrap().size, 99);
        assert_eq!(remote.list().unwrap().len(), 1);
        remote.delete("remote/file").unwrap();
        assert!(remote.lookup("remote/file").is_err());
    }

    #[test]
    fn remote_errors_carry_messages() {
        let dir = TempDir::new("errors");
        let ns = nameserver(&dir);
        let service = Arc::new(NameserverService::new(ns));
        let remote = RemoteNameserver::new(InProcTransport::new(service));
        let err = remote.lookup("missing").unwrap_err();
        assert!(err.to_string().contains("missing"), "{err}");
    }

    #[test]
    fn repair_pull_over_inproc_rpc() {
        use mayflower_net::HostId;

        let dir = TempDir::new("repair-rpc");
        let src = Arc::new(Dataserver::open(HostId(0), &dir.0.join("src")).unwrap());
        let dst = Dataserver::open(HostId(1), &dir.0.join("dst")).unwrap();
        let mut meta = FileMeta {
            id: FileId(0xA11CE),
            name: "repair/rpc".into(),
            chunk_size: 8,
            size: 0,
            replicas: vec![HostId(0)],
            redundancy: crate::types::Redundancy::default(),
            fragments: Vec::new(),
            sealed_chunks: 0,
        };
        src.create_file(&meta).unwrap();
        meta.size = src.append_local(meta.id, b"pulled over the wire").unwrap();

        let service = Arc::new(DataserverRepairService::new(src.clone()));
        let remote = RemoteRepairSource::new(InProcTransport::new(service));
        let copied = dst.pull_repair(&remote, &meta).unwrap();
        assert_eq!(copied, meta.size);
        let (data, _) = dst.read_local(meta.id, 0, meta.size).unwrap();
        assert_eq!(data, b"pulled over the wire");
    }

    #[test]
    fn repair_pull_over_real_tcp() {
        use mayflower_net::HostId;

        let dir = TempDir::new("repair-tcp");
        let src = Arc::new(Dataserver::open(HostId(0), &dir.0.join("src")).unwrap());
        let dst = Dataserver::open(HostId(1), &dir.0.join("dst")).unwrap();
        let mut meta = FileMeta {
            id: FileId(0xB0B),
            name: "repair/tcp".into(),
            chunk_size: 4,
            size: 0,
            replicas: vec![HostId(0)],
            redundancy: crate::types::Redundancy::default(),
            fragments: Vec::new(),
            sealed_chunks: 0,
        };
        src.create_file(&meta).unwrap();
        meta.size = src.append_local(meta.id, b"tcp repair body").unwrap();

        let service = Arc::new(DataserverRepairService::new(src.clone()));
        let mut server = TcpServer::bind("127.0.0.1:0", service).unwrap();
        let remote = RemoteRepairSource::new(TcpTransport::connect(server.local_addr()).unwrap());
        assert_eq!(dst.pull_repair(&remote, &meta).unwrap(), meta.size);
        // A crashed source surfaces as a retryable remote error.
        src.crash();
        let other = FileMeta {
            id: FileId(0xB0C),
            ..meta.clone()
        };
        assert!(dst.pull_repair(&remote, &other).is_err());
        server.shutdown();
    }

    #[test]
    fn over_real_tcp() {
        let dir = TempDir::new("tcp");
        let ns = nameserver(&dir);
        let service = Arc::new(NameserverService::new(ns));
        let mut server = TcpServer::bind("127.0.0.1:0", service).unwrap();
        let remote = RemoteNameserver::new(TcpTransport::connect(server.local_addr()).unwrap());
        let meta = remote.create("tcp/file").unwrap();
        assert_eq!(meta.replicas.len(), 3);
        assert_eq!(remote.lookup("tcp/file").unwrap(), meta);
        server.shutdown();
    }
}
