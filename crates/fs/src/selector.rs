//! Pluggable read replica selection for the client library.
//!
//! "During read operations, clients query the Flowserver to select a
//! replica to read from" (§5) — in this crate the query is abstracted
//! behind [`ReplicaSelector`], so the same client code runs with the
//! Flowserver, with HDFS-style rack-awareness, or with trivial
//! policies for tests.

use mayflower_net::{HostId, Topology};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One piece of a read: which replica serves how many bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadAssignment {
    /// The replica host to read from.
    pub replica: HostId,
    /// How many bytes of the request this replica serves.
    pub bytes: u64,
}

/// A read replica selection policy.
///
/// Given a client host, the file's replicas, and a request size,
/// returns one or more assignments whose byte counts sum to the
/// request size. Multiple assignments express a §4.3 split read; the
/// client maps them onto consecutive byte ranges.
pub trait ReplicaSelector: Send {
    /// Chooses the replica(s) for one read.
    fn select_read(
        &mut self,
        client: HostId,
        replicas: &[HostId],
        size_bytes: u64,
    ) -> Vec<ReadAssignment>;

    /// Chooses which `k` of the available fragments of a coded file to
    /// fetch for one sealed-chunk read. `available` lists the live
    /// candidates as `(fragment_index, host)` pairs in fragment order
    /// (data fragments first), and the returned fragment indices must
    /// be a `k`-subset of them — the client falls back to the first
    /// `k` otherwise.
    ///
    /// The default keeps fragment order, which prefers data fragments
    /// and so avoids a decode entirely when all of them are live. A
    /// Flowserver-backed selector instead asks the controller for a
    /// joint k-source + path selection.
    fn select_fragments(
        &mut self,
        client: HostId,
        available: &[(usize, HostId)],
        k: usize,
    ) -> Vec<usize> {
        let _ = client;
        available.iter().take(k).map(|(i, _)| *i).collect()
    }
}

/// Always reads from the primary replica. Simple, and what a
/// consistency-paranoid deployment would run.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrimarySelector;

impl ReplicaSelector for PrimarySelector {
    fn select_read(
        &mut self,
        _client: HostId,
        replicas: &[HostId],
        size_bytes: u64,
    ) -> Vec<ReadAssignment> {
        vec![ReadAssignment {
            replica: replicas[0],
            bytes: size_bytes,
        }]
    }
}

/// HDFS-style rack-aware selection: the topologically closest replica,
/// with deterministic tie-breaking (lowest host id). This is the
/// prototype comparison's "HDFS selects the replica in the same rack
/// where the client is located, if any such replica exists" (§6.7).
#[derive(Debug, Clone)]
pub struct NearestSelector {
    topo: Arc<Topology>,
}

impl NearestSelector {
    /// Creates a selector over the given topology.
    #[must_use]
    pub fn new(topo: Arc<Topology>) -> NearestSelector {
        NearestSelector { topo }
    }
}

impl ReplicaSelector for NearestSelector {
    fn select_read(
        &mut self,
        client: HostId,
        replicas: &[HostId],
        size_bytes: u64,
    ) -> Vec<ReadAssignment> {
        let best = replicas
            .iter()
            .copied()
            .min_by_key(|r| (self.topo.distance(client, *r).unwrap_or(usize::MAX), *r))
            .expect("non-empty replica set");
        vec![ReadAssignment {
            replica: best,
            bytes: size_bytes,
        }]
    }

    /// Rack-aware fragment choice: live **data** fragments first (a
    /// full data set needs no decode at all), then the topologically
    /// closest parity sources to fill in for losses.
    fn select_fragments(
        &mut self,
        client: HostId,
        available: &[(usize, HostId)],
        k: usize,
    ) -> Vec<usize> {
        let mut ranked: Vec<(bool, usize, usize)> = available
            .iter()
            .map(|(i, h)| {
                (
                    *i >= k,
                    self.topo.distance(client, *h).unwrap_or(usize::MAX),
                    *i,
                )
            })
            .collect();
        ranked.sort_unstable();
        ranked.into_iter().take(k).map(|(_, _, i)| i).collect()
    }
}

/// Splits every read into `pieces` equal consecutive ranges, assigned
/// round-robin across the replicas — the §4.3 split-read shape with
/// an explicit knob for how many RPCs one read fans out into. Pairs
/// with [`crate::Client::set_parallelism`], which bounds how many of
/// those pieces are in flight at once; the benches and stress tests
/// use it to drive the data-plane pipeline at a fixed fan-out.
#[derive(Debug, Clone, Copy)]
pub struct SplitSelector {
    pieces: u64,
}

impl SplitSelector {
    /// A selector splitting each read into `pieces` ranges (min 1).
    #[must_use]
    pub fn new(pieces: u64) -> SplitSelector {
        SplitSelector {
            pieces: pieces.max(1),
        }
    }
}

impl ReplicaSelector for SplitSelector {
    fn select_read(
        &mut self,
        _client: HostId,
        replicas: &[HostId],
        size_bytes: u64,
    ) -> Vec<ReadAssignment> {
        let per = size_bytes / self.pieces;
        let mut left = size_bytes;
        (0..self.pieces as usize)
            .map(|i| {
                let bytes = if i as u64 == self.pieces - 1 {
                    left
                } else {
                    per
                };
                left -= bytes;
                ReadAssignment {
                    replica: replicas[i % replicas.len()],
                    bytes,
                }
            })
            .collect()
    }
}

/// Graceful degradation for Flowserver-backed selection: consults the
/// `primary` selector (typically one that queries the Flowserver)
/// while an availability flag is up, and falls back to the `fallback`
/// selector (typically [`NearestSelector`]) while it is down.
///
/// The flag is an [`Arc<AtomicBool>`] so the fault injector can flip
/// it from outside — exactly how a client's RPC timeout to an
/// unreachable Flowserver would manifest. The fallback path is also
/// taken when the primary selector returns no assignments (the
/// Flowserver answered `Unavailable`): a broken control plane must
/// never make data unreadable.
pub struct FallbackSelector<P, F> {
    primary: P,
    fallback: F,
    primary_up: Arc<AtomicBool>,
    fallbacks_taken: u64,
}

impl<P, F> FallbackSelector<P, F> {
    /// Combines two selectors behind an availability flag (`true` =
    /// primary reachable).
    pub fn new(primary: P, fallback: F, primary_up: Arc<AtomicBool>) -> FallbackSelector<P, F> {
        FallbackSelector {
            primary,
            fallback,
            primary_up,
            fallbacks_taken: 0,
        }
    }

    /// How many reads were served by the fallback policy — degraded-
    /// mode decisions, for the run report.
    #[must_use]
    pub fn fallbacks_taken(&self) -> u64 {
        self.fallbacks_taken
    }
}

impl<P: ReplicaSelector, F: ReplicaSelector> ReplicaSelector for FallbackSelector<P, F> {
    fn select_read(
        &mut self,
        client: HostId,
        replicas: &[HostId],
        size_bytes: u64,
    ) -> Vec<ReadAssignment> {
        if self.primary_up.load(Ordering::SeqCst) {
            let picked = self.primary.select_read(client, replicas, size_bytes);
            if !picked.is_empty() {
                return picked;
            }
        }
        self.fallbacks_taken += 1;
        self.fallback.select_read(client, replicas, size_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mayflower_net::{Topology, TreeParams};

    #[test]
    fn primary_selector_reads_everything_from_primary() {
        let mut s = PrimarySelector;
        let a = s.select_read(HostId(0), &[HostId(7), HostId(9)], 100);
        assert_eq!(
            a,
            vec![ReadAssignment {
                replica: HostId(7),
                bytes: 100
            }]
        );
    }

    #[test]
    fn nearest_selector_prefers_same_rack() {
        let topo = Arc::new(Topology::three_tier(&TreeParams::paper_testbed()));
        let mut s = NearestSelector::new(topo);
        let a = s.select_read(HostId(0), &[HostId(40), HostId(1)], 10);
        assert_eq!(a[0].replica, HostId(1));
    }

    #[test]
    fn nearest_selector_prefers_colocated() {
        let topo = Arc::new(Topology::three_tier(&TreeParams::paper_testbed()));
        let mut s = NearestSelector::new(topo);
        let a = s.select_read(HostId(5), &[HostId(40), HostId(5)], 10);
        assert_eq!(a[0].replica, HostId(5));
    }

    #[test]
    fn fallback_switches_on_flag_and_on_empty_answer() {
        // A scripted primary that can also return nothing (the
        // Flowserver's `Unavailable` answer).
        struct Scripted {
            answer: Option<HostId>,
        }
        impl ReplicaSelector for Scripted {
            fn select_read(
                &mut self,
                _client: HostId,
                _replicas: &[HostId],
                size_bytes: u64,
            ) -> Vec<ReadAssignment> {
                match self.answer {
                    Some(replica) => vec![ReadAssignment {
                        replica,
                        bytes: size_bytes,
                    }],
                    None => Vec::new(),
                }
            }
        }
        let topo = Arc::new(Topology::three_tier(&TreeParams::paper_testbed()));
        let up = Arc::new(AtomicBool::new(true));
        let mut s = FallbackSelector::new(
            Scripted {
                answer: Some(HostId(40)),
            },
            NearestSelector::new(topo),
            up.clone(),
        );
        let replicas = [HostId(40), HostId(1)];
        // Primary reachable: its (far) answer wins.
        assert_eq!(
            s.select_read(HostId(0), &replicas, 10)[0].replica,
            HostId(40)
        );
        assert_eq!(s.fallbacks_taken(), 0);
        // Outage: nearest-replica fallback takes over.
        up.store(false, Ordering::SeqCst);
        assert_eq!(
            s.select_read(HostId(0), &replicas, 10)[0].replica,
            HostId(1)
        );
        // Recovery: primary again.
        up.store(true, Ordering::SeqCst);
        assert_eq!(
            s.select_read(HostId(0), &replicas, 10)[0].replica,
            HostId(40)
        );
        // Reachable but answering `Unavailable` (empty): fall back.
        s.primary.answer = None;
        assert_eq!(
            s.select_read(HostId(0), &replicas, 10)[0].replica,
            HostId(1)
        );
        assert_eq!(s.fallbacks_taken(), 2);
    }

    #[test]
    fn nearest_tie_breaks_deterministically() {
        let topo = Arc::new(Topology::three_tier(&TreeParams::paper_testbed()));
        let mut s = NearestSelector::new(topo);
        // Both replicas cross-pod: lowest id wins.
        let a = s.select_read(HostId(0), &[HostId(40), HostId(20)], 10);
        assert_eq!(a[0].replica, HostId(20));
    }

    #[test]
    fn split_selector_covers_the_range_round_robin() {
        let replicas = [HostId(3), HostId(5), HostId(8)];
        let mut s = SplitSelector::new(4);
        let a = s.select_read(HostId(0), &replicas, 103);
        assert_eq!(a.len(), 4);
        assert_eq!(a.iter().map(|p| p.bytes).sum::<u64>(), 103);
        // Equal pieces with the remainder on the last, replicas cycling.
        assert_eq!(
            a[0],
            ReadAssignment {
                replica: HostId(3),
                bytes: 25
            }
        );
        assert_eq!(
            a[1],
            ReadAssignment {
                replica: HostId(5),
                bytes: 25
            }
        );
        assert_eq!(
            a[2],
            ReadAssignment {
                replica: HostId(8),
                bytes: 25
            }
        );
        assert_eq!(
            a[3],
            ReadAssignment {
                replica: HostId(3),
                bytes: 28
            }
        );
        // More pieces than bytes: zero-byte pieces are legal (the
        // client skips them) and the sum still matches.
        let tiny = SplitSelector::new(8).select_read(HostId(0), &replicas, 3);
        assert_eq!(tiny.iter().map(|p| p.bytes).sum::<u64>(), 3);
    }
}
