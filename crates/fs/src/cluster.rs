//! An in-process Mayflower deployment: one dataserver per topology
//! host, a nameserver, and the primary-relay append path.

use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::Arc;

use mayflower_net::{HostId, Topology};
use mayflower_telemetry::trace::{self as trace, TraceHandle, Tracer};
use parking_lot::Mutex;

use crate::client::{Client, ClientMetrics};
use crate::coding::{self, EcMetrics};
use crate::datapath::DatapathMetrics;
use crate::dataserver::Dataserver;
use crate::error::FsError;
use crate::nameserver::{Nameserver, NameserverConfig};
use crate::selector::{NearestSelector, ReplicaSelector};
use crate::types::{Consistency, FileId, FileMeta};

/// Cluster-wide configuration.
#[derive(Debug, Clone, Default)]
pub struct ClusterConfig {
    /// Nameserver settings (replication, chunk size, placement).
    pub nameserver: NameserverConfig,
    /// Read consistency level for clients (§3.4).
    pub consistency: Consistency,
}

/// Serializes appends per file: the "primary dataserver is responsible
/// for ordering all of the append requests for the file" (§3.3.2).
#[derive(Debug, Default)]
pub(crate) struct AppendCoordinator {
    locks: Mutex<HashMap<FileId, Arc<Mutex<()>>>>,
}

impl AppendCoordinator {
    pub(crate) fn file_lock(&self, id: FileId) -> Arc<Mutex<()>> {
        self.locks.lock().entry(id).or_default().clone()
    }
}

/// An in-process Mayflower cluster: the deployment unit used by the
/// examples, the integration tests and the Figure 8 prototype
/// experiment. All components are real (real nameserver database,
/// real bytes in dataserver chunk files); only the network transfer
/// *timing* is delegated to the fluid simulator by the experiment
/// harness.
#[derive(Debug)]
pub struct Cluster {
    topo: Arc<Topology>,
    nameserver: Arc<Nameserver>,
    dataservers: BTreeMap<HostId, Arc<Dataserver>>,
    coordinator: Arc<AppendCoordinator>,
    consistency: Consistency,
    registry: mayflower_telemetry::Registry,
    ec: Arc<EcMetrics>,
    datapath: Arc<DatapathMetrics>,
    /// Causal-tracing root (DESIGN.md §17), disabled by default; every
    /// component handle below shares it.
    tracer: Arc<Tracer>,
    /// Repair/re-election flow spans.
    trace_recovery: TraceHandle,
}

impl Cluster {
    /// Creates a cluster rooted at `dir`: `dir/nameserver` for the
    /// metadata database and `dir/ds-<host>` per dataserver.
    ///
    /// # Errors
    ///
    /// Returns an error if any directory cannot be created.
    pub fn create(
        dir: &Path,
        topo: Arc<Topology>,
        config: ClusterConfig,
    ) -> Result<Cluster, FsError> {
        let nameserver = Arc::new(Nameserver::open(
            topo.clone(),
            &dir.join("nameserver"),
            config.nameserver,
        )?);
        let registry = mayflower_telemetry::Registry::new();
        let tracer = Tracer::new_wall();
        let ds_scope = registry.scope("fs").scope("dataserver");
        let mut dataservers = BTreeMap::new();
        for host in topo.hosts() {
            let ds = Dataserver::open(host, &dir.join(format!("ds-{host}")))?;
            ds.attach_metrics(&ds_scope);
            ds.attach_trace(tracer.handle("dataserver"));
            dataservers.insert(host, Arc::new(ds));
        }
        let ec = Arc::new(EcMetrics::new(&registry.scope("ec")));
        let datapath = Arc::new(DatapathMetrics::new(
            &registry.scope("fs").scope("datapath"),
        ));
        let trace_recovery = tracer.handle("recovery");
        Ok(Cluster {
            topo,
            nameserver,
            dataservers,
            coordinator: Arc::new(AppendCoordinator::default()),
            consistency: config.consistency,
            registry,
            ec,
            datapath,
            tracer,
            trace_recovery,
        })
    }

    /// The cluster's causal tracer. Disabled by default; enable it
    /// (and usually [`Tracer::begin_capture`]) to record per-operation
    /// span trees across clients, dataservers and repair flows.
    #[must_use]
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// Applies a simulated per-request round-trip delay to every
    /// dataserver — the knob single-machine benchmarks turn to stand
    /// in for network latency on the data plane.
    pub fn set_simulated_rtt(&self, rtt: std::time::Duration) {
        for ds in self.dataservers.values() {
            ds.set_simulated_rtt(rtt);
        }
    }

    /// The cluster-wide telemetry registry: dataserver chunk IO and
    /// client operation metrics all land here (`mayfs metrics` renders
    /// it).
    #[must_use]
    pub fn registry(&self) -> &mayflower_telemetry::Registry {
        &self.registry
    }

    /// The cluster's topology.
    #[must_use]
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// The nameserver.
    #[must_use]
    pub fn nameserver(&self) -> &Arc<Nameserver> {
        &self.nameserver
    }

    /// The dataserver on a host.
    ///
    /// # Panics
    ///
    /// Panics if `host` is not in the topology.
    #[must_use]
    pub fn dataserver(&self, host: HostId) -> &Arc<Dataserver> {
        self.dataservers
            .get(&host)
            .expect("every topology host runs a dataserver")
    }

    /// All dataservers, in host order.
    #[must_use]
    pub fn dataservers(&self) -> Vec<Arc<Dataserver>> {
        self.dataservers.values().cloned().collect()
    }

    /// A client on `host` with the default HDFS-style nearest-replica
    /// read selection.
    #[must_use]
    pub fn client(&self, host: HostId) -> Client {
        self.client_with_selector(host, Box::new(NearestSelector::new(self.topo.clone())))
    }

    /// A client on `host` with a custom read selector (e.g. one backed
    /// by the Flowserver).
    #[must_use]
    pub fn client_with_selector(&self, host: HostId, selector: Box<dyn ReplicaSelector>) -> Client {
        self.client_with_meta_and_selector(host, self.nameserver.clone(), selector)
    }

    /// A client on `host` whose metadata operations go through `meta`
    /// instead of the cluster's own nameserver — the hook the sharded
    /// metadata plane uses to hand every client a shard router while
    /// data-path I/O keeps flowing to this cluster's dataservers.
    #[must_use]
    pub fn client_with_meta(&self, host: HostId, meta: Arc<dyn crate::MetadataService>) -> Client {
        self.client_with_meta_and_selector(
            host,
            meta,
            Box::new(NearestSelector::new(self.topo.clone())),
        )
    }

    /// [`Cluster::client_with_meta`] with a custom read selector.
    #[must_use]
    pub fn client_with_meta_and_selector(
        &self,
        host: HostId,
        meta: Arc<dyn crate::MetadataService>,
        selector: Box<dyn ReplicaSelector>,
    ) -> Client {
        Client::new(
            host,
            meta,
            self.dataservers.clone(),
            self.coordinator.clone(),
            self.consistency,
            selector,
            ClientMetrics::new(&self.registry.scope("fs").scope("client")),
            self.datapath.clone(),
            self.ec.clone(),
            self.tracer.handle("client"),
        )
    }

    /// Restores a file's replication factor after replica loss: finds
    /// replicas whose dataserver no longer holds the data, copies the
    /// file from a surviving replica onto replacement hosts chosen
    /// under the same fault-domain constraints, and updates the
    /// nameserver mapping. Returns the hosts that received new copies.
    ///
    /// This is the re-replication background task every GFS/HDFS-class
    /// system runs; the paper folds it into its fault-tolerance goals
    /// (§3.2).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if no surviving replica holds the
    /// data, or I/O errors from the copy.
    pub fn repair(
        &self,
        name: &str,
        rng: &mut mayflower_simcore::SimRng,
    ) -> Result<Vec<HostId>, FsError> {
        self.traced("repair", name, |c| c.repair_inner(name, rng))
    }

    /// Runs `f` under a recovery-flow span named `op` (a child when an
    /// ambient span exists — e.g. the recovery executor's task span —
    /// else a root), marking it failed on error.
    fn traced<T>(
        &self,
        op: &str,
        file: &str,
        f: impl FnOnce(&Cluster) -> Result<T, FsError>,
    ) -> Result<T, FsError> {
        let mut span = self.trace_recovery.span(op);
        trace::annotate(&mut span, "file", file);
        let out = {
            let _g = span.as_ref().map(trace::ActiveSpan::enter);
            f(self)
        };
        if out.is_err() {
            trace::mark_error(&mut span);
        }
        out
    }

    fn repair_inner(
        &self,
        name: &str,
        rng: &mut mayflower_simcore::SimRng,
    ) -> Result<Vec<HostId>, FsError> {
        let meta = self.nameserver.lookup(name)?;
        let lock = self.coordinator.file_lock(meta.id);
        let _guard = lock.lock();
        // Re-read under the lock (an append may have just finished).
        let mut meta = self.nameserver.lookup(name)?;

        let (alive, dead): (Vec<HostId>, Vec<HostId>) = meta
            .replicas
            .iter()
            .partition(|r| self.dataserver(**r).has_file(meta.id));
        if dead.is_empty() {
            return Ok(Vec::new());
        }
        let Some(&source) = alive.first() else {
            return Err(FsError::NotFound(format!(
                "{name}: all replicas lost, cannot re-replicate"
            )));
        };

        // Replacements come from the cluster's placement policy, which
        // re-checks the fault-domain spread of the *whole* final
        // replica set (§3.1's no-two-replicas-per-rack constraint) —
        // including the case where the survivors are concentrated in
        // one rack — and degrades to any live host when too few racks
        // survive, instead of panicking. Only hosts whose dataserver
        // is up are eligible: copying onto a crashed server would fail.
        let eligible: Vec<HostId> = self
            .topo
            .hosts()
            .into_iter()
            .filter(|h| !meta.replicas.contains(h) && self.dataserver(*h).is_up())
            .collect();
        let policy = self.nameserver.config().placement;
        let new_hosts = policy.replacements(&self.topo, &alive, &eligible, dead.len(), rng);
        if new_hosts.len() < dead.len() {
            return Err(FsError::Unavailable(format!(
                "{name}: only {} of {} replacement hosts available",
                new_hosts.len(),
                dead.len()
            )));
        }
        for replacement in &new_hosts {
            // Dataserver-to-dataserver pull: the destination streams
            // chunks straight from the surviving source replica.
            self.dataserver(*replacement)
                .pull_repair(&**self.dataserver(source), &meta)?;
        }

        // Splice the replacements into the replica list, preserving
        // the primary position when the primary survived.
        let mut spliced = Vec::with_capacity(meta.replicas.len());
        let mut fresh = new_hosts.iter().copied();
        for r in &meta.replicas {
            if dead.contains(r) {
                spliced.push(fresh.next().expect("one replacement per loss"));
            } else {
                spliced.push(*r);
            }
        }
        meta.replicas = spliced;
        // Persist the new mapping (rename-in-place keeps name + id).
        self.nameserver.delete(name)?;
        self.nameserver.create_exact(&meta)?;
        for r in &meta.replicas {
            let _ = self.dataserver(*r).update_meta(&meta);
        }
        Ok(new_hosts)
    }

    /// One **targeted** repair step, the unit of work the recovery
    /// subsystem's throttled executor issues: copy `name` from
    /// `source` onto `dest` over the dataserver-to-dataserver repair
    /// RPC and splice `dest` into the replica set in place of the
    /// first lost replica.
    ///
    /// Unlike [`Cluster::repair`], the source and destination are
    /// decided by the caller — the repair planner picks them jointly
    /// with a network path by consulting the Flowserver at background
    /// priority.
    ///
    /// Idempotent under the per-file lock: if the file is no longer
    /// under-replicated (a concurrent repair won the race) or `dest`
    /// already holds a replica, nothing is copied and `Ok(0)` is
    /// returned. Returns the number of bytes copied otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::Unavailable`] if `source` no longer holds a
    /// live copy or `dest` is down, and nameserver errors from
    /// persisting the new mapping.
    pub fn repair_to(&self, name: &str, source: HostId, dest: HostId) -> Result<u64, FsError> {
        self.traced("repair_to", name, |c| {
            let mut span = c.trace_recovery.child("copy");
            trace::annotate(&mut span, "source", source.to_string());
            trace::annotate(&mut span, "dest", dest.to_string());
            let out = c.repair_to_inner(name, source, dest);
            match &out {
                Ok(bytes) => trace::annotate(&mut span, "bytes", bytes.to_string()),
                Err(_) => trace::mark_error(&mut span),
            }
            out
        })
    }

    fn repair_to_inner(&self, name: &str, source: HostId, dest: HostId) -> Result<u64, FsError> {
        let meta = self.nameserver.lookup(name)?;
        let lock = self.coordinator.file_lock(meta.id);
        let _guard = lock.lock();
        // Re-read under the lock (a concurrent repair may have won).
        let mut meta = self.nameserver.lookup(name)?;

        let Some(lost) = meta
            .replicas
            .iter()
            .position(|r| !self.dataserver(*r).has_file(meta.id))
        else {
            return Ok(0); // fully replicated again — nothing to do
        };
        if meta.replicas.contains(&dest) && self.dataserver(dest).has_file(meta.id) {
            return Ok(0);
        }
        if !self.dataserver(source).has_file(meta.id) {
            return Err(FsError::Unavailable(format!(
                "{name}: repair source host {source} lost its copy"
            )));
        }
        let copied = self
            .dataserver(dest)
            .pull_repair(&**self.dataserver(source), &meta)?;
        meta.replicas[lost] = dest;
        self.nameserver.delete(name)?;
        self.nameserver.create_exact(&meta)?;
        for r in &meta.replicas {
            let _ = self.dataserver(*r).update_meta(&meta);
        }
        Ok(copied)
    }

    /// Promotes the first live replica to primary when the current
    /// primary's dataserver has crashed, so appends (which are relayed
    /// primary-first) and strong-consistency reads (which pin the last
    /// chunk to the primary) keep working through the outage. Returns
    /// the new primary, or `None` if the primary was already live and
    /// nothing changed.
    ///
    /// The paper places replicas in distinct fault domains precisely so
    /// a single-component failure leaves a live copy to promote (§3.1);
    /// this is the corresponding control-plane reaction.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::Unavailable`] if no replica is live, or
    /// nameserver errors from persisting the new order.
    pub fn reelect_primary(&self, name: &str) -> Result<Option<HostId>, FsError> {
        self.traced("reelect_primary", name, |c| c.reelect_primary_inner(name))
    }

    fn reelect_primary_inner(&self, name: &str) -> Result<Option<HostId>, FsError> {
        let meta = self.nameserver.lookup(name)?;
        let lock = self.coordinator.file_lock(meta.id);
        let _guard = lock.lock();
        let mut meta = self.nameserver.lookup(name)?;

        if self.dataserver(meta.primary()).is_up() {
            return Ok(None);
        }
        let Some(pos) = meta
            .replicas
            .iter()
            .position(|r| self.dataserver(*r).has_file(meta.id))
        else {
            return Err(FsError::Unavailable(format!(
                "{name}: no live replica to promote"
            )));
        };
        let new_primary = meta.replicas.remove(pos);
        meta.replicas.insert(0, new_primary);
        // Persist the new order (same idiom as repair: delete +
        // create_exact keeps name and id).
        self.nameserver.delete(name)?;
        self.nameserver.create_exact(&meta)?;
        for r in &meta.replicas {
            let _ = self.dataserver(*r).update_meta(&meta);
        }
        Ok(Some(new_primary))
    }

    /// Appends through the primary: takes the file's append lock,
    /// writes the primary replica, relays to the remaining replicas in
    /// order, then records the new size at the nameserver.
    ///
    /// # Errors
    ///
    /// Propagates dataserver or nameserver failures.
    pub fn append_via_primary(&self, meta: &FileMeta, data: &[u8]) -> Result<u64, FsError> {
        let lock = self.coordinator.file_lock(meta.id);
        let _guard = lock.lock();
        let mut new_size = 0;
        for (i, host) in meta.replicas.iter().enumerate() {
            let size = self.dataserver(*host).append_local(meta.id, data)?;
            if i == 0 {
                new_size = size;
            } else {
                debug_assert_eq!(size, new_size, "replica divergence on append");
            }
        }
        self.nameserver.record_size(&meta.name, new_size)?;
        if meta.is_coded() && new_size / meta.chunk_size > meta.sealed_chunks {
            // Best-effort seal of newly complete chunks, still under
            // the file lock (same policy as the client append path).
            let _ = coding::seal_complete_chunks(
                self.nameserver.as_ref(),
                &self.dataservers,
                &meta.name,
                Some(&self.ec),
            );
        }
        Ok(new_size)
    }

    /// Seals every complete-but-unsealed chunk of a coded file now,
    /// instead of waiting for the next append to trigger it: reads each
    /// chunk from a live replica, stripes it into `k + m` checksummed
    /// fragments on the fragment hosts, advances the nameserver's seal
    /// watermark, and reclaims the replicated chunk copies. Returns the
    /// new watermark (in chunks).
    ///
    /// Safe to call at any time and idempotent; a fragment host that is
    /// down stops the seal early (those chunks stay replicated).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] for unknown files and
    /// [`FsError::CorruptMetadata`] for inconsistent fragment maps.
    pub fn seal(&self, name: &str) -> Result<u64, FsError> {
        self.traced("seal", name, |c| {
            let meta = c.nameserver.lookup(name)?;
            let lock = c.coordinator.file_lock(meta.id);
            let _guard = lock.lock();
            coding::seal_complete_chunks(c.nameserver.as_ref(), &c.dataservers, name, Some(&c.ec))
        })
    }

    /// One targeted **coded repair** step, the erasure-tier counterpart
    /// of [`Cluster::repair_to`]: reconstructs fragment `index` of
    /// every sealed chunk from `k` surviving fragments, stores it on
    /// `dest`, and splices `dest` into the fragment map. The repair
    /// planner picks `dest` and schedules the `k` source transfers with
    /// the Flowserver at background priority.
    ///
    /// Idempotent under the per-file lock: if the fragment is live and
    /// complete on its current host, nothing is rebuilt and `Ok(0)` is
    /// returned. Returns the fragment bytes written otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::InvalidArgument`] for replicated files, an
    /// out-of-range index, or a `dest` already holding another
    /// fragment; [`FsError::Unavailable`] when fewer than `k` fragments
    /// of any sealed chunk survive.
    pub fn repair_fragment(&self, name: &str, index: usize, dest: HostId) -> Result<u64, FsError> {
        self.traced("repair_fragment", name, |c| {
            let mut span = c.trace_recovery.child("rebuild");
            trace::annotate(&mut span, "fragment", index.to_string());
            trace::annotate(&mut span, "dest", dest.to_string());
            let out = c.repair_fragment_inner(name, index, dest);
            match &out {
                Ok(bytes) => trace::annotate(&mut span, "bytes", bytes.to_string()),
                Err(_) => trace::mark_error(&mut span),
            }
            out
        })
    }

    fn repair_fragment_inner(
        &self,
        name: &str,
        index: usize,
        dest: HostId,
    ) -> Result<u64, FsError> {
        let meta = self.nameserver.lookup(name)?;
        let lock = self.coordinator.file_lock(meta.id);
        let _guard = lock.lock();
        // Re-read under the lock (a concurrent repair may have won).
        let meta = self.nameserver.lookup(name)?;
        if !meta.is_coded() {
            return Err(FsError::InvalidArgument(format!(
                "{name} is not a coded file"
            )));
        }
        if index >= meta.fragments.len() {
            return Err(FsError::InvalidArgument(format!(
                "fragment index {index} out of range for {name}"
            )));
        }
        if meta
            .fragments
            .iter()
            .enumerate()
            .any(|(i, h)| i != index && *h == dest)
        {
            return Err(FsError::InvalidArgument(format!(
                "host {dest} already holds another fragment of {name}"
            )));
        }
        if meta.sealed_chunks == 0 {
            return Ok(0);
        }
        let current = meta.fragments[index];
        let intact = (0..meta.sealed_chunks)
            .all(|c| self.dataserver(current).has_fragment(meta.id, c, index));
        if intact {
            return Ok(0);
        }
        let written =
            coding::rebuild_fragment(&self.dataservers, &meta, index, dest, Some(&self.ec))?;
        self.nameserver.set_fragment(name, index, dest)?;
        let meta = self.nameserver.lookup(name)?;
        for host in meta.replicas.iter().chain(&meta.fragments) {
            let _ = self.dataserver(*host).update_meta(&meta);
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mayflower_net::TreeParams;
    use std::path::PathBuf;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir = std::env::temp_dir().join(format!(
                "mayflower-cluster-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            std::fs::remove_dir_all(&dir).ok();
            TempDir(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    fn small_cluster(dir: &TempDir) -> Cluster {
        let topo = Arc::new(Topology::three_tier(&TreeParams {
            pods: 2,
            racks_per_pod: 2,
            hosts_per_rack: 2,
            ..TreeParams::paper_testbed()
        }));
        let config = ClusterConfig {
            nameserver: NameserverConfig {
                chunk_size: 16,
                ..NameserverConfig::default()
            },
            ..ClusterConfig::default()
        };
        Cluster::create(&dir.0, topo, config).unwrap()
    }

    #[test]
    fn cluster_spawns_a_dataserver_per_host() {
        let dir = TempDir::new("spawn");
        let c = small_cluster(&dir);
        assert_eq!(c.dataservers().len(), 8);
    }

    #[test]
    fn append_replicates_to_all_replicas() {
        let dir = TempDir::new("replicate");
        let c = small_cluster(&dir);
        let meta = c.nameserver().create("f").unwrap();
        for r in &meta.replicas {
            c.dataserver(*r).create_file(&meta).unwrap();
        }
        c.append_via_primary(&meta, b"hello").unwrap();
        for r in &meta.replicas {
            let (data, size) = c.dataserver(*r).read_local(meta.id, 0, 5).unwrap();
            assert_eq!(data, b"hello", "replica {r} diverged");
            assert_eq!(size, 5);
        }
        assert_eq!(c.nameserver().lookup("f").unwrap().size, 5);
    }

    #[test]
    fn repair_restores_replication_after_loss() {
        use mayflower_simcore::SimRng;
        let dir = TempDir::new("repair");
        let c = small_cluster(&dir);
        let meta = c.nameserver().create("fixme").unwrap();
        for r in &meta.replicas {
            c.dataserver(*r).create_file(&meta).unwrap();
        }
        c.append_via_primary(&meta, b"precious payload").unwrap();

        // Lose a non-primary replica.
        let victim = meta.replicas[1];
        c.dataserver(victim).delete_file(meta.id).unwrap();

        let mut rng = SimRng::seed_from(5);
        let new_hosts = c.repair("fixme", &mut rng).unwrap();
        assert_eq!(new_hosts.len(), 1);
        let fixed = c.nameserver().lookup("fixme").unwrap();
        assert_eq!(fixed.replicas.len(), 3);
        assert!(!fixed.replicas.contains(&victim));
        assert_eq!(fixed.primary(), meta.primary(), "primary preserved");
        // Every replica (incl. the new one) serves the full payload.
        for r in &fixed.replicas {
            let (data, _) = c.dataserver(*r).read_local(meta.id, 0, 100).unwrap();
            assert_eq!(data, b"precious payload", "replica {r}");
        }
        // No two replicas share a rack.
        let mut racks: Vec<_> = fixed
            .replicas
            .iter()
            .map(|h| c.topology().rack_of(*h))
            .collect();
        racks.sort();
        racks.dedup();
        assert_eq!(racks.len(), 3);
        // Idempotent: nothing left to repair.
        assert!(c.repair("fixme", &mut rng).unwrap().is_empty());
    }

    #[test]
    fn primary_reelection_survives_dataserver_crash() {
        let dir = TempDir::new("reelect");
        let c = small_cluster(&dir);
        let meta = c.nameserver().create("hot").unwrap();
        for r in &meta.replicas {
            c.dataserver(*r).create_file(&meta).unwrap();
        }
        c.append_via_primary(&meta, b"before crash ").unwrap();

        // Live primary: nothing to do.
        assert_eq!(c.reelect_primary("hot").unwrap(), None);

        let old_primary = meta.primary();
        c.dataserver(old_primary).crash();
        let promoted = c.reelect_primary("hot").unwrap().unwrap();
        assert_ne!(promoted, old_primary);
        let after = c.nameserver().lookup("hot").unwrap();
        assert_eq!(after.primary(), promoted);
        assert_eq!(
            after.replicas.len(),
            meta.replicas.len(),
            "no replica dropped"
        );

        // Appends keep working through the surviving replicas.
        let mut live = after.clone();
        live.replicas.retain(|r| c.dataserver(*r).is_up());
        c.append_via_primary(&live, b"after crash").unwrap();
        let (data, _) = c.dataserver(promoted).read_local(meta.id, 0, 100).unwrap();
        assert_eq!(data, b"before crash after crash");

        // The crashed host restarts with its pre-crash bytes intact —
        // stale but recoverable (repair would re-sync it).
        c.dataserver(old_primary).restart();
        let (stale, _) = c
            .dataserver(old_primary)
            .read_local(meta.id, 0, 100)
            .unwrap();
        assert_eq!(stale, b"before crash ");
    }

    #[test]
    fn reelection_with_all_replicas_down_is_unavailable() {
        let dir = TempDir::new("reelect-none");
        let c = small_cluster(&dir);
        let meta = c.nameserver().create("doomed").unwrap();
        for r in &meta.replicas {
            c.dataserver(*r).create_file(&meta).unwrap();
            c.dataserver(*r).crash();
        }
        assert!(matches!(
            c.reelect_primary("doomed"),
            Err(FsError::Unavailable(_))
        ));
    }

    #[test]
    fn repair_fails_when_everything_is_lost() {
        use mayflower_simcore::SimRng;
        let dir = TempDir::new("unrepairable");
        let c = small_cluster(&dir);
        let meta = c.nameserver().create("gone").unwrap();
        for r in &meta.replicas {
            c.dataserver(*r).create_file(&meta).unwrap();
            c.dataserver(*r).delete_file(meta.id).unwrap();
        }
        let mut rng = SimRng::seed_from(6);
        assert!(matches!(
            c.repair("gone", &mut rng),
            Err(FsError::NotFound(_))
        ));
    }

    #[test]
    fn concurrent_appends_keep_replicas_identical() {
        let dir = TempDir::new("order");
        let c = Arc::new(small_cluster(&dir));
        let meta = c.nameserver().create("f").unwrap();
        for r in &meta.replicas {
            c.dataserver(*r).create_file(&meta).unwrap();
        }
        let threads: Vec<_> = (0..6u8)
            .map(|t| {
                let c = c.clone();
                let meta = meta.clone();
                std::thread::spawn(move || {
                    for _ in 0..30 {
                        c.append_via_primary(&meta, &[t; 8]).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let size = 6 * 30 * 8;
        let reference = c
            .dataserver(meta.replicas[0])
            .read_local(meta.id, 0, size)
            .unwrap()
            .0;
        assert_eq!(reference.len() as u64, size);
        // Sequential consistency: every replica saw the same order.
        for r in &meta.replicas[1..] {
            let other = c.dataserver(*r).read_local(meta.id, 0, size).unwrap().0;
            assert_eq!(other, reference, "replica {r} ordered differently");
        }
        // And no torn append records.
        for rec in reference.chunks(8) {
            assert!(rec.iter().all(|b| *b == rec[0]));
        }
    }
}
