//! The fault-tolerant nameserver: state machine replication over
//! Paxos, the paper's §3.3.1 future-work item ("we can improve the
//! fault-tolerance of the nameserver by using a state machine
//! replication algorithm, such as Paxos, to replicate the nameserver
//! to multiple nodes").
//!
//! Design: every mutation is a fully-deterministic [`NsOp`] — the
//! *proposing* node decides the UUID and replica placement, so each
//! replica's [`Nameserver`] applies the identical transition. Ops are
//! sequenced by the [`mayflower_consensus`] replicated log; each
//! replica applies its log's gap-free committed prefix in slot order.
//! Reads can then be served by any replica that has applied the ops
//! the caller depends on (read-your-writes via the proposing node).

use std::path::Path;
use std::sync::Arc;

use mayflower_consensus::cluster::{Cluster as PaxosGroup, FaultModel};
use mayflower_consensus::ReplicaId;
use mayflower_net::Topology;
use mayflower_simcore::SimRng;

use crate::error::FsError;
use crate::nameserver::{Nameserver, NameserverConfig};
use crate::types::{FileId, FileMeta, Redundancy};

/// A deterministic nameserver mutation, replicated through the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NsOp {
    /// Create a file with pre-decided metadata.
    Create(FileMeta),
    /// Delete a file by name.
    Delete(String),
    /// Record a file's new size after an append.
    RecordSize {
        /// File name.
        name: String,
        /// New size in bytes.
        size: u64,
    },
}

/// A nameserver replicated across `n` nodes via Paxos.
///
/// Mutations go through [`ReplicatedNameserver::create`] /
/// [`ReplicatedNameserver::delete`] / [`ReplicatedNameserver::
/// record_size`], each proposed at a chosen node (tolerating crashed
/// minorities); reads are served from any live node's applied state.
pub struct ReplicatedNameserver {
    group: PaxosGroup<NsOp>,
    nameservers: Vec<Arc<Nameserver>>,
    /// Ops applied so far per node (prefix length).
    applied: Vec<usize>,
    config: NameserverConfig,
    rng: SimRng,
}

impl ReplicatedNameserver {
    /// Creates an `n`-way replicated nameserver with databases under
    /// `dir/ns-<i>`.
    ///
    /// # Errors
    ///
    /// Returns an error if any replica's database cannot be opened.
    pub fn open(
        topo: Arc<Topology>,
        dir: &Path,
        n: usize,
        config: NameserverConfig,
        seed: u64,
    ) -> Result<ReplicatedNameserver, FsError> {
        let nameservers = (0..n)
            .map(|i| {
                Nameserver::open(topo.clone(), &dir.join(format!("ns-{i}")), config.clone())
                    .map(Arc::new)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ReplicatedNameserver {
            group: PaxosGroup::with_faults(n, seed, FaultModel::default()),
            nameservers,
            applied: vec![0; n],
            config,
            rng: SimRng::seed_from(seed ^ 0x5253), // "RS"
        })
    }

    /// Number of replicas.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.nameservers.len()
    }

    /// Crashes a node (stops participating in consensus).
    pub fn crash(&mut self, node: u32) {
        self.group.crash(ReplicaId(node));
    }

    /// Restarts a crashed node; it catches up from the log on the next
    /// operation.
    pub fn restart(&mut self, node: u32) {
        self.group.restart(ReplicaId(node));
    }

    /// Proposes an op at `node`, drives consensus to quiescence, and
    /// applies every newly-committed op everywhere.
    fn replicate(&mut self, node: u32, op: NsOp) -> Result<(), FsError> {
        self.group.propose(ReplicaId(node), op.clone());
        self.group.run_to_quiescence();
        self.apply_committed()?;
        // If a minority partition blocked the op, surface it.
        let committed = self
            .group
            .replica(ReplicaId(node))
            .log()
            .values()
            .any(|v| *v == op);
        if committed {
            Ok(())
        } else {
            // Withdraw so the stuck proposal cannot wedge later ops.
            self.group.abandon(ReplicaId(node));
            Err(FsError::Consistency(
                "operation not committed (no quorum reachable)".into(),
            ))
        }
    }

    /// Applies each node's committed prefix to its nameserver.
    fn apply_committed(&mut self) -> Result<(), FsError> {
        for i in 0..self.nameservers.len() {
            let prefix: Vec<NsOp> = self
                .group
                .replica(ReplicaId(i as u32))
                .committed_prefix()
                .into_iter()
                .cloned()
                .collect();
            for op in prefix.iter().skip(self.applied[i]) {
                Self::apply(&self.nameservers[i], op)?;
            }
            self.applied[i] = prefix.len();
        }
        Ok(())
    }

    fn apply(ns: &Nameserver, op: &NsOp) -> Result<(), FsError> {
        match op {
            NsOp::Create(meta) => match ns.create_exact(meta) {
                Ok(()) | Err(FsError::AlreadyExists(_)) => Ok(()),
                Err(e) => Err(e),
            },
            NsOp::Delete(name) => match ns.delete(name) {
                Ok(_) | Err(FsError::NotFound(_)) => Ok(()),
                Err(e) => Err(e),
            },
            NsOp::RecordSize { name, size } => match ns.record_size(name, *size) {
                Ok(()) | Err(FsError::NotFound(_)) => Ok(()),
                Err(e) => Err(e),
            },
        }
    }

    /// Creates a file: the proposing `node` decides UUID and placement,
    /// then replicates the decision.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::AlreadyExists`] for duplicate names, or
    /// [`FsError::Consistency`] if no quorum is reachable.
    pub fn create(&mut self, node: u32, name: &str) -> Result<FileMeta, FsError> {
        if name.is_empty() {
            return Err(FsError::InvalidArgument("file name is empty".into()));
        }
        // Duplicate check against the proposer's applied state.
        if self.lookup_at(node, name).is_ok() {
            return Err(FsError::AlreadyExists(name.to_string()));
        }
        let topo = self.nameservers[node as usize].topology().clone();
        let id = FileId((u128::from(self.rng.next_u64()) << 64) | u128::from(self.rng.next_u64()));
        let replicas = self
            .config
            .placement
            .place(&topo, self.config.replication, &mut self.rng);
        let meta = FileMeta {
            id,
            name: name.to_string(),
            chunk_size: self.config.chunk_size,
            size: 0,
            replicas,
            redundancy: Redundancy::default(),
            fragments: Vec::new(),
            sealed_chunks: 0,
        };
        self.replicate(node, NsOp::Create(meta.clone()))?;
        Ok(meta)
    }

    /// Deletes a file through `node`, returning the deleted metadata —
    /// the same contract as the direct and remote nameservers, so
    /// callers can release the file's chunks and fragments.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] or [`FsError::Consistency`].
    pub fn delete(&mut self, node: u32, name: &str) -> Result<FileMeta, FsError> {
        let meta = self.lookup_at(node, name)?;
        self.replicate(node, NsOp::Delete(name.to_string()))?;
        Ok(meta)
    }

    /// Records a size change through `node`.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] or [`FsError::Consistency`].
    pub fn record_size(&mut self, node: u32, name: &str, size: u64) -> Result<(), FsError> {
        self.lookup_at(node, name)?;
        self.replicate(
            node,
            NsOp::RecordSize {
                name: name.to_string(),
                size,
            },
        )
    }

    /// Reads a file's metadata from a specific node's applied state.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if that node has not (yet) applied
    /// a create for the name.
    pub fn lookup_at(&self, node: u32, name: &str) -> Result<FileMeta, FsError> {
        self.nameservers[node as usize].lookup(name)
    }

    /// Number of files according to a node's applied state.
    #[must_use]
    pub fn file_count_at(&self, node: u32) -> usize {
        self.nameservers[node as usize].file_count()
    }
}

impl std::fmt::Debug for ReplicatedNameserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedNameserver")
            .field("replicas", &self.nameservers.len())
            .field("applied", &self.applied)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mayflower_net::TreeParams;
    use std::path::PathBuf;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir = std::env::temp_dir().join(format!(
                "mayflower-repl-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            std::fs::remove_dir_all(&dir).ok();
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    fn replicated(dir: &TempDir, n: usize) -> ReplicatedNameserver {
        let topo = Arc::new(Topology::three_tier(&TreeParams::paper_testbed()));
        ReplicatedNameserver::open(topo, &dir.0, n, NameserverConfig::default(), 7).unwrap()
    }

    #[test]
    fn create_is_visible_on_every_replica() {
        let dir = TempDir::new("visible");
        let mut rns = replicated(&dir, 3);
        let meta = rns.create(0, "a/b").unwrap();
        for node in 0..3 {
            let found = rns.lookup_at(node, "a/b").unwrap();
            assert_eq!(found.id, meta.id, "node {node} diverged");
            assert_eq!(found.replicas, meta.replicas);
        }
    }

    #[test]
    fn ops_through_different_nodes_stay_consistent() {
        let dir = TempDir::new("multi");
        let mut rns = replicated(&dir, 3);
        rns.create(0, "f1").unwrap();
        let f2 = rns.create(1, "f2").unwrap();
        rns.record_size(2, "f1", 99).unwrap();
        let deleted = rns.delete(1, "f2").unwrap();
        assert_eq!(deleted.id, f2.id, "delete returns the dead metadata");
        assert_eq!(deleted.name, "f2");
        for node in 0..3 {
            assert_eq!(rns.file_count_at(node), 1, "node {node}");
            assert_eq!(rns.lookup_at(node, "f1").unwrap().size, 99);
            assert!(rns.lookup_at(node, "f2").is_err());
        }
    }

    #[test]
    fn survives_minority_crash_and_failover() {
        let dir = TempDir::new("failover");
        let mut rns = replicated(&dir, 3);
        rns.create(0, "before").unwrap();
        // The original proposer crashes; the system fails over.
        rns.crash(0);
        let meta = rns.create(1, "after").unwrap();
        assert_eq!(rns.lookup_at(1, "after").unwrap().id, meta.id);
        assert_eq!(rns.lookup_at(2, "after").unwrap().id, meta.id);
        // The crashed node recovers and catches up on the next op.
        rns.restart(0);
        rns.record_size(1, "after", 5).unwrap();
        assert!(rns.lookup_at(0, "after").is_ok());
    }

    #[test]
    fn majority_crash_rejects_writes_safely() {
        let dir = TempDir::new("quorumloss");
        let mut rns = replicated(&dir, 3);
        rns.create(0, "ok").unwrap();
        rns.crash(1);
        rns.crash(2);
        let err = rns.create(0, "blocked");
        assert!(
            matches!(err, Err(FsError::Consistency(_))),
            "write without quorum must fail: {err:?}"
        );
        // Reads of committed state still work on the live node.
        assert!(rns.lookup_at(0, "ok").is_ok());
    }

    #[test]
    fn duplicate_create_rejected() {
        let dir = TempDir::new("dup");
        let mut rns = replicated(&dir, 3);
        rns.create(0, "x").unwrap();
        assert!(matches!(rns.create(1, "x"), Err(FsError::AlreadyExists(_))));
    }

    #[test]
    fn five_way_replication_tolerates_two_crashes() {
        let dir = TempDir::new("fiveway");
        let mut rns = replicated(&dir, 5);
        rns.crash(3);
        rns.crash(4);
        rns.create(0, "resilient").unwrap();
        for node in 0..3 {
            assert!(rns.lookup_at(node, "resilient").is_ok());
        }
    }
}
