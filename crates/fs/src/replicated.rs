//! The fault-tolerant nameserver: state machine replication over
//! Paxos, the paper's §3.3.1 future-work item ("we can improve the
//! fault-tolerance of the nameserver by using a state machine
//! replication algorithm, such as Paxos, to replicate the nameserver
//! to multiple nodes").
//!
//! Design: every mutation is a fully-deterministic [`NsOp`] — the
//! *proposing* node decides the UUID and replica placement, so each
//! replica's [`Nameserver`] applies the identical transition. Ops are
//! sequenced by the [`mayflower_consensus`] replicated log; each
//! replica applies its log's gap-free committed prefix in slot order.
//! Reads can then be served by any replica that has applied the ops
//! the caller depends on (read-your-writes via the proposing node).

use std::path::Path;
use std::sync::Arc;

use mayflower_consensus::cluster::{Cluster as PaxosGroup, FaultModel};
use mayflower_consensus::ReplicaId;
use mayflower_net::Topology;
use mayflower_simcore::SimRng;

use crate::error::FsError;
use crate::nameserver::{Nameserver, NameserverConfig};
use crate::types::{FileId, FileMeta, Redundancy};

/// A deterministic nameserver mutation, replicated through the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NsOp {
    /// Create a file with pre-decided metadata.
    Create(FileMeta),
    /// Delete a file by name.
    Delete(String),
    /// Record a file's new size after an append.
    RecordSize {
        /// File name.
        name: String,
        /// New size in bytes.
        size: u64,
    },
    /// Move a file to a new name, optionally displacing an existing
    /// file at the destination.
    Rename {
        /// Current name.
        from: String,
        /// New name.
        to: String,
        /// Whether an existing destination is displaced.
        overwrite: bool,
    },
    /// Advance a coded file's seal watermark.
    RecordSeal {
        /// File name.
        name: String,
        /// New watermark, in chunks.
        sealed_chunks: u64,
    },
    /// Re-point one fragment slot at a new host after coded repair.
    SetFragment {
        /// File name.
        name: String,
        /// Fragment index.
        index: usize,
        /// The fragment's new home.
        host: mayflower_net::HostId,
    },
}

/// A nameserver replicated across `n` nodes via Paxos.
///
/// Mutations go through [`ReplicatedNameserver::create`] /
/// [`ReplicatedNameserver::delete`] / [`ReplicatedNameserver::
/// record_size`], each proposed at a chosen node (tolerating crashed
/// minorities); reads are served from any live node's applied state.
pub struct ReplicatedNameserver {
    group: PaxosGroup<NsOp>,
    nameservers: Vec<Arc<Nameserver>>,
    /// Ops applied so far per node (prefix length).
    applied: Vec<usize>,
    config: NameserverConfig,
    rng: SimRng,
}

impl ReplicatedNameserver {
    /// Creates an `n`-way replicated nameserver with databases under
    /// `dir/ns-<i>`.
    ///
    /// # Errors
    ///
    /// Returns an error if any replica's database cannot be opened.
    pub fn open(
        topo: Arc<Topology>,
        dir: &Path,
        n: usize,
        config: NameserverConfig,
        seed: u64,
    ) -> Result<ReplicatedNameserver, FsError> {
        let nameservers = (0..n)
            .map(|i| {
                Nameserver::open(topo.clone(), &dir.join(format!("ns-{i}")), config.clone())
                    .map(Arc::new)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ReplicatedNameserver {
            group: PaxosGroup::with_faults(n, seed, FaultModel::default()),
            nameservers,
            applied: vec![0; n],
            config,
            rng: SimRng::seed_from(seed ^ 0x5253), // "RS"
        })
    }

    /// Number of replicas.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.nameservers.len()
    }

    /// Crashes a node (stops participating in consensus).
    pub fn crash(&mut self, node: u32) {
        self.group.crash(ReplicaId(node));
    }

    /// Restarts a crashed node; it catches up from the log on the next
    /// operation.
    pub fn restart(&mut self, node: u32) {
        self.group.restart(ReplicaId(node));
    }

    /// Proposes an op at `node`, drives consensus to quiescence, and
    /// applies every newly-committed op everywhere.
    fn replicate(&mut self, node: u32, op: NsOp) -> Result<(), FsError> {
        self.group.propose(ReplicaId(node), op.clone());
        self.group.run_to_quiescence();
        self.apply_committed()?;
        // If a minority partition blocked the op, surface it.
        let committed = self
            .group
            .replica(ReplicaId(node))
            .log()
            .values()
            .any(|v| *v == op);
        if committed {
            Ok(())
        } else {
            // Withdraw so the stuck proposal cannot wedge later ops.
            self.group.abandon(ReplicaId(node));
            Err(FsError::Consistency(
                "operation not committed (no quorum reachable)".into(),
            ))
        }
    }

    /// Applies each node's committed prefix to its nameserver.
    fn apply_committed(&mut self) -> Result<(), FsError> {
        for i in 0..self.nameservers.len() {
            let prefix: Vec<NsOp> = self
                .group
                .replica(ReplicaId(i as u32))
                .committed_prefix()
                .into_iter()
                .cloned()
                .collect();
            for op in prefix.iter().skip(self.applied[i]) {
                Self::apply(&self.nameservers[i], op)?;
            }
            self.applied[i] = prefix.len();
        }
        Ok(())
    }

    fn apply(ns: &Nameserver, op: &NsOp) -> Result<(), FsError> {
        match op {
            NsOp::Create(meta) => match ns.create_exact(meta) {
                Ok(()) | Err(FsError::AlreadyExists(_)) => Ok(()),
                Err(e) => Err(e),
            },
            NsOp::Delete(name) => match ns.delete(name) {
                Ok(_) | Err(FsError::NotFound(_)) => Ok(()),
                Err(e) => Err(e),
            },
            NsOp::RecordSize { name, size } => match ns.record_size(name, *size) {
                Ok(()) | Err(FsError::NotFound(_)) => Ok(()),
                Err(e) => Err(e),
            },
            NsOp::Rename {
                from,
                to,
                overwrite,
            } => match ns.rename(from, to, *overwrite) {
                // NotFound tolerated: a replayed rename already moved
                // the entry.
                Ok(_) | Err(FsError::NotFound(_)) => Ok(()),
                Err(e) => Err(e),
            },
            NsOp::RecordSeal {
                name,
                sealed_chunks,
            } => match ns.record_seal(name, *sealed_chunks) {
                // InvalidArgument tolerated: a replay of an
                // already-applied watermark looks like a regression.
                Ok(()) | Err(FsError::NotFound(_) | FsError::InvalidArgument(_)) => Ok(()),
                Err(e) => Err(e),
            },
            NsOp::SetFragment { name, index, host } => match ns.set_fragment(name, *index, *host) {
                Ok(()) | Err(FsError::NotFound(_)) => Ok(()),
                Err(e) => Err(e),
            },
        }
    }

    /// Creates a file: the proposing `node` decides UUID and placement,
    /// then replicates the decision.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::AlreadyExists`] for duplicate names, or
    /// [`FsError::Consistency`] if no quorum is reachable.
    pub fn create(&mut self, node: u32, name: &str) -> Result<FileMeta, FsError> {
        if name.is_empty() {
            return Err(FsError::InvalidArgument("file name is empty".into()));
        }
        // Duplicate check against the proposer's applied state.
        if self.lookup_at(node, name).is_ok() {
            return Err(FsError::AlreadyExists(name.to_string()));
        }
        let topo = self.nameservers[node as usize].topology().clone();
        let id = FileId((u128::from(self.rng.next_u64()) << 64) | u128::from(self.rng.next_u64()));
        let replicas = self
            .config
            .placement
            .place(&topo, self.config.replication, &mut self.rng);
        let meta = FileMeta {
            id,
            name: name.to_string(),
            chunk_size: self.config.chunk_size,
            size: 0,
            replicas,
            redundancy: Redundancy::default(),
            fragments: Vec::new(),
            sealed_chunks: 0,
        };
        self.replicate(node, NsOp::Create(meta.clone()))?;
        Ok(meta)
    }

    /// Creates a file under an explicit redundancy policy, the
    /// replicated analogue of [`Nameserver::create_with`]. Coded
    /// policies are rejected: seal-and-encode is driven by cluster
    /// machinery that is not yet replicated-nameserver-aware.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::AlreadyExists`], [`FsError::InvalidArgument`]
    /// for coded policies, or [`FsError::Consistency`].
    pub fn create_with(
        &mut self,
        node: u32,
        name: &str,
        redundancy: Redundancy,
    ) -> Result<FileMeta, FsError> {
        let Redundancy::Replicated { n } = redundancy else {
            return Err(FsError::InvalidArgument(
                "coded files are not supported on a replicated nameserver".into(),
            ));
        };
        if name.is_empty() {
            return Err(FsError::InvalidArgument("file name is empty".into()));
        }
        if self.lookup_at(node, name).is_ok() {
            return Err(FsError::AlreadyExists(name.to_string()));
        }
        let topo = self.nameservers[node as usize].topology().clone();
        let id = FileId((u128::from(self.rng.next_u64()) << 64) | u128::from(self.rng.next_u64()));
        let replicas = self.config.placement.place(&topo, n, &mut self.rng);
        let meta = FileMeta {
            id,
            name: name.to_string(),
            chunk_size: self.config.chunk_size,
            size: 0,
            replicas,
            redundancy,
            fragments: Vec::new(),
            sealed_chunks: 0,
        };
        self.replicate(node, NsOp::Create(meta.clone()))?;
        Ok(meta)
    }

    /// Replicates **pre-decided** metadata verbatim — the hook shard
    /// migration uses to move an existing file's mapping onto a
    /// replicated shard without re-placing its replicas.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::AlreadyExists`] or [`FsError::Consistency`].
    pub fn create_exact(&mut self, node: u32, meta: &FileMeta) -> Result<(), FsError> {
        if self.lookup_at(node, &meta.name).is_ok() {
            return Err(FsError::AlreadyExists(meta.name.clone()));
        }
        self.replicate(node, NsOp::Create(meta.clone()))
    }

    /// Renames `old` to `new` through `node`, returning any displaced
    /// metadata when `overwrite` is set.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`], [`FsError::AlreadyExists`]
    /// without `overwrite`, or [`FsError::Consistency`].
    pub fn rename(
        &mut self,
        node: u32,
        old: &str,
        new: &str,
        overwrite: bool,
    ) -> Result<Option<FileMeta>, FsError> {
        self.lookup_at(node, old)?;
        let displaced = match self.lookup_at(node, new) {
            Ok(meta) => {
                if !overwrite {
                    return Err(FsError::AlreadyExists(new.to_string()));
                }
                Some(meta)
            }
            Err(_) => None,
        };
        self.replicate(
            node,
            NsOp::Rename {
                from: old.to_string(),
                to: new.to_string(),
                overwrite,
            },
        )?;
        Ok(displaced)
    }

    /// Advances a coded file's seal watermark through `node`.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`], [`FsError::InvalidArgument`] for
    /// non-coded files or a regressing watermark, or
    /// [`FsError::Consistency`].
    pub fn record_seal(
        &mut self,
        node: u32,
        name: &str,
        sealed_chunks: u64,
    ) -> Result<(), FsError> {
        let meta = self.lookup_at(node, name)?;
        if !meta.is_coded() {
            return Err(FsError::InvalidArgument(format!(
                "{name} is not a coded file"
            )));
        }
        if sealed_chunks < meta.sealed_chunks {
            return Err(FsError::InvalidArgument(format!(
                "seal watermark cannot regress ({} -> {sealed_chunks})",
                meta.sealed_chunks
            )));
        }
        self.replicate(
            node,
            NsOp::RecordSeal {
                name: name.to_string(),
                sealed_chunks,
            },
        )
    }

    /// Re-homes one fragment slot through `node` after a coded repair.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`], [`FsError::InvalidArgument`] for
    /// an out-of-range index, or [`FsError::Consistency`].
    pub fn set_fragment(
        &mut self,
        node: u32,
        name: &str,
        index: usize,
        host: mayflower_net::HostId,
    ) -> Result<(), FsError> {
        let meta = self.lookup_at(node, name)?;
        if index >= meta.fragments.len() {
            return Err(FsError::InvalidArgument(format!(
                "fragment index {index} out of range for {name}"
            )));
        }
        self.replicate(
            node,
            NsOp::SetFragment {
                name: name.to_string(),
                index,
                host,
            },
        )
    }

    /// Deletes a file through `node`, returning the deleted metadata —
    /// the same contract as the direct and remote nameservers, so
    /// callers can release the file's chunks and fragments.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] or [`FsError::Consistency`].
    pub fn delete(&mut self, node: u32, name: &str) -> Result<FileMeta, FsError> {
        let meta = self.lookup_at(node, name)?;
        self.replicate(node, NsOp::Delete(name.to_string()))?;
        Ok(meta)
    }

    /// Records a size change through `node`.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] or [`FsError::Consistency`].
    pub fn record_size(&mut self, node: u32, name: &str, size: u64) -> Result<(), FsError> {
        self.lookup_at(node, name)?;
        self.replicate(
            node,
            NsOp::RecordSize {
                name: name.to_string(),
                size,
            },
        )
    }

    /// Reads a file's metadata from a specific node's applied state.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if that node has not (yet) applied
    /// a create for the name.
    pub fn lookup_at(&self, node: u32, name: &str) -> Result<FileMeta, FsError> {
        self.nameservers[node as usize].lookup(name)
    }

    /// Number of files according to a node's applied state.
    #[must_use]
    pub fn file_count_at(&self, node: u32) -> usize {
        self.nameservers[node as usize].file_count()
    }

    /// Every file in a node's applied state, in name order — the scan
    /// shard migration uses to find the keys a ring change moves.
    #[must_use]
    pub fn list_at(&self, node: u32) -> Vec<FileMeta> {
        self.nameservers[node as usize].list()
    }
}

impl std::fmt::Debug for ReplicatedNameserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedNameserver")
            .field("replicas", &self.nameservers.len())
            .field("applied", &self.applied)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mayflower_net::TreeParams;
    use std::path::PathBuf;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir = std::env::temp_dir().join(format!(
                "mayflower-repl-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            std::fs::remove_dir_all(&dir).ok();
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    fn replicated(dir: &TempDir, n: usize) -> ReplicatedNameserver {
        let topo = Arc::new(Topology::three_tier(&TreeParams::paper_testbed()));
        ReplicatedNameserver::open(topo, &dir.0, n, NameserverConfig::default(), 7).unwrap()
    }

    #[test]
    fn create_is_visible_on_every_replica() {
        let dir = TempDir::new("visible");
        let mut rns = replicated(&dir, 3);
        let meta = rns.create(0, "a/b").unwrap();
        for node in 0..3 {
            let found = rns.lookup_at(node, "a/b").unwrap();
            assert_eq!(found.id, meta.id, "node {node} diverged");
            assert_eq!(found.replicas, meta.replicas);
        }
    }

    #[test]
    fn ops_through_different_nodes_stay_consistent() {
        let dir = TempDir::new("multi");
        let mut rns = replicated(&dir, 3);
        rns.create(0, "f1").unwrap();
        let f2 = rns.create(1, "f2").unwrap();
        rns.record_size(2, "f1", 99).unwrap();
        let deleted = rns.delete(1, "f2").unwrap();
        assert_eq!(deleted.id, f2.id, "delete returns the dead metadata");
        assert_eq!(deleted.name, "f2");
        for node in 0..3 {
            assert_eq!(rns.file_count_at(node), 1, "node {node}");
            assert_eq!(rns.lookup_at(node, "f1").unwrap().size, 99);
            assert!(rns.lookup_at(node, "f2").is_err());
        }
    }

    #[test]
    fn survives_minority_crash_and_failover() {
        let dir = TempDir::new("failover");
        let mut rns = replicated(&dir, 3);
        rns.create(0, "before").unwrap();
        // The original proposer crashes; the system fails over.
        rns.crash(0);
        let meta = rns.create(1, "after").unwrap();
        assert_eq!(rns.lookup_at(1, "after").unwrap().id, meta.id);
        assert_eq!(rns.lookup_at(2, "after").unwrap().id, meta.id);
        // The crashed node recovers and catches up on the next op.
        rns.restart(0);
        rns.record_size(1, "after", 5).unwrap();
        assert!(rns.lookup_at(0, "after").is_ok());
    }

    #[test]
    fn majority_crash_rejects_writes_safely() {
        let dir = TempDir::new("quorumloss");
        let mut rns = replicated(&dir, 3);
        rns.create(0, "ok").unwrap();
        rns.crash(1);
        rns.crash(2);
        let err = rns.create(0, "blocked");
        assert!(
            matches!(err, Err(FsError::Consistency(_))),
            "write without quorum must fail: {err:?}"
        );
        // Reads of committed state still work on the live node.
        assert!(rns.lookup_at(0, "ok").is_ok());
    }

    #[test]
    fn duplicate_create_rejected() {
        let dir = TempDir::new("dup");
        let mut rns = replicated(&dir, 3);
        rns.create(0, "x").unwrap();
        assert!(matches!(rns.create(1, "x"), Err(FsError::AlreadyExists(_))));
    }

    #[test]
    fn five_way_replication_tolerates_two_crashes() {
        let dir = TempDir::new("fiveway");
        let mut rns = replicated(&dir, 5);
        rns.crash(3);
        rns.crash(4);
        rns.create(0, "resilient").unwrap();
        for node in 0..3 {
            assert!(rns.lookup_at(node, "resilient").is_ok());
        }
    }
}
