//! The metadata-plane interface clients program against.
//!
//! [`Client`](crate::Client) historically talked straight to a single
//! [`Nameserver`]; the sharded metadata plane (`mayflower-shard`)
//! introduces routers that spread the namespace over many nameservers
//! behind a consistent-hash ring. [`MetadataService`] is the seam: it
//! captures exactly the metadata operations the client and the coded
//! seal path perform, so a `Client` works identically against one
//! nameserver, a Paxos group, or a shard router.

use crate::error::FsError;
use crate::nameserver::Nameserver;
use crate::types::{FileMeta, Redundancy};

/// The metadata operations a filesystem client needs, abstracted over
/// the plane that serves them (single nameserver, replicated group, or
/// sharded router).
///
/// Implementations must be safe to share across client threads; the
/// plain [`Nameserver`] already is (interior mutability over its KV
/// store), and routers hold their shard-map cache behind a lock.
pub trait MetadataService: Send + Sync {
    /// Creates `name` under `redundancy`, placing replicas (and
    /// fragment hosts for coded files).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::AlreadyExists`] for duplicate names.
    fn create_with(&self, name: &str, redundancy: Redundancy) -> Result<FileMeta, FsError>;

    /// The file's current metadata.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] for unknown files.
    fn lookup(&self, name: &str) -> Result<FileMeta, FsError>;

    /// Records the file's size after an append.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] for unknown files.
    fn record_size(&self, name: &str, size: u64) -> Result<(), FsError>;

    /// Advances a coded file's seal watermark (monotonic).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] for unknown files and
    /// [`FsError::InvalidArgument`] for a regressing watermark.
    fn record_seal(&self, name: &str, sealed_chunks: u64) -> Result<(), FsError>;

    /// Moves `old` to `new`, returning any displaced metadata when
    /// `overwrite` is set.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if `old` is missing and
    /// [`FsError::AlreadyExists`] if `new` exists without `overwrite`.
    fn rename(&self, old: &str, new: &str, overwrite: bool) -> Result<Option<FileMeta>, FsError>;

    /// Removes the namespace entry, returning the dropped metadata so
    /// the caller can garbage-collect replica data.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] for unknown files.
    fn delete(&self, name: &str) -> Result<FileMeta, FsError>;
}

impl MetadataService for Nameserver {
    fn create_with(&self, name: &str, redundancy: Redundancy) -> Result<FileMeta, FsError> {
        Nameserver::create_with(self, name, redundancy)
    }

    fn lookup(&self, name: &str) -> Result<FileMeta, FsError> {
        Nameserver::lookup(self, name)
    }

    fn record_size(&self, name: &str, size: u64) -> Result<(), FsError> {
        Nameserver::record_size(self, name, size)
    }

    fn record_seal(&self, name: &str, sealed_chunks: u64) -> Result<(), FsError> {
        Nameserver::record_seal(self, name, sealed_chunks)
    }

    fn rename(&self, old: &str, new: &str, overwrite: bool) -> Result<Option<FileMeta>, FsError> {
        Nameserver::rename(self, old, new, overwrite)
    }

    fn delete(&self, name: &str) -> Result<FileMeta, FsError> {
        Nameserver::delete(self, name)
    }
}
