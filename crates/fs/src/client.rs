//! The Mayflower client library (§5): an HDFS-like API with metadata
//! caching and pluggable read selection.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use mayflower_net::HostId;
use mayflower_telemetry::trace::{self, TraceHandle};
use mayflower_telemetry::{Counter, Histogram, Scope, Span};

use crate::cluster::AppendCoordinator;
use crate::coding::{self, EcMetrics};
use crate::datapath::{self, DatapathMetrics, FetchCtx, RetryPolicy};
use crate::dataserver::Dataserver;
use crate::error::FsError;
use crate::selector::{ReadAssignment, ReplicaSelector};
use crate::service::MetadataService;
use crate::types::{Consistency, FileMeta, Redundancy};

/// Client-side telemetry. Handles come from the cluster registry, so
/// every client of a cluster aggregates into the same series.
#[derive(Debug)]
pub(crate) struct ClientMetrics {
    read_latency_us: Arc<Histogram>,
    append_latency_us: Arc<Histogram>,
    read_bytes: Arc<Counter>,
    append_bytes: Arc<Counter>,
    retries: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_evictions: Arc<Counter>,
    cache_stale_invalidations: Arc<Counter>,
}

impl ClientMetrics {
    pub(crate) fn new(scope: &Scope) -> ClientMetrics {
        ClientMetrics {
            read_latency_us: scope.histogram("read_latency_us"),
            append_latency_us: scope.histogram("append_latency_us"),
            read_bytes: scope.counter("read_bytes_total"),
            append_bytes: scope.counter("append_bytes_total"),
            retries: scope.counter("retries_total"),
            cache_hits: scope.counter("cache_hits_total"),
            cache_misses: scope.counter("cache_misses_total"),
            cache_evictions: scope.counter("cache_evictions_total"),
            cache_stale_invalidations: scope.counter("cache_stale_invalidations_total"),
        }
    }
}

/// A filesystem client bound to one host.
///
/// Clients cache file metadata: append-only semantics guarantee that
/// existing file→chunk map entries never change (§3.3), so a cached
/// entry can only be *behind* (missing recent appends), never wrong —
/// and the dataserver reports the current size with every read result,
/// which the client uses to discover appended data.
pub struct Client {
    host: HostId,
    nameserver: Arc<dyn MetadataService>,
    dataservers: BTreeMap<HostId, Arc<Dataserver>>,
    coordinator: Arc<AppendCoordinator>,
    consistency: Consistency,
    selector: Box<dyn ReplicaSelector>,
    cache: HashMap<String, (FileMeta, std::time::Instant)>,
    /// Expiry for cached file→dataservers mappings. The chunk map is
    /// safe to cache forever under append-only semantics, but replica
    /// locations can change (re-replication after failures), so the
    /// paper prescribes "cache expiry times that depend on the mean
    /// time between replica migration and node failure" (§3.3).
    cache_ttl: std::time::Duration,
    /// Maximum cached entries; inserting past this evicts the entry
    /// closest to expiry so a client touching a large namespace cannot
    /// grow without bound.
    cache_capacity: usize,
    metrics: ClientMetrics,
    /// Parallel-pipeline telemetry, shared with every client of the
    /// cluster.
    datapath: Arc<DatapathMetrics>,
    /// Coded-tier telemetry, shared with the cluster's seal and repair
    /// paths.
    ec: Arc<EcMetrics>,
    /// How many times a retryable ([`FsError::Unavailable`]) operation
    /// is attempted before the error propagates.
    retry_attempts: u32,
    /// Base delay between attempts; doubles each retry, capped.
    retry_backoff: std::time::Duration,
    /// Worker-pool width for parallel piece fetches, append relays and
    /// fragment reads; 1 runs everything serially inline.
    parallelism: usize,
    /// Client-side tracing: op roots (`create`/`append`/`read`) and
    /// their direct children open here.
    trace: TraceHandle,
    /// Datapath tracing: piece spans, created on the client thread in
    /// planning order (deterministic ids) and entered by pool workers.
    trace_datapath: TraceHandle,
}

/// Backoff growth is capped so a long retry budget cannot make a
/// client hang for seconds on a dead component.
const MAX_RETRY_BACKOFF: std::time::Duration = datapath::MAX_RETRY_BACKOFF;

/// What a ranged read brought back: the bytes, plus the file sizes the
/// serving dataservers piggybacked on their responses — the fold that
/// replaces the standalone size-probe RPC in [`Client::read`].
#[derive(Debug, Default)]
struct RangeOutcome {
    data: Vec<u8>,
    /// Size reported by a response the primary served, if any. Under
    /// strong consistency only this is authoritative.
    primary_size: Option<u64>,
    /// Largest size any serving replica reported. Any replica's size
    /// is a valid sequential-consistency answer: a replica only knows
    /// bytes whose append the primary ordered.
    max_size: Option<u64>,
}

/// Default data-plane pool width. Piece fetches and relays are
/// I/O-bound — workers spend their time waiting on dataserver round
/// trips — so the default is a fixed small fan-out rather than a
/// function of core count.
const DEFAULT_PARALLELISM: usize = 4;

/// Default metadata-cache capacity. A cached entry is ~a FileMeta, so
/// even at the cap the cache stays well under a megabyte.
const DEFAULT_CACHE_CAPACITY: usize = 1024;

impl Client {
    /// Assembles a client. Use [`crate::Cluster::client`] in normal
    /// deployments.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        host: HostId,
        nameserver: Arc<dyn MetadataService>,
        dataservers: BTreeMap<HostId, Arc<Dataserver>>,
        coordinator: Arc<AppendCoordinator>,
        consistency: Consistency,
        selector: Box<dyn ReplicaSelector>,
        metrics: ClientMetrics,
        datapath: Arc<DatapathMetrics>,
        ec: Arc<EcMetrics>,
        trace: TraceHandle,
    ) -> Client {
        let trace_datapath = trace.tracer().handle("datapath");
        Client {
            host,
            nameserver,
            dataservers,
            coordinator,
            consistency,
            selector,
            cache: HashMap::new(),
            cache_ttl: std::time::Duration::from_secs(300),
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            metrics,
            datapath,
            ec,
            retry_attempts: 3,
            retry_backoff: std::time::Duration::from_millis(1),
            parallelism: DEFAULT_PARALLELISM,
            trace,
            trace_datapath,
        }
    }

    /// Sets the data-plane worker-pool width (min 1). Width 1 runs
    /// piece fetches, append relays and fragment reads serially on the
    /// caller's thread — the same code path, so bytes are identical at
    /// every width; wider pools overlap the per-RPC latency of split
    /// reads (§4.3) and replica fan-out.
    pub fn set_parallelism(&mut self, width: usize) {
        self.parallelism = width.max(1);
    }

    /// The data-plane worker-pool width.
    #[must_use]
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    fn retry_policy(&self) -> RetryPolicy {
        RetryPolicy {
            attempts: self.retry_attempts,
            backoff: self.retry_backoff,
        }
    }

    fn fetch_ctx(&self) -> FetchCtx<'_> {
        FetchCtx {
            dataservers: &self.dataservers,
            policy: self.retry_policy(),
            retries: &self.metrics.retries,
            trace: &self.trace_datapath,
        }
    }

    /// Sets the retry policy for [`FsError::Unavailable`] failures:
    /// `attempts` total tries (min 1) with `backoff` between them,
    /// doubling per retry up to a small cap. Other errors never retry.
    pub fn set_retry_policy(&mut self, attempts: u32, backoff: std::time::Duration) {
        self.retry_attempts = attempts.max(1);
        self.retry_backoff = backoff;
    }

    /// Runs `op`, retrying transient [`FsError::Unavailable`] failures
    /// under the client's retry policy.
    fn with_retry<T>(&self, mut op: impl FnMut() -> Result<T, FsError>) -> Result<T, FsError> {
        let mut delay = self.retry_backoff;
        let mut last = None;
        for attempt in 0..self.retry_attempts {
            if attempt > 0 {
                self.metrics.retries.inc();
            }
            match op() {
                Ok(v) => return Ok(v),
                Err(e @ FsError::Unavailable(_)) => last = Some(e),
                Err(e) => return Err(e),
            }
            if attempt + 1 < self.retry_attempts && !delay.is_zero() {
                std::thread::sleep(delay);
                delay = (delay * 2).min(MAX_RETRY_BACKOFF);
            }
        }
        Err(last.expect("at least one attempt runs"))
    }

    /// Sets the metadata cache expiry (default five minutes). Shorter
    /// TTLs observe replica migrations sooner at the cost of more
    /// nameserver lookups.
    pub fn set_cache_ttl(&mut self, ttl: std::time::Duration) {
        self.cache_ttl = ttl;
    }

    /// Sets the metadata cache capacity (default 1024 entries, min 1).
    /// Shrinking below the current population evicts the entries
    /// closest to expiry immediately.
    pub fn set_cache_capacity(&mut self, capacity: usize) {
        self.cache_capacity = capacity.max(1);
        while self.cache.len() > self.cache_capacity {
            self.evict_oldest();
        }
    }

    /// Evicts the cached entry closest to expiry (the oldest insert).
    fn evict_oldest(&mut self) {
        let Some(victim) = self
            .cache
            .iter()
            .min_by_key(|(_, (_, at))| *at)
            .map(|(name, _)| name.clone())
        else {
            return;
        };
        self.cache.remove(&victim);
        self.metrics.cache_evictions.inc();
    }

    /// Inserts into the metadata cache, evicting the oldest entry when
    /// a new key would exceed capacity.
    fn cache_insert(&mut self, name: &str, meta: FileMeta) {
        if !self.cache.contains_key(name) && self.cache.len() >= self.cache_capacity {
            self.evict_oldest();
        }
        self.cache
            .insert(name.to_string(), (meta, std::time::Instant::now()));
    }

    /// The host the client runs on.
    #[must_use]
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Creates a file and materializes empty replicas on the placed
    /// dataservers.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::AlreadyExists`] for duplicate names.
    pub fn create(&mut self, name: &str) -> Result<FileMeta, FsError> {
        self.create_with(name, Redundancy::default())
    }

    /// Creates a file under an explicit [`Redundancy`] policy. A
    /// `Coded{k, m}` file appends exactly like a replicated one; its
    /// complete chunks are then sealed into `k + m` fragments.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::AlreadyExists`] for duplicate names and
    /// [`FsError::InvalidArgument`] for an unsatisfiable policy.
    pub fn create_with(&mut self, name: &str, redundancy: Redundancy) -> Result<FileMeta, FsError> {
        let mut span = self.trace.span("create");
        trace::annotate(&mut span, "file", name);
        trace::annotate(&mut span, "redundancy", format!("{redundancy:?}"));
        let out = {
            let _g = span.as_ref().map(trace::ActiveSpan::enter);
            self.create_with_inner(name, redundancy)
        };
        if out.is_err() {
            trace::mark_error(&mut span);
        }
        out
    }

    fn create_with_inner(
        &mut self,
        name: &str,
        redundancy: Redundancy,
    ) -> Result<FileMeta, FsError> {
        let meta = match self.nameserver.create_with(name, redundancy) {
            Ok(meta) => meta,
            Err(e @ FsError::AlreadyExists(_)) => {
                // A create conflict proves someone else owns this name
                // now; any cached entry (say, from a copy we created
                // that another client has since deleted and re-created)
                // is stale and must not serve future reads.
                self.invalidate_stale(name);
                return Err(e);
            }
            Err(e) => return Err(e),
        };
        for r in &meta.replicas {
            self.dataserver(*r)?.create_file(&meta)?;
        }
        self.cache_insert(name, meta.clone());
        Ok(meta)
    }

    /// Appends `data` atomically: the primary orders the append and it
    /// is relayed to every replica before returning. Returns the
    /// file's new size.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] for unknown files.
    pub fn append(&mut self, name: &str, data: &[u8]) -> Result<u64, FsError> {
        let mut span = self.trace.span("append");
        trace::annotate(&mut span, "file", name);
        trace::annotate(&mut span, "bytes", data.len().to_string());
        let out = {
            let _g = span.as_ref().map(trace::ActiveSpan::enter);
            match self.append_attempt(name, data) {
                // Replica-side NotFound under a cached entry means the
                // file was deleted (and possibly re-created under a new
                // id) behind our cache: drop the entry and retry fresh
                // once.
                Err(FsError::NotFound(_)) if self.invalidate_stale(name) => {
                    self.append_attempt(name, data)
                }
                other => other,
            }
        };
        match &out {
            Ok(size) => trace::annotate(&mut span, "size", size.to_string()),
            Err(_) => trace::mark_error(&mut span),
        }
        out
    }

    fn append_attempt(&mut self, name: &str, data: &[u8]) -> Result<u64, FsError> {
        let _span = Span::start(self.metrics.append_latency_us.clone());
        self.metrics.append_bytes.add(data.len() as u64);
        let meta = self.meta(name)?;
        let lock = self.coordinator.file_lock(meta.id);
        let _guard = lock.lock();
        // The primary orders the append (§3.3.2): it is written first,
        // alone, and its size is the one recorded. Each replica write
        // retries transient unavailability; if a replica stays down
        // past the retry budget the append fails as a whole and the
        // caller may re-elect the primary
        // ([`crate::Cluster::reelect_primary`]) before retrying.
        let new_size = {
            let mut span = self.trace.child("primary_write");
            trace::annotate(&mut span, "host", meta.primary().0.to_string());
            let out = {
                let _g = span.as_ref().map(trace::ActiveSpan::enter);
                self.with_retry(|| self.dataserver(meta.primary())?.append_local(meta.id, data))
            };
            if out.is_err() {
                trace::mark_error(&mut span);
            }
            out
        }?;
        // The relay to the remaining replicas fans out on the worker
        // pool: the order is already fixed by the primary, so the
        // relays are independent and only the ack-all-before-return
        // barrier matters for durability. Errors propagate lowest
        // replica index first, like the serial relay. Relay spans are
        // created here, in replica order, so span ids do not depend on
        // pool width or completion order.
        let ctx = self.fetch_ctx();
        let relay_spans: Vec<Option<trace::ActiveSpan>> = meta.replicas[1..]
            .iter()
            .map(|host| {
                let mut s = self.trace.child("relay");
                trace::annotate(&mut s, "host", host.0.to_string());
                s
            })
            .collect();
        let relayed = datapath::fan_out(
            self.parallelism,
            meta.replicas[1..]
                .iter()
                .zip(relay_spans)
                .map(|(host, mut span)| {
                    let ctx = &ctx;
                    move || {
                        let out = {
                            let _g = span.as_ref().map(trace::ActiveSpan::enter);
                            datapath::with_retry(ctx.policy, ctx.retries, || {
                                ctx.dataserver(*host)?.append_local(meta.id, data)
                            })
                        };
                        if out.is_err() {
                            trace::mark_error(&mut span);
                        }
                        out
                    }
                })
                .collect(),
            Some(&self.datapath),
        );
        for size in relayed {
            size?;
        }
        self.nameserver.record_size(name, new_size)?;
        if meta.is_coded() && new_size / meta.chunk_size > meta.sealed_chunks {
            // Still under the file lock: stripe newly complete chunks
            // to the fragment hosts. Best-effort — a down fragment
            // host defers the seal to the next append (the chunk stays
            // replicated meanwhile, so durability never regresses).
            let span = self.trace.child("seal");
            let _g = span.as_ref().map(trace::ActiveSpan::enter);
            let _ = coding::seal_complete_chunks(
                self.nameserver.as_ref(),
                &self.dataservers,
                name,
                Some(&self.ec),
            );
        }
        if let Some((cached, _)) = self.cache.get_mut(name) {
            cached.size = new_size;
        }
        Ok(new_size)
    }

    /// Reads the whole file.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] for unknown files.
    pub fn read(&mut self, name: &str) -> Result<Vec<u8>, FsError> {
        let mut span = self.trace.span("read");
        trace::annotate(&mut span, "file", name);
        let out = {
            let _g = span.as_ref().map(trace::ActiveSpan::enter);
            match self.read_attempt(name) {
                // Every replica denying knowledge of a cached file id
                // means the cache is stale (deleted, or
                // deleted-and-recreated under a new id): invalidate and
                // retry once against fresh metadata. A genuinely
                // deleted file still reports NotFound — from the
                // nameserver this time.
                Err(FsError::NotFound(_)) if self.invalidate_stale(name) => self.read_attempt(name),
                other => other,
            }
        };
        match &out {
            Ok(data) => trace::annotate(&mut span, "bytes", data.len().to_string()),
            Err(_) => trace::mark_error(&mut span),
        }
        out
    }

    fn read_attempt(&mut self, name: &str) -> Result<Vec<u8>, FsError> {
        let _span = Span::start(self.metrics.read_latency_us.clone());
        let meta = self.meta(name)?;
        // Size discovery rides on the data reads themselves: every
        // dataserver read returns the replica's current size (the
        // paper's "the dataserver includes the file's size with each
        // read result"), so a read planned over the cached size hint
        // already carries the probe. The hint is always safe to plan
        // with — it can only lag the recorded size, and every replica
        // acked every recorded append — and appended bytes the
        // piggybacked size reveals are fetched in one extension round.
        // Coded files keep the standalone probe: their read path
        // refreshes metadata from the nameserver anyway, and sealed
        // fragments report no file size.
        let hint = if meta.is_coded() { 0 } else { meta.size };
        let mut outcome = if hint > 0 {
            self.read_range_collect(&meta, 0, hint)?
        } else {
            RangeOutcome::default()
        };
        // Under strong consistency the size must come from the primary
        // (it alone linearizes appends): the hinted tail piece is
        // pinned to the primary, so its piggybacked size is normally
        // in hand; otherwise — empty hint, or every serving replica
        // was a non-primary — fall back to the explicit primary-only
        // probe. Sequential consistency accepts any replica's size.
        let size = match self.consistency {
            Consistency::Strong => match outcome.primary_size {
                Some(size) => size,
                None => self.probe_size(&meta)?,
            },
            Consistency::Sequential => match outcome.max_size {
                Some(size) => size.max(hint),
                None => self.probe_size(&meta)?,
            },
        };
        if size > hint {
            // The file grew past the hint: one extension round fetches
            // the discovered tail. Planning uses the discovered size so
            // the strong-mode primary pin covers the true last chunk.
            let mut grown = meta.clone();
            grown.size = size;
            let ext = self.read_range_collect(&grown, hint, size - hint)?;
            outcome.data.extend_from_slice(&ext.data);
        }
        if let Some((cached, _)) = self.cache.get_mut(name) {
            cached.size = size;
        }
        self.metrics.read_bytes.add(outcome.data.len() as u64);
        Ok(outcome.data)
    }

    /// The standalone size probe (a zero-length read): primary-only
    /// under strong consistency, failing over across replicas under
    /// sequential. Used when no data read piggybacked a usable size.
    fn probe_size(&self, meta: &FileMeta) -> Result<u64, FsError> {
        let mut span = self.trace.child("probe_size");
        let out = {
            let _g = span.as_ref().map(trace::ActiveSpan::enter);
            self.probe_size_inner(meta)
        };
        match &out {
            Ok(size) => trace::annotate(&mut span, "size", size.to_string()),
            Err(_) => trace::mark_error(&mut span),
        }
        out
    }

    fn probe_size_inner(&self, meta: &FileMeta) -> Result<u64, FsError> {
        let probe_order: &[HostId] = match self.consistency {
            Consistency::Strong => &meta.replicas[..1],
            Consistency::Sequential => &meta.replicas,
        };
        self.with_retry(|| {
            let mut last = None;
            for host in probe_order {
                match self.dataserver(*host)?.read_local(meta.id, 0, 0) {
                    Ok((_, size)) => return Ok(size),
                    Err(e @ (FsError::Unavailable(_) | FsError::NotFound(_))) => last = Some(e),
                    Err(e) => return Err(e),
                }
            }
            Err(last.unwrap_or_else(|| FsError::NotFound(meta.name.clone())))
        })
    }

    /// Reads `[offset, offset + len)`, truncated at end-of-file.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] for unknown files.
    pub fn read_range(&mut self, name: &str, offset: u64, len: u64) -> Result<Vec<u8>, FsError> {
        let mut span = self.trace.span("read_range");
        trace::annotate(&mut span, "file", name);
        trace::annotate(&mut span, "offset", offset.to_string());
        trace::annotate(&mut span, "len", len.to_string());
        let out = {
            let _g = span.as_ref().map(trace::ActiveSpan::enter);
            let meta = self.meta(name)?;
            self.read_range_inner(&meta, offset, len)
        };
        if out.is_err() {
            trace::mark_error(&mut span);
        }
        out
    }

    fn read_range_inner(
        &mut self,
        meta: &FileMeta,
        offset: u64,
        len: u64,
    ) -> Result<Vec<u8>, FsError> {
        Ok(self.read_range_collect(meta, offset, len)?.data)
    }

    fn read_range_collect(
        &mut self,
        meta: &FileMeta,
        offset: u64,
        len: u64,
    ) -> Result<RangeOutcome, FsError> {
        if len == 0 {
            return Ok(RangeOutcome::default());
        }

        // The seal watermark moves outside the append-only invariant
        // that makes cached chunk maps safe (a sealed chunk *leaves*
        // the replicas), so coded reads work from fresh metadata.
        let fresh;
        let meta = if meta.is_coded() {
            fresh = self.nameserver.lookup(&meta.name)?;
            self.cache_insert(&meta.name, fresh.clone());
            &fresh
        } else {
            meta
        };

        let mut out = Vec::with_capacity(len as usize);
        let mut offset = offset;
        let mut len = len;
        let sealed_end = meta.sealed_bytes();
        if meta.is_coded() && offset < sealed_end {
            let span_end = (offset + len).min(sealed_end);
            let (k, _) = meta.redundancy.coded_params().expect("coded file");
            let mut pos = offset;
            while pos < span_end {
                let chunk = pos / meta.chunk_size;
                let chunk_start = chunk * meta.chunk_size;
                let take_end = span_end.min(chunk_start + meta.chunk_size);
                // Live candidates in fragment order; the selector picks
                // which k to fetch, the rest stay as failover.
                let available: Vec<(usize, HostId)> = meta
                    .fragments
                    .iter()
                    .enumerate()
                    .filter(|(i, h)| {
                        self.dataservers
                            .get(h)
                            .is_some_and(|d| d.has_fragment(meta.id, chunk, *i))
                    })
                    .map(|(i, h)| (i, *h))
                    .collect();
                let preferred = self.selector.select_fragments(self.host, &available, k);
                let payload = self.with_retry(|| {
                    coding::read_sealed_chunk(
                        &self.dataservers,
                        meta,
                        chunk,
                        &preferred,
                        self.parallelism,
                        Some(&self.ec),
                        Some(&self.datapath),
                    )
                })?;
                out.extend_from_slice(
                    &payload[(pos - chunk_start) as usize..(take_end - chunk_start) as usize],
                );
                pos = take_end;
            }
            len -= span_end - offset;
            offset = span_end;
            if len == 0 {
                return Ok(RangeOutcome {
                    data: out,
                    primary_size: None,
                    max_size: None,
                });
            }
        }

        // Under strong consistency, bytes in the last chunk must come
        // from the primary — with no failover to a secondary, whose
        // tail could be stale; everything else is immutable and free
        // to route (§3.4). `(host, offset, len, primary_only)`.
        let mut pieces: Vec<(HostId, u64, u64, bool)> = Vec::new();
        let mut selectable_end = offset + len;
        if self.consistency == Consistency::Strong {
            if let Some(last_chunk) = meta.last_chunk() {
                let last_start = last_chunk * meta.chunk_size;
                if offset + len > last_start {
                    let tail_start = offset.max(last_start);
                    pieces.push((meta.primary(), tail_start, offset + len - tail_start, true));
                    selectable_end = tail_start;
                }
            }
        }

        if selectable_end > offset {
            let span = selectable_end - offset;
            let assignments = self.selector.select_read(self.host, &meta.replicas, span);
            let total: u64 = assignments.iter().map(|a| a.bytes).sum();
            if total != span {
                return Err(FsError::InvalidArgument(format!(
                    "selector assigned {total} bytes for a {span}-byte read"
                )));
            }
            let mut pos = offset;
            // Consecutive ranges, one per assignment, front-inserted so
            // ordering stays by offset.
            let mut selected = Vec::new();
            for ReadAssignment { replica, bytes } in assignments {
                if bytes == 0 {
                    continue;
                }
                selected.push((replica, pos, bytes, false));
                pos += bytes;
            }
            selected.extend(pieces);
            pieces = selected;
        }

        let outcome = self.fetch_pieces(meta, &pieces)?;
        if out.is_empty() {
            return Ok(outcome);
        }
        out.extend_from_slice(&outcome.data);
        Ok(RangeOutcome {
            data: out,
            primary_size: outcome.primary_size,
            max_size: outcome.max_size,
        })
    }

    /// Fetches the planned pieces — concurrently when the pool is
    /// wider than one — assembling them by offset into one
    /// preallocated buffer. Each piece keeps the serial path's
    /// failover sweep (chosen replica, then the others, primary last;
    /// primary only for a strong-consistency tail). Errors propagate
    /// lowest piece index first, so width never changes the outcome.
    fn fetch_pieces(
        &self,
        meta: &FileMeta,
        pieces: &[(HostId, u64, u64, bool)],
    ) -> Result<RangeOutcome, FsError> {
        let total: u64 = pieces.iter().map(|p| p.2).sum();
        let mut buf = vec![0u8; total as usize];
        let ctx = self.fetch_ctx();

        // Disjoint per-piece slices of the output buffer, in order.
        let mut slices: Vec<&mut [u8]> = Vec::with_capacity(pieces.len());
        let mut rest: &mut [u8] = &mut buf;
        for &(_, _, piece_len, _) in pieces {
            let (head, tail) = std::mem::take(&mut rest).split_at_mut(piece_len as usize);
            slices.push(head);
            rest = tail;
        }

        // Piece spans are created here on the caller's thread, in
        // planning order: span ids stay deterministic across pool
        // widths, and each worker enters its span so per-host attempts
        // parent under the right piece.
        let piece_spans: Vec<Option<trace::ActiveSpan>> = pieces
            .iter()
            .enumerate()
            .map(|(i, &(chosen, piece_offset, piece_len, primary_only))| {
                let mut s = self.trace_datapath.child("piece");
                trace::annotate(&mut s, "index", i.to_string());
                trace::annotate(&mut s, "offset", piece_offset.to_string());
                trace::annotate(&mut s, "bytes", piece_len.to_string());
                trace::annotate(&mut s, "chosen", chosen.0.to_string());
                if primary_only {
                    trace::annotate(&mut s, "primary_only", "true");
                }
                s
            })
            .collect();

        let results = datapath::fan_out(
            self.parallelism,
            pieces
                .iter()
                .zip(slices)
                .zip(piece_spans)
                .map(
                    |((&(chosen, piece_offset, _, primary_only), slice), mut span)| {
                        // Failover order: chosen replica, the rest, primary
                        // last (it is never stale).
                        let mut order = vec![chosen];
                        if !primary_only {
                            for r in &meta.replicas {
                                if *r != chosen && *r != meta.primary() {
                                    order.push(*r);
                                }
                            }
                            if meta.primary() != chosen {
                                order.push(meta.primary());
                            }
                        }
                        let ctx = &ctx;
                        move || {
                            let out = {
                                let _g = span.as_ref().map(trace::ActiveSpan::enter);
                                ctx.read_piece_into(meta, &order, piece_offset, slice)
                            };
                            match &out {
                                Ok(done) => {
                                    trace::annotate(&mut span, "filled", done.filled.to_string());
                                }
                                Err(_) => trace::mark_error(&mut span),
                            }
                            out
                        }
                    },
                )
                .collect(),
            Some(&self.datapath),
        );

        // Assemble: pieces are consecutive, so a short piece (possible
        // only at end-of-file — every replica holds every recorded
        // byte, and short reads below the recorded size are topped up
        // from the primary) truncates the result there.
        let mut kept = 0usize;
        let mut primary_size = None;
        let mut max_size = None;
        for (piece, result) in pieces.iter().zip(results) {
            let done = result?;
            if done.size_from == meta.primary() {
                primary_size = Some(done.reported_size.max(primary_size.unwrap_or(0)));
            }
            max_size = Some(done.reported_size.max(max_size.unwrap_or(0)));
            kept += done.filled;
            if (done.filled as u64) < piece.2 {
                break;
            }
        }
        buf.truncate(kept);
        Ok(RangeOutcome {
            data: buf,
            primary_size,
            max_size,
        })
    }

    /// Moves `old` to `new`, overwriting and garbage-collecting any
    /// existing `new` — the paper's application-layer random-write
    /// emulation primitive (§3.3: "creating and modifying a new copy
    /// of the file and using a move operation to overwrite the
    /// original").
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if `old` is missing.
    pub fn rename(&mut self, old: &str, new: &str) -> Result<(), FsError> {
        let displaced = self.nameserver.rename(old, new, true)?;
        if let Some(dead) = displaced {
            for r in dead.replicas.iter().chain(&dead.fragments) {
                match self.dataserver(*r)?.delete_file(dead.id) {
                    Ok(()) | Err(FsError::NotFound(_)) => {}
                    Err(e) => return Err(e),
                }
            }
        }
        // Refresh replica- and fragment-local metadata so a crash
        // rebuild sees the new name.
        let meta = self.nameserver.lookup(new)?;
        for r in meta.replicas.iter().chain(&meta.fragments) {
            match self.dataserver(*r)?.update_meta(&meta) {
                Ok(()) | Err(FsError::NotFound(_)) => {}
                Err(e) => return Err(e),
            }
        }
        self.cache.remove(old);
        self.cache.remove(new);
        Ok(())
    }

    /// Deletes a file everywhere: nameserver mappings and all replica
    /// data.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] for unknown files.
    pub fn delete(&mut self, name: &str) -> Result<(), FsError> {
        let meta = self.nameserver.delete(name)?;
        for r in meta.replicas.iter().chain(&meta.fragments) {
            // A replica (or fragment host) may already be gone;
            // deletion is idempotent at the filesystem level.
            match self.dataserver(*r)?.delete_file(meta.id) {
                Ok(()) | Err(FsError::NotFound(_)) => {}
                Err(e) => return Err(e),
            }
        }
        self.cache.remove(name);
        Ok(())
    }

    /// The file's metadata, from cache when possible.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] for unknown files.
    pub fn meta(&mut self, name: &str) -> Result<FileMeta, FsError> {
        if let Some((meta, cached_at)) = self.cache.get(name) {
            if cached_at.elapsed() < self.cache_ttl {
                self.metrics.cache_hits.inc();
                return Ok(meta.clone());
            }
        }
        // Absent or expired either way costs a nameserver lookup.
        self.metrics.cache_misses.inc();
        let meta = self.nameserver.lookup(name)?;
        self.cache_insert(name, meta.clone());
        Ok(meta)
    }

    /// Drops all cached metadata (e.g. after replica migration).
    pub fn invalidate_cache(&mut self) {
        self.cache.clear();
    }

    /// Drops one cached entry that turned out to be stale. Returns
    /// whether an entry was actually present (callers use this to
    /// decide whether a retry against fresh metadata can help).
    fn invalidate_stale(&mut self, name: &str) -> bool {
        if self.cache.remove(name).is_some() {
            self.metrics.cache_stale_invalidations.inc();
            true
        } else {
            false
        }
    }

    /// Number of cached metadata entries.
    #[must_use]
    pub fn cached_entries(&self) -> usize {
        self.cache.len()
    }

    fn dataserver(&self, host: HostId) -> Result<&Arc<Dataserver>, FsError> {
        self.dataservers
            .get(&host)
            .ok_or_else(|| FsError::InvalidArgument(format!("no dataserver on host {host}")))
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("host", &self.host)
            .field("consistency", &self.consistency)
            .field("cached_entries", &self.cache.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterConfig};
    use crate::nameserver::NameserverConfig;
    use crate::selector::PrimarySelector;
    use mayflower_net::{Topology, TreeParams};
    use std::path::PathBuf;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir = std::env::temp_dir().join(format!(
                "mayflower-client-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            std::fs::remove_dir_all(&dir).ok();
            TempDir(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    fn cluster(dir: &TempDir, consistency: Consistency) -> Cluster {
        let topo = Arc::new(Topology::three_tier(&TreeParams {
            pods: 2,
            racks_per_pod: 2,
            hosts_per_rack: 2,
            ..TreeParams::paper_testbed()
        }));
        Cluster::create(
            &dir.0,
            topo,
            ClusterConfig {
                nameserver: NameserverConfig {
                    chunk_size: 8,
                    ..NameserverConfig::default()
                },
                consistency,
            },
        )
        .unwrap()
    }

    #[test]
    fn create_append_read_delete_lifecycle() {
        let dir = TempDir::new("lifecycle");
        let c = cluster(&dir, Consistency::Sequential);
        let mut client = c.client(HostId(0));
        client.create("data/file1").unwrap();
        client.append("data/file1", b"0123456789").unwrap(); // 2 chunks
        client.append("data/file1", b"ABCDEF").unwrap(); // into 2nd & 3rd
        assert_eq!(client.read("data/file1").unwrap(), b"0123456789ABCDEF");
        assert_eq!(client.read_range("data/file1", 6, 6).unwrap(), b"6789AB");
        client.delete("data/file1").unwrap();
        assert!(matches!(
            client.read("data/file1"),
            Err(FsError::NotFound(_))
        ));
    }

    #[test]
    fn appends_by_one_client_visible_to_another() {
        let dir = TempDir::new("visibility");
        let c = cluster(&dir, Consistency::Sequential);
        let mut writer = c.client(HostId(0));
        let mut reader = c.client(HostId(5));
        writer.create("shared").unwrap();
        // Reader caches the empty file's metadata.
        assert_eq!(reader.read("shared").unwrap(), b"");
        writer.append("shared", b"new data").unwrap();
        // Stale cache, but size discovery via the dataserver probe
        // reveals the append (§3.3 caching semantics).
        assert_eq!(reader.read("shared").unwrap(), b"new data");
    }

    #[test]
    fn strong_consistency_reads_through_primary_for_last_chunk() {
        let dir = TempDir::new("strong");
        let c = cluster(&dir, Consistency::Strong);
        let mut client = c.client(HostId(1));
        let meta = client.create("s").unwrap();
        client.append("s", b"0123456789abcdef__tail").unwrap();
        // Simulate a lagging secondary: truncate the last chunk on a
        // non-primary replica by deleting and recreating shorter data.
        // Strong reads must still return the primary's bytes.
        let data = client.read("s").unwrap();
        assert_eq!(data, b"0123456789abcdef__tail");
        let _ = meta;
    }

    #[test]
    fn selector_is_honored() {
        let dir = TempDir::new("selector");
        let c = cluster(&dir, Consistency::Sequential);
        let mut client = c.client_with_selector(HostId(0), Box::new(PrimarySelector));
        client.create("p").unwrap();
        client.append("p", b"abc").unwrap();
        assert_eq!(client.read("p").unwrap(), b"abc");
    }

    #[test]
    fn metadata_cache_reduces_lookups() {
        let dir = TempDir::new("cache");
        let c = cluster(&dir, Consistency::Sequential);
        let mut client = c.client(HostId(0));
        client.create("cached").unwrap();
        assert_eq!(client.cached_entries(), 1);
        client.invalidate_cache();
        assert_eq!(client.cached_entries(), 0);
        client.meta("cached").unwrap();
        assert_eq!(client.cached_entries(), 1);
    }

    #[test]
    fn cache_capacity_bounds_population_and_evicts_oldest() {
        let dir = TempDir::new("cachecap");
        let c = cluster(&dir, Consistency::Sequential);
        let mut client = c.client(HostId(0));
        client.set_cache_capacity(3);
        for i in 0..5 {
            client.create(&format!("f{i}")).unwrap();
        }
        assert_eq!(client.cached_entries(), 3, "population stays bounded");
        // The oldest inserts (f0, f1) were evicted; the newest remain.
        let snap = c.registry().snapshot();
        assert_eq!(snap.counter("fs_client_cache_evictions_total"), Some(2));
        // Re-reading an evicted file's meta is a miss...
        client.meta("f0").unwrap();
        // ...and a cached one is a hit.
        client.meta("f4").unwrap();
        let snap = c.registry().snapshot();
        assert!(snap.counter("fs_client_cache_misses_total").unwrap() >= 1);
        assert!(snap.counter("fs_client_cache_hits_total").unwrap() >= 1);
    }

    #[test]
    fn shrinking_cache_capacity_evicts_immediately() {
        let dir = TempDir::new("cacheshrink");
        let c = cluster(&dir, Consistency::Sequential);
        let mut client = c.client(HostId(0));
        for i in 0..6 {
            client.create(&format!("g{i}")).unwrap();
        }
        assert_eq!(client.cached_entries(), 6);
        client.set_cache_capacity(2);
        assert_eq!(client.cached_entries(), 2);
    }

    #[test]
    fn client_and_dataserver_metrics_cover_the_io_path() {
        let dir = TempDir::new("metrics");
        let c = cluster(&dir, Consistency::Sequential);
        let mut client = c.client(HostId(0));
        client.create("observed").unwrap();
        client.append("observed", b"0123456789").unwrap();
        assert_eq!(client.read("observed").unwrap().len(), 10);
        let snap = c.registry().snapshot();
        assert_eq!(snap.counter("fs_client_append_bytes_total"), Some(10));
        assert_eq!(snap.counter("fs_client_read_bytes_total"), Some(10));
        assert_eq!(
            snap.histogram("fs_client_append_latency_us").unwrap().count,
            1
        );
        assert_eq!(
            snap.histogram("fs_client_read_latency_us").unwrap().count,
            1
        );
        // The append was relayed to all 3 replicas.
        assert_eq!(snap.counter("fs_dataserver_appends_total"), Some(3));
        assert_eq!(
            snap.histogram("fs_dataserver_append_bytes").unwrap().sum,
            30
        );
        // One dataserver read serves the whole request: size discovery
        // rides on the piece response instead of a standalone probe.
        assert_eq!(snap.counter("fs_dataserver_reads_total"), Some(1));
        // The pipeline observed the dispatch and drained its in-flight
        // gauge.
        assert!(snap.histogram("fs_datapath_fan_out_width").unwrap().count >= 1);
        assert_eq!(snap.gauge("fs_datapath_inflight_fetches"), Some(0));
    }

    #[test]
    fn retry_metric_counts_extra_attempts() {
        let dir = TempDir::new("retrymetric");
        let c = cluster(&dir, Consistency::Sequential);
        let mut writer = c.client(HostId(0));
        let meta = writer.create("bouncy").unwrap();
        writer.append("bouncy", b"x").unwrap();
        for r in &meta.replicas {
            c.dataserver(*r).crash();
        }
        let mut reader = c.client(HostId(5));
        reader.set_retry_policy(3, std::time::Duration::ZERO);
        assert!(reader.read("bouncy").is_err());
        let snap = c.registry().snapshot();
        assert_eq!(snap.counter("fs_client_retries_total"), Some(2));
        assert!(snap.counter("fs_dataserver_refused_total").unwrap() > 0);
    }

    #[test]
    fn read_range_past_eof_truncates() {
        let dir = TempDir::new("eof");
        let c = cluster(&dir, Consistency::Sequential);
        let mut client = c.client(HostId(0));
        client.create("short").unwrap();
        client.append("short", b"xy").unwrap();
        assert_eq!(client.read_range("short", 0, 100).unwrap(), b"xy");
        assert_eq!(client.read_range("short", 50, 10).unwrap(), b"");
    }

    #[test]
    fn cache_ttl_observes_replica_migration() {
        use mayflower_simcore::SimRng;
        let dir = TempDir::new("ttl");
        let c = cluster(&dir, Consistency::Sequential);
        let mut client = c.client(HostId(0));
        client.set_cache_ttl(std::time::Duration::ZERO); // revalidate always
        let meta = client.create("migrating").unwrap();
        client.append("migrating", b"payload").unwrap();

        // Lose a replica and repair: the replica set changes.
        let victim = meta.replicas[1];
        c.dataserver(victim).delete_file(meta.id).unwrap();
        let mut rng = SimRng::seed_from(9);
        c.repair("migrating", &mut rng).unwrap();

        // With a zero TTL the client sees the new replica set at once.
        let fresh = client.meta("migrating").unwrap();
        assert!(!fresh.replicas.contains(&victim));
        assert_eq!(client.read("migrating").unwrap(), b"payload");
    }

    #[test]
    fn long_ttl_serves_from_cache() {
        let dir = TempDir::new("ttl-long");
        let c = cluster(&dir, Consistency::Sequential);
        let mut client = c.client(HostId(0));
        client.set_cache_ttl(std::time::Duration::from_secs(3600));
        let meta = client.create("steady").unwrap();
        // Delete the mapping behind the client's back: a cached meta()
        // still answers (the stale-read window the TTL bounds).
        c.nameserver().delete("steady").unwrap();
        assert_eq!(client.meta("steady").unwrap().id, meta.id);
    }

    #[test]
    fn stale_cache_invalidated_when_file_deleted_and_recreated_elsewhere() {
        // Regression: A caches metadata for a file; B deletes the file
        // and re-creates it under the same name (new id, possibly new
        // replicas). A's cached entry names a dead file id — reads
        // through it must not fail or serve stale data forever.
        let dir = TempDir::new("stalecache");
        let c = cluster(&dir, Consistency::Sequential);
        let mut a = c.client(HostId(0));
        let mut b = c.client(HostId(5));
        a.set_cache_ttl(std::time::Duration::from_secs(3600));
        a.create("volatile").unwrap();
        a.append("volatile", b"first incarnation").unwrap();
        assert_eq!(a.read("volatile").unwrap(), b"first incarnation");

        b.delete("volatile").unwrap();
        b.create("volatile").unwrap();
        b.append("volatile", b"second").unwrap();

        // The stale entry is detected, invalidated, and the retry
        // returns the new incarnation's content.
        assert_eq!(a.read("volatile").unwrap(), b"second");
        let snap = c.registry().snapshot();
        assert!(
            snap.counter("fs_client_cache_stale_invalidations_total")
                .unwrap()
                >= 1
        );

        // Appends through a stale entry recover the same way.
        b.delete("volatile").unwrap();
        b.create("volatile").unwrap();
        a.append("volatile", b"!").unwrap();
        assert_eq!(b.read("volatile").unwrap(), b"!");

        // A create conflict also proves the cached entry stale.
        a.read("volatile").unwrap(); // repopulate A's cache
        b.delete("volatile").unwrap();
        b.create("volatile").unwrap();
        assert!(matches!(
            a.create("volatile"),
            Err(FsError::AlreadyExists(_))
        ));
        // The conflict dropped A's entry: the next meta() is a fresh
        // lookup that sees B's incarnation.
        let fresh = a.meta("volatile").unwrap();
        assert_eq!(fresh.id, c.nameserver().lookup("volatile").unwrap().id);

        // A genuinely deleted file still reports NotFound.
        b.delete("volatile").unwrap();
        assert!(matches!(a.read("volatile"), Err(FsError::NotFound(_))));
    }

    #[test]
    fn rename_moves_the_namespace_entry() {
        let dir = TempDir::new("rename");
        let c = cluster(&dir, Consistency::Sequential);
        let mut client = c.client(HostId(0));
        client.create("old-name").unwrap();
        client.append("old-name", b"content").unwrap();
        client.rename("old-name", "new-name").unwrap();
        assert!(matches!(client.read("old-name"), Err(FsError::NotFound(_))));
        assert_eq!(client.read("new-name").unwrap(), b"content");
        // Dataserver-local metadata followed the rename (crash-rebuild
        // consistency).
        let meta = client.meta("new-name").unwrap();
        for r in &meta.replicas {
            assert_eq!(
                c.dataserver(*r).read_meta(meta.id).unwrap().name,
                "new-name"
            );
        }
    }

    #[test]
    fn random_write_emulation_via_copy_and_move() {
        // §3.3: "Random writes can be emulated in the application layer
        // by creating and modifying a new copy of the file and using a
        // move operation to overwrite the original file."
        let dir = TempDir::new("randomwrite");
        let c = cluster(&dir, Consistency::Sequential);
        let mut client = c.client(HostId(0));
        client.create("doc").unwrap();
        client.append("doc", b"version ONE of the doc").unwrap();

        // "Random write": change ONE→TWO by rebuilding the file.
        let old = client.read("doc").unwrap();
        let patched = String::from_utf8(old).unwrap().replace("ONE", "TWO");
        let old_meta = client.meta("doc").unwrap();
        client.create("doc.tmp").unwrap();
        client.append("doc.tmp", patched.as_bytes()).unwrap();
        client.rename("doc.tmp", "doc").unwrap();

        assert_eq!(client.read("doc").unwrap(), b"version TWO of the doc");
        // The displaced file's replica data was garbage-collected.
        for r in &old_meta.replicas {
            assert!(!c.dataserver(*r).has_file(old_meta.id));
        }
    }

    #[test]
    fn rename_without_overwrite_conflict_detected() {
        let dir = TempDir::new("renameconflict");
        let c = cluster(&dir, Consistency::Sequential);
        let mut client = c.client(HostId(0));
        client.create("a").unwrap();
        client.create("b").unwrap();
        // The nameserver-level rename refuses without overwrite.
        assert!(matches!(
            c.nameserver().rename("a", "b", false),
            Err(FsError::AlreadyExists(_))
        ));
        // And the client-level move overwrites deliberately.
        client.rename("a", "b").unwrap();
        assert!(client.meta("a").is_err());
        assert!(client.meta("b").is_ok());
    }

    #[test]
    fn read_fails_over_when_a_replica_is_lost() {
        let dir = TempDir::new("failover");
        let c = cluster(&dir, Consistency::Sequential);
        let mut writer = c.client(HostId(0));
        let meta = writer.create("fragile").unwrap();
        writer.append("fragile", b"survives replica loss").unwrap();

        // Lose a non-primary replica entirely (disk wiped).
        let victim = meta.replicas[1];
        c.dataserver(victim).delete_file(meta.id).unwrap();

        // A reader whose selector would pick any replica still gets
        // the data (failover to surviving replicas).
        for host in [0u32, 3, 6] {
            let mut reader =
                c.client_with_selector(HostId(host), Box::new(crate::selector::PrimarySelector));
            assert_eq!(reader.read("fragile").unwrap(), b"survives replica loss");
        }
        // Even if the selector names the dead replica explicitly.
        struct Fixed(HostId);
        impl crate::selector::ReplicaSelector for Fixed {
            fn select_read(
                &mut self,
                _c: HostId,
                _r: &[HostId],
                bytes: u64,
            ) -> Vec<crate::selector::ReadAssignment> {
                vec![crate::selector::ReadAssignment {
                    replica: self.0,
                    bytes,
                }]
            }
        }
        let mut reader = c.client_with_selector(HostId(9), Box::new(Fixed(victim)));
        assert_eq!(reader.read("fragile").unwrap(), b"survives replica loss");
    }

    #[test]
    fn read_survives_primary_crash_without_reelection() {
        // Sequential consistency: the size probe and the data path both
        // fail over past a crashed primary, no control-plane action
        // needed.
        let dir = TempDir::new("primarycrash");
        let c = cluster(&dir, Consistency::Sequential);
        let mut writer = c.client(HostId(0));
        let meta = writer.create("hardy").unwrap();
        writer.append("hardy", b"still readable").unwrap();

        c.dataserver(meta.primary()).crash();
        let mut reader = c.client(HostId(5));
        reader.set_retry_policy(1, std::time::Duration::ZERO);
        assert_eq!(reader.read("hardy").unwrap(), b"still readable");

        // Strong consistency pins the probe to the primary: the read
        // reports Unavailable rather than risking a stale tail.
        c.dataserver(meta.primary()).restart();
        let d2 = TempDir::new("primarycrash-strong");
        let cs = cluster(&d2, Consistency::Strong);
        let mut w = cs.client(HostId(0));
        let m = w.create("strict").unwrap();
        w.append("strict", b"tail").unwrap();
        cs.dataserver(m.primary()).crash();
        let mut r = cs.client(HostId(5));
        r.set_retry_policy(1, std::time::Duration::ZERO);
        assert!(matches!(r.read("strict"), Err(FsError::Unavailable(_))));
    }

    #[test]
    fn retry_outlasts_a_short_outage() {
        let dir = TempDir::new("retrywindow");
        let c = Arc::new(cluster(&dir, Consistency::Sequential));
        let mut writer = c.client(HostId(0));
        let meta = writer.create("blinky").unwrap();
        writer.append("blinky", b"blip").unwrap();

        // All replicas down: first attempt must fail...
        for r in &meta.replicas {
            c.dataserver(*r).crash();
        }
        let mut impatient = c.client(HostId(5));
        impatient.set_retry_policy(1, std::time::Duration::ZERO);
        assert!(matches!(
            impatient.read("blinky"),
            Err(FsError::Unavailable(_))
        ));

        // ...but a retrying client rides out an outage shorter than
        // its backoff budget.
        let healer = {
            let c = c.clone();
            let replicas = meta.replicas.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                for r in &replicas {
                    c.dataserver(*r).restart();
                }
            })
        };
        let mut patient = c.client(HostId(5));
        patient.set_retry_policy(50, std::time::Duration::from_millis(2));
        assert_eq!(patient.read("blinky").unwrap(), b"blip");
        healer.join().unwrap();
    }

    #[test]
    fn read_fails_cleanly_when_all_replicas_lost() {
        let dir = TempDir::new("allgone");
        let c = cluster(&dir, Consistency::Sequential);
        let mut writer = c.client(HostId(0));
        let meta = writer.create("doomed").unwrap();
        writer.append("doomed", b"x").unwrap();
        for r in &meta.replicas {
            c.dataserver(*r).delete_file(meta.id).unwrap();
        }
        let mut reader = c.client(HostId(5));
        assert!(matches!(reader.read("doomed"), Err(FsError::NotFound(_))));
    }

    #[test]
    fn trace_records_failover_attempts_as_siblings() {
        // Regression (DESIGN.md §17): a replica killed before the fetch
        // reaches it must leave BOTH the failed and the successful
        // attempt in the trace, as siblings under one piece span.
        let dir = TempDir::new("tracefailover");
        let c = cluster(&dir, Consistency::Sequential);
        let mut writer = c.client(HostId(0));
        let meta = writer.create("traced").unwrap();
        writer.append("traced", b"observable bytes").unwrap();

        let victim = meta.replicas[1];
        c.dataserver(victim).crash();

        struct Fixed(HostId);
        impl crate::selector::ReplicaSelector for Fixed {
            fn select_read(
                &mut self,
                _c: HostId,
                _r: &[HostId],
                bytes: u64,
            ) -> Vec<crate::selector::ReadAssignment> {
                vec![crate::selector::ReadAssignment {
                    replica: self.0,
                    bytes,
                }]
            }
        }

        let tracer = c.tracer().clone();
        tracer.set_enabled(true);
        tracer.begin_capture();
        let mut reader = c.client_with_selector(HostId(9), Box::new(Fixed(victim)));
        reader.set_retry_policy(1, std::time::Duration::ZERO);
        assert_eq!(reader.read("traced").unwrap(), b"observable bytes");
        tracer.set_enabled(false);

        let tree = trace::TraceTree::build(tracer.take_capture());
        tree.validate().expect("well-formed failover trace");
        let attempts: Vec<&trace::SpanEvent> = tree
            .events()
            .iter()
            .filter(|e| e.name == "attempt")
            .collect();
        let failed = attempts
            .iter()
            .find(|e| !e.ok)
            .expect("failed attempt recorded");
        assert_eq!(
            failed.annotation("host"),
            Some(victim.0.to_string().as_str())
        );
        assert!(failed.annotation("error").is_some());
        let ok = attempts.iter().find(|e| e.ok).expect("successful attempt");
        assert_eq!(
            failed.parent, ok.parent,
            "failed and successful attempts are siblings under one piece span"
        );
        // The root names the op; the critical path reaches the attempt.
        let root = &tree.events()[tree.roots()[0]];
        assert_eq!((root.component, root.name.as_str()), ("client", "read"));
        let path = tree.render_critical_path(root.trace);
        assert!(path.contains("datapath/attempt"), "{path}");
    }

    #[test]
    fn trace_covers_append_fanout_and_dataserver_io() {
        let dir = TempDir::new("traceappend");
        let c = cluster(&dir, Consistency::Sequential);
        let tracer = c.tracer().clone();
        let mut client = c.client(HostId(0));
        client.create("fanout").unwrap();
        tracer.set_enabled(true);
        tracer.begin_capture();
        client.append("fanout", b"0123456789").unwrap();
        tracer.set_enabled(false);
        let tree = trace::TraceTree::build(tracer.take_capture());
        tree.validate().expect("well-formed append trace");
        let names: Vec<(&str, &str)> = tree
            .events()
            .iter()
            .map(|e| (e.component, e.name.as_str()))
            .collect();
        assert!(names.contains(&("client", "append")));
        assert!(names.contains(&("client", "primary_write")));
        assert_eq!(
            names.iter().filter(|n| **n == ("client", "relay")).count(),
            2,
            "one relay span per secondary replica"
        );
        assert_eq!(
            names
                .iter()
                .filter(|n| **n == ("dataserver", "chunk_append"))
                .count(),
            3,
            "every replica write traced"
        );
        // The flight recorder retained the same spans for post-hoc dumps.
        assert!(!tracer.dump_flight_recorders().is_empty());
    }

    #[test]
    fn interleaved_append_and_read_chunks() {
        // Sequential consistency: reads may interleave with appends but
        // chunk content is never torn.
        let dir = TempDir::new("interleave");
        let c = Arc::new(cluster(&dir, Consistency::Sequential));
        let mut setup = c.client(HostId(0));
        setup.create("log").unwrap();
        let writer = {
            let c = c.clone();
            std::thread::spawn(move || {
                let mut w = c.client(HostId(0));
                for i in 0..40u8 {
                    w.append("log", &[i; 4]).unwrap();
                }
            })
        };
        let mut r = c.client(HostId(7));
        for _ in 0..40 {
            let data = r.read("log").unwrap();
            assert_eq!(data.len() % 4, 0, "torn append visible");
            for rec in data.chunks(4) {
                assert!(rec.iter().all(|b| *b == rec[0]));
            }
        }
        writer.join().unwrap();
        assert_eq!(r.read("log").unwrap().len(), 160);
    }
}
