#![warn(missing_docs)]

//! The Mayflower distributed filesystem (§3 and §5 of the paper).
//!
//! Mayflower stores a modest number of large files, replicated at the
//! **file** level across dataservers placed in distinct fault domains.
//! Files are partitioned into large numbered chunks; mutation is
//! **append-only** (random writes are emulated at the application
//! layer with copy-and-move), which is what makes client-side metadata
//! caching and cheap strong-consistency reads possible.
//!
//! Components, mirroring Figure 1 of the paper:
//!
//! * [`Nameserver`] — file → chunks and file → dataservers mappings in
//!   a persistent KV store ([`mayflower_kvstore`], the LevelDB
//!   substitute), replica placement at creation time, rebuild from
//!   dataserver metadata after an unclean restart.
//! * [`Dataserver`] — stores each file as a directory named by its
//!   UUID containing numbered chunk files plus a metadata file;
//!   services one append at a time per file; serves concurrent reads.
//! * [`Cluster`] — an in-process deployment: one dataserver per
//!   topology host plus the nameserver, with primary-relayed appends.
//! * [`Client`] — HDFS-like API (`create` / `append` / `read` /
//!   `delete`) with metadata caching and a pluggable
//!   [`ReplicaSelector`] so reads can be steered by the Flowserver,
//!   by rack-awareness, or round-robin.
//! * [`remote`] — the nameserver exposed over the RPC layer (the
//!   paper's Thrift interface), for multi-process deployments.
//!
//! Consistency (§3.4): [`Consistency::Sequential`] (default) lets any
//! replica serve any chunk because the primary orders all appends;
//! [`Consistency::Strong`] additionally routes **last-chunk** reads to
//! the primary — every other chunk is immutable, so strong consistency
//! costs one replica restriction on one chunk only.
//!
//! # Example
//!
//! ```
//! use mayflower_fs::{Cluster, ClusterConfig};
//! use mayflower_net::{HostId, Topology, TreeParams};
//!
//! # fn main() -> Result<(), mayflower_fs::FsError> {
//! let topo = Topology::three_tier(&TreeParams::paper_testbed());
//! let dir = std::env::temp_dir().join(format!("mayfs-doc-{}", std::process::id()));
//! let cluster = Cluster::create(&dir, topo.into(), ClusterConfig::default())?;
//! let mut client = cluster.client(HostId(0));
//! client.create("logs/part-0000")?;
//! client.append("logs/part-0000", b"hello ")?;
//! client.append("logs/part-0000", b"world")?;
//! assert_eq!(client.read("logs/part-0000")?, b"hello world");
//! # drop(client); drop(cluster); std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

pub mod chunk;
pub mod client;
pub mod cluster;
mod coding;
mod datapath;
pub mod dataserver;
pub mod error;
pub mod nameserver;
pub mod remote;
pub mod replicated;
pub mod selector;
pub mod service;
pub mod types;

pub use client::Client;
pub use cluster::{Cluster, ClusterConfig};
pub use dataserver::{Dataserver, RepairSource};
pub use error::FsError;
pub use nameserver::{Nameserver, NameserverConfig};
pub use selector::{
    FallbackSelector, NearestSelector, PrimarySelector, ReadAssignment, ReplicaSelector,
    SplitSelector,
};
pub use service::MetadataService;
pub use types::{Consistency, FileId, FileMeta, Redundancy};
