//! Filesystem error type.

use std::fmt;

/// Errors returned by Mayflower filesystem operations.
#[derive(Debug)]
pub enum FsError {
    /// Underlying local-filesystem I/O failure.
    Io(std::io::Error),
    /// Metadata store failure.
    Kv(mayflower_kvstore::KvError),
    /// RPC failure when talking to a remote component.
    Rpc(mayflower_rpc::RpcError),
    /// The named file does not exist.
    NotFound(String),
    /// A file with that name already exists.
    AlreadyExists(String),
    /// A malformed argument (empty name, zero-length range, ...).
    InvalidArgument(String),
    /// Stored metadata failed to parse — store corruption.
    CorruptMetadata(String),
    /// The operation would violate the configured consistency level.
    Consistency(String),
    /// A component is temporarily down (crashed dataserver, severed
    /// path). Retryable: the caller may back off and try again, or
    /// fail over to another replica.
    Unavailable(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::Io(e) => write!(f, "i/o failure: {e}"),
            FsError::Kv(e) => write!(f, "metadata store failure: {e}"),
            FsError::Rpc(e) => write!(f, "rpc failure: {e}"),
            FsError::NotFound(name) => write!(f, "file not found: {name}"),
            FsError::AlreadyExists(name) => write!(f, "file already exists: {name}"),
            FsError::InvalidArgument(what) => write!(f, "invalid argument: {what}"),
            FsError::CorruptMetadata(what) => write!(f, "corrupt metadata: {what}"),
            FsError::Consistency(what) => write!(f, "consistency violation: {what}"),
            FsError::Unavailable(what) => write!(f, "temporarily unavailable: {what}"),
        }
    }
}

impl std::error::Error for FsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FsError::Io(e) => Some(e),
            FsError::Kv(e) => Some(e),
            FsError::Rpc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FsError {
    fn from(e: std::io::Error) -> FsError {
        FsError::Io(e)
    }
}

impl From<mayflower_kvstore::KvError> for FsError {
    fn from(e: mayflower_kvstore::KvError) -> FsError {
        FsError::Kv(e)
    }
}

impl From<mayflower_rpc::RpcError> for FsError {
    fn from(e: mayflower_rpc::RpcError) -> FsError {
        FsError::Rpc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(FsError::NotFound("x".into()).to_string().contains("x"));
        assert!(FsError::AlreadyExists("y".into())
            .to_string()
            .contains("exists"));
    }

    #[test]
    fn unavailable_is_retryable_and_informative() {
        let e = FsError::Unavailable("dataserver 3 down".into());
        let s = e.to_string();
        assert!(s.contains("unavailable") && s.contains("dataserver 3"));
    }

    #[test]
    fn io_source_preserved() {
        use std::error::Error as _;
        let e = FsError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }
}
