//! The nameserver: namespace and mappings (§3.3.1).

use std::sync::Arc;

use mayflower_kvstore::{KvStore, Options as KvOptions};
use mayflower_net::Topology;
use mayflower_simcore::SimRng;
use mayflower_workload::PlacementPolicy;
use parking_lot::Mutex;

use crate::dataserver::Dataserver;
use crate::error::FsError;
use crate::types::{FileId, FileMeta, Redundancy, DEFAULT_CHUNK_SIZE};

/// Nameserver configuration.
#[derive(Debug, Clone)]
pub struct NameserverConfig {
    /// Replication factor (default 3, §5).
    pub replication: usize,
    /// Chunk size for new files (default 256 MB, §5).
    pub chunk_size: u64,
    /// Replica placement rule (default: the prototype's HDFS-style
    /// rack-aware placement, §5).
    pub placement: PlacementPolicy,
    /// Seed for placement randomness.
    pub seed: u64,
}

impl Default for NameserverConfig {
    fn default() -> NameserverConfig {
        NameserverConfig {
            replication: 3,
            chunk_size: DEFAULT_CHUNK_SIZE,
            placement: PlacementPolicy::HdfsRackAware,
            seed: 0x4E53, // "NS"
        }
    }
}

/// The centralized metadata service: stores file → chunks and file →
/// dataservers mappings in a persistent KV store, makes replica
/// placement decisions at file creation, and can rebuild its state by
/// scanning dataserver metadata after an unclean restart.
#[derive(Debug)]
pub struct Nameserver {
    topo: Arc<Topology>,
    db: Mutex<KvStore>,
    config: NameserverConfig,
    rng: Mutex<SimRng>,
    /// Liveness registry: hosts whose dataserver the failure detector
    /// has confirmed dead. Fed by the recovery subsystem; consulted by
    /// [`Nameserver::under_replicated`] and `mayfs status`. In-memory
    /// only — liveness is an observation, not durable metadata.
    down: Mutex<std::collections::BTreeSet<mayflower_net::HostId>>,
}

/// Key prefix for name → metadata entries.
const NAME_PREFIX: &[u8] = b"n/";

impl Nameserver {
    /// Opens (or creates) a nameserver whose metadata database lives in
    /// `db_dir`.
    ///
    /// # Errors
    ///
    /// Returns an error if the database cannot be opened.
    pub fn open(
        topo: Arc<Topology>,
        db_dir: &std::path::Path,
        config: NameserverConfig,
    ) -> Result<Nameserver, FsError> {
        let db = KvStore::open(db_dir, KvOptions::default())?;
        // Re-opening a populated database must not replay the id/
        // placement stream from the top: a second process would mint
        // the same FileId the first one did and collide on the shared
        // dataservers. Perturb the seed by durable state; a fresh
        // database keeps the exact configured stream so deterministic
        // experiments are unchanged.
        let existing = db.scan_prefix(NAME_PREFIX).len() as u64;
        let seed = if existing == 0 {
            config.seed
        } else {
            config.seed ^ existing.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        };
        let rng = SimRng::seed_from(seed);
        Ok(Nameserver {
            topo,
            db: Mutex::new(db),
            config,
            rng: Mutex::new(rng),
            down: Mutex::new(std::collections::BTreeSet::new()),
        })
    }

    /// Records a liveness observation for a host's dataserver. The
    /// recovery subsystem's failure detector calls this on every
    /// confirmed state change; `live = false` marks the host dead,
    /// `live = true` clears the mark after a restart.
    pub fn set_host_live(&self, host: mayflower_net::HostId, live: bool) {
        let mut down = self.down.lock();
        if live {
            down.remove(&host);
        } else {
            down.insert(host);
        }
    }

    /// Whether a host's dataserver is currently believed live (hosts
    /// never reported dead default to live).
    #[must_use]
    pub fn is_host_live(&self, host: mayflower_net::HostId) -> bool {
        !self.down.lock().contains(&host)
    }

    /// The hosts currently marked dead, in host order.
    #[must_use]
    pub fn down_hosts(&self) -> Vec<mayflower_net::HostId> {
        self.down.lock().iter().copied().collect()
    }

    /// The under-replicated set: every file with at least one replica
    /// on a dead host, paired with its live replicas, ordered most
    /// urgent first (fewest live replicas, then name) — the repair
    /// planner's priority order.
    #[must_use]
    pub fn under_replicated(&self) -> Vec<(FileMeta, Vec<mayflower_net::HostId>)> {
        let down = self.down.lock().clone();
        let mut out: Vec<(FileMeta, Vec<mayflower_net::HostId>)> = self
            .list()
            .into_iter()
            .filter_map(|meta| {
                let live: Vec<mayflower_net::HostId> = meta
                    .replicas
                    .iter()
                    .copied()
                    .filter(|r| !down.contains(r))
                    .collect();
                if live.len() < meta.replicas.len() {
                    Some((meta, live))
                } else {
                    None
                }
            })
            .collect();
        out.sort_by(|a, b| (a.1.len(), &a.0.name).cmp(&(b.1.len(), &b.0.name)));
        out
    }

    /// The topology used for placement.
    #[must_use]
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &NameserverConfig {
        &self.config
    }

    fn name_key(name: &str) -> Vec<u8> {
        let mut k = NAME_PREFIX.to_vec();
        k.extend_from_slice(name.as_bytes());
        k
    }

    /// Creates a file: assigns a UUID, places replicas under the
    /// configured fault-domain policy, records the mappings.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::AlreadyExists`] for duplicate names or
    /// [`FsError::InvalidArgument`] for an empty name.
    pub fn create(&self, name: &str) -> Result<FileMeta, FsError> {
        self.create_with(
            name,
            Redundancy::Replicated {
                n: self.config.replication,
            },
        )
    }

    /// Creates a file under an explicit [`Redundancy`] policy. For
    /// `Replicated{n}` this places `n` replicas; for `Coded{k, m}` it
    /// places the configured number of tail replicas (the unsealed
    /// append chunk stays replicated, §3.2) **plus** `k + m` fragment
    /// hosts under the same fault-domain policy.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::AlreadyExists`] for duplicate names or
    /// [`FsError::InvalidArgument`] for an empty name or a policy the
    /// topology cannot host (`k + m` exceeding the host count).
    pub fn create_with(&self, name: &str, redundancy: Redundancy) -> Result<FileMeta, FsError> {
        if name.is_empty() {
            return Err(FsError::InvalidArgument("file name is empty".into()));
        }
        let key = Self::name_key(name);
        let mut db = self.db.lock();
        if db.get(&key).is_some() {
            return Err(FsError::AlreadyExists(name.to_string()));
        }
        let mut rng = self.rng.lock();
        let id = FileId((u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64()));
        let (replicas, fragments) = match redundancy {
            Redundancy::Replicated { n } => {
                if n == 0 {
                    return Err(FsError::InvalidArgument("replication factor 0".into()));
                }
                (
                    self.config.placement.place(&self.topo, n, &mut rng),
                    Vec::new(),
                )
            }
            Redundancy::Coded { k, m } => {
                if k == 0 || m == 0 || k + m > 255 {
                    return Err(FsError::InvalidArgument(format!(
                        "invalid coded redundancy {k}+{m}"
                    )));
                }
                if k + m > self.topo.hosts().len() {
                    return Err(FsError::InvalidArgument(format!(
                        "coded redundancy {k}+{m} exceeds {} hosts",
                        self.topo.hosts().len()
                    )));
                }
                let replicas =
                    self.config
                        .placement
                        .place(&self.topo, self.config.replication, &mut rng);
                // Fragment hosts must be pairwise distinct or a single
                // host failure costs several fragments, and `k + m`
                // routinely exceeds the rack count (which the replica
                // placement policy refuses), so fragments are dealt
                // across racks round-robin: a rack failure costs at
                // most `ceil((k + m) / racks)` fragments.
                let mut by_rack: std::collections::BTreeMap<_, Vec<mayflower_net::HostId>> =
                    std::collections::BTreeMap::new();
                for h in self.topo.hosts() {
                    by_rack.entry(self.topo.rack_of(h)).or_default().push(h);
                }
                let mut racks: Vec<Vec<mayflower_net::HostId>> = by_rack.into_values().collect();
                for r in &mut racks {
                    r.sort_unstable();
                }
                let offset = (rng.next_u64() as usize) % racks.len();
                let mut fragments: Vec<mayflower_net::HostId> = Vec::with_capacity(k + m);
                let mut depth = 0;
                while fragments.len() < k + m {
                    let mut advanced = false;
                    for i in 0..racks.len() {
                        if fragments.len() == k + m {
                            break;
                        }
                        if let Some(h) = racks[(offset + i) % racks.len()].get(depth) {
                            fragments.push(*h);
                            advanced = true;
                        }
                    }
                    if !advanced {
                        break; // host count guard above makes this unreachable
                    }
                    depth += 1;
                }
                (replicas, fragments)
            }
        };
        drop(rng);
        let meta = FileMeta {
            id,
            name: name.to_string(),
            chunk_size: self.config.chunk_size,
            size: 0,
            replicas,
            redundancy,
            fragments,
            sealed_chunks: 0,
        };
        let body =
            serde_json::to_vec(&meta).map_err(|e| FsError::CorruptMetadata(e.to_string()))?;
        db.put(&key, &body)?;
        Ok(meta)
    }

    /// Creates a file with an **explicit** replica placement instead of
    /// the configured policy. Used by experiments that must pin files
    /// to predetermined hosts (the paper's Figure 8 runs Mayflower and
    /// HDFS "with the same primary replica location"), and by
    /// migration tooling.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::AlreadyExists`] for duplicate names or
    /// [`FsError::InvalidArgument`] for an empty name or replica list.
    pub fn create_placed(
        &self,
        name: &str,
        replicas: Vec<mayflower_net::HostId>,
    ) -> Result<FileMeta, FsError> {
        if name.is_empty() {
            return Err(FsError::InvalidArgument("file name is empty".into()));
        }
        if replicas.is_empty() {
            return Err(FsError::InvalidArgument("replica list is empty".into()));
        }
        let key = Self::name_key(name);
        let mut db = self.db.lock();
        if db.get(&key).is_some() {
            return Err(FsError::AlreadyExists(name.to_string()));
        }
        let mut rng = self.rng.lock();
        let id = FileId((u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64()));
        drop(rng);
        let meta = FileMeta {
            id,
            name: name.to_string(),
            chunk_size: self.config.chunk_size,
            size: 0,
            replicas,
            redundancy: Redundancy::default(),
            fragments: Vec::new(),
            sealed_chunks: 0,
        };
        let body =
            serde_json::to_vec(&meta).map_err(|e| FsError::CorruptMetadata(e.to_string()))?;
        db.put(&key, &body)?;
        Ok(meta)
    }

    /// Stores fully-specified metadata verbatim — the deterministic
    /// apply operation used by the replicated nameserver (UUID and
    /// placement decided by the proposing node, so every replica's
    /// state machine transitions identically).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::AlreadyExists`] if the name is taken.
    pub fn create_exact(&self, meta: &FileMeta) -> Result<(), FsError> {
        let key = Self::name_key(&meta.name);
        let mut db = self.db.lock();
        if db.get(&key).is_some() {
            return Err(FsError::AlreadyExists(meta.name.clone()));
        }
        let body = serde_json::to_vec(meta).map_err(|e| FsError::CorruptMetadata(e.to_string()))?;
        db.put(&key, &body)?;
        Ok(())
    }

    /// Looks a file up by name.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] for unknown names.
    pub fn lookup(&self, name: &str) -> Result<FileMeta, FsError> {
        let db = self.db.lock();
        let Some(body) = db.get(&Self::name_key(name)) else {
            return Err(FsError::NotFound(name.to_string()));
        };
        serde_json::from_slice(&body).map_err(|e| FsError::CorruptMetadata(e.to_string()))
    }

    /// Records a file's new size after an append.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] for unknown names.
    pub fn record_size(&self, name: &str, size: u64) -> Result<(), FsError> {
        let mut meta = self.lookup(name)?;
        meta.size = size;
        let body =
            serde_json::to_vec(&meta).map_err(|e| FsError::CorruptMetadata(e.to_string()))?;
        self.db.lock().put(&Self::name_key(name), &body)?;
        Ok(())
    }

    /// Records that chunks `[0, sealed_chunks)` of a coded file are now
    /// fragment-backed (DESIGN.md §14 seal-and-encode).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] for unknown names or
    /// [`FsError::InvalidArgument`] when the file is not coded or the
    /// watermark moves backwards.
    pub fn record_seal(&self, name: &str, sealed_chunks: u64) -> Result<(), FsError> {
        let mut meta = self.lookup(name)?;
        if !meta.is_coded() {
            return Err(FsError::InvalidArgument(format!(
                "{name} is not a coded file"
            )));
        }
        if sealed_chunks < meta.sealed_chunks {
            return Err(FsError::InvalidArgument(format!(
                "seal watermark cannot regress ({} -> {sealed_chunks})",
                meta.sealed_chunks
            )));
        }
        meta.sealed_chunks = sealed_chunks;
        let body =
            serde_json::to_vec(&meta).map_err(|e| FsError::CorruptMetadata(e.to_string()))?;
        self.db.lock().put(&Self::name_key(name), &body)?;
        Ok(())
    }

    /// Re-homes fragment `index` of a coded file onto `host` after a
    /// coded repair rebuilt it there.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] for unknown names or
    /// [`FsError::InvalidArgument`] for an out-of-range index.
    pub fn set_fragment(
        &self,
        name: &str,
        index: usize,
        host: mayflower_net::HostId,
    ) -> Result<(), FsError> {
        let mut meta = self.lookup(name)?;
        if index >= meta.fragments.len() {
            return Err(FsError::InvalidArgument(format!(
                "fragment index {index} out of range for {name}"
            )));
        }
        meta.fragments[index] = host;
        let body =
            serde_json::to_vec(&meta).map_err(|e| FsError::CorruptMetadata(e.to_string()))?;
        self.db.lock().put(&Self::name_key(name), &body)?;
        Ok(())
    }

    /// Renames `old` to `new`, optionally overwriting an existing
    /// `new`. Returns the metadata displaced by an overwrite, whose
    /// replica data the caller must garbage-collect.
    ///
    /// This is the paper's **move** operation (§3.3): "random writes
    /// can be emulated in the application layer by creating and
    /// modifying a new copy of the file and using a move operation to
    /// overwrite the original file." Because dataserver directories
    /// are named by UUID, a rename touches only the nameserver.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if `old` is missing,
    /// [`FsError::AlreadyExists`] if `new` exists and `overwrite` is
    /// false, or [`FsError::InvalidArgument`] for an empty target name.
    pub fn rename(
        &self,
        old: &str,
        new: &str,
        overwrite: bool,
    ) -> Result<Option<FileMeta>, FsError> {
        if new.is_empty() {
            return Err(FsError::InvalidArgument("target name is empty".into()));
        }
        let mut meta = self.lookup(old)?;
        if old == new {
            // Self-rename is a no-op (anything else would displace —
            // and garbage-collect — the file itself).
            return Ok(None);
        }
        let mut db = self.db.lock();
        let displaced = match db.get(&Self::name_key(new)) {
            Some(body) if !overwrite => {
                let _ = body;
                return Err(FsError::AlreadyExists(new.to_string()));
            }
            Some(body) => Some(
                serde_json::from_slice(&body)
                    .map_err(|e| FsError::CorruptMetadata(e.to_string()))?,
            ),
            None => None,
        };
        meta.name = new.to_string();
        let body =
            serde_json::to_vec(&meta).map_err(|e| FsError::CorruptMetadata(e.to_string()))?;
        db.put(&Self::name_key(new), &body)?;
        db.delete(&Self::name_key(old))?;
        Ok(displaced)
    }

    /// Deletes a file's mappings.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] for unknown names.
    pub fn delete(&self, name: &str) -> Result<FileMeta, FsError> {
        let meta = self.lookup(name)?;
        self.db.lock().delete(&Self::name_key(name))?;
        Ok(meta)
    }

    /// Lists all files, sorted by name.
    #[must_use]
    pub fn list(&self) -> Vec<FileMeta> {
        self.list_prefix("")
    }

    /// Lists files whose name starts with `prefix`, sorted by name —
    /// the namespace is path-like, so this is directory listing.
    #[must_use]
    pub fn list_prefix(&self, prefix: &str) -> Vec<FileMeta> {
        let mut key = NAME_PREFIX.to_vec();
        key.extend_from_slice(prefix.as_bytes());
        self.db
            .lock()
            .scan_prefix(&key)
            .into_iter()
            .filter_map(|(_, v)| serde_json::from_slice(&v).ok())
            .collect()
    }

    /// Number of files.
    #[must_use]
    pub fn file_count(&self) -> usize {
        self.db.lock().scan_prefix(NAME_PREFIX).len()
    }

    /// Flushes metadata to disk — the graceful-shutdown path that makes
    /// the next [`Nameserver::open`] fast and trustworthy.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure.
    pub fn flush(&self) -> Result<(), FsError> {
        self.db.lock().flush()?;
        Ok(())
    }

    /// Rebuilds the mappings by scanning dataserver metadata — the
    /// paper's recovery path after an *unexpected* restart, when the
    /// (fsync-off) database may be stale: "instead of reading from the
    /// possibly stale database, the nameserver rebuilds the mappings by
    /// scanning the file metadata stored at the dataservers".
    ///
    /// Any existing database content is replaced.
    ///
    /// # Errors
    ///
    /// Returns an error if a dataserver scan or a database write fails.
    pub fn rebuild_from_dataservers(&self, dataservers: &[Arc<Dataserver>]) -> Result<(), FsError> {
        let mut db = self.db.lock();
        // Clear the possibly-stale namespace.
        let stale: Vec<Vec<u8>> = db
            .scan_prefix(NAME_PREFIX)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        for k in stale {
            db.delete(&k)?;
        }
        // Adopt the freshest replica metadata per file (largest size:
        // with primary-relayed appends the primary is never behind).
        let mut best: std::collections::HashMap<FileId, FileMeta> = Default::default();
        for ds in dataservers {
            for meta in ds.list_files()? {
                let entry = best.entry(meta.id).or_insert_with(|| meta.clone());
                if meta.size > entry.size {
                    *entry = meta;
                }
            }
        }
        for meta in best.values() {
            let body =
                serde_json::to_vec(meta).map_err(|e| FsError::CorruptMetadata(e.to_string()))?;
            db.put(&Self::name_key(&meta.name), &body)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mayflower_net::TreeParams;
    use std::path::PathBuf;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir = std::env::temp_dir().join(format!(
                "mayflower-ns-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            std::fs::remove_dir_all(&dir).ok();
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    fn nameserver(dir: &TempDir) -> Nameserver {
        let topo = Arc::new(Topology::three_tier(&TreeParams::paper_testbed()));
        Nameserver::open(topo, &dir.0.join("db"), NameserverConfig::default()).unwrap()
    }

    #[test]
    fn liveness_registry_feeds_under_replicated_set() {
        let dir = TempDir::new("liveness");
        let ns = nameserver(&dir);
        let a = ns.create("files/a").unwrap();
        let b = ns.create("files/b").unwrap();
        assert!(ns.under_replicated().is_empty());
        assert!(ns.is_host_live(a.replicas[0]));

        // Kill a's primary: a is under-replicated, b only if it also
        // holds a replica there.
        ns.set_host_live(a.replicas[0], false);
        assert!(!ns.is_host_live(a.replicas[0]));
        assert_eq!(ns.down_hosts(), vec![a.replicas[0]]);
        let under = ns.under_replicated();
        assert!(under.iter().any(|(m, _)| m.name == "files/a"));
        let (meta, live) = under.iter().find(|(m, _)| m.name == "files/a").unwrap();
        assert_eq!(live.len(), meta.replicas.len() - 1);
        assert!(!live.contains(&a.replicas[0]));

        // Priority order: fewest live replicas first, then name.
        ns.set_host_live(a.replicas[0], true);
        ns.set_host_live(b.replicas[0], false);
        ns.set_host_live(b.replicas[1], false);
        ns.set_host_live(a.replicas[2], false);
        let under = ns.under_replicated();
        assert_eq!(under.len(), 2);
        assert!(under
            .windows(2)
            .all(|w| (w[0].1.len(), &w[0].0.name) <= (w[1].1.len(), &w[1].0.name)));

        // Recovery clears the marks.
        ns.set_host_live(b.replicas[0], true);
        ns.set_host_live(b.replicas[1], true);
        ns.set_host_live(a.replicas[2], true);
        assert!(ns.under_replicated().is_empty());
    }

    #[test]
    fn create_lookup_delete() {
        let dir = TempDir::new("crud");
        let ns = nameserver(&dir);
        let meta = ns.create("a/b").unwrap();
        assert_eq!(meta.replicas.len(), 3);
        assert_eq!(meta.size, 0);
        assert_eq!(ns.lookup("a/b").unwrap(), meta);
        assert_eq!(ns.file_count(), 1);
        ns.delete("a/b").unwrap();
        assert!(matches!(ns.lookup("a/b"), Err(FsError::NotFound(_))));
    }

    #[test]
    fn duplicate_names_rejected() {
        let dir = TempDir::new("dup");
        let ns = nameserver(&dir);
        ns.create("x").unwrap();
        assert!(matches!(ns.create("x"), Err(FsError::AlreadyExists(_))));
    }

    #[test]
    fn empty_name_rejected() {
        let dir = TempDir::new("empty");
        let ns = nameserver(&dir);
        assert!(matches!(ns.create(""), Err(FsError::InvalidArgument(_))));
    }

    #[test]
    fn unique_file_ids() {
        let dir = TempDir::new("ids");
        let ns = nameserver(&dir);
        let mut ids = std::collections::HashSet::new();
        for i in 0..100 {
            let m = ns.create(&format!("f{i}")).unwrap();
            assert!(ids.insert(m.id), "duplicate id {}", m.id);
        }
    }

    #[test]
    fn record_size_persists() {
        let dir = TempDir::new("size");
        let ns = nameserver(&dir);
        ns.create("f").unwrap();
        ns.record_size("f", 1234).unwrap();
        assert_eq!(ns.lookup("f").unwrap().size, 1234);
    }

    #[test]
    fn graceful_restart_keeps_namespace() {
        let dir = TempDir::new("restart");
        let topo = Arc::new(Topology::three_tier(&TreeParams::paper_testbed()));
        {
            let ns = Nameserver::open(topo.clone(), &dir.0.join("db"), NameserverConfig::default())
                .unwrap();
            ns.create("kept").unwrap();
            ns.flush().unwrap();
        }
        let ns = Nameserver::open(topo, &dir.0.join("db"), NameserverConfig::default()).unwrap();
        assert!(ns.lookup("kept").is_ok());
    }

    #[test]
    fn rebuild_from_dataservers_recovers_lost_namespace() {
        let dir = TempDir::new("rebuild");
        let topo = Arc::new(Topology::three_tier(&TreeParams::paper_testbed()));
        let ns = Nameserver::open(
            topo.clone(),
            &dir.0.join("db"),
            NameserverConfig {
                chunk_size: 8,
                ..NameserverConfig::default()
            },
        )
        .unwrap();
        // Create a file, materialize replicas on dataservers, append.
        let meta = ns.create("recoverme").unwrap();
        let ds: Vec<Arc<Dataserver>> = meta
            .replicas
            .iter()
            .map(|h| Arc::new(Dataserver::open(*h, &dir.0.join(format!("ds-{h}"))).unwrap()))
            .collect();
        for d in &ds {
            d.create_file(&meta).unwrap();
        }
        // Primary gets the append and an updated local meta.
        ds[0].append_local(meta.id, b"payload").unwrap();

        // Simulate a nameserver crash with a stale DB: wipe and rebuild.
        let fresh = Nameserver::open(
            Arc::clone(&topo),
            &dir.0.join("db2"),
            NameserverConfig::default(),
        )
        .unwrap();
        fresh.rebuild_from_dataservers(&ds).unwrap();
        let rebuilt = fresh.lookup("recoverme").unwrap();
        assert_eq!(rebuilt.id, meta.id);
        assert_eq!(rebuilt.size, 7, "freshest replica wins");
        assert_eq!(rebuilt.replicas, meta.replicas);
    }

    #[test]
    fn create_placed_pins_replicas() {
        use mayflower_net::HostId;
        let dir = TempDir::new("placed");
        let ns = nameserver(&dir);
        let replicas = vec![HostId(7), HostId(20), HostId(41)];
        let meta = ns.create_placed("pinned", replicas.clone()).unwrap();
        assert_eq!(meta.replicas, replicas);
        assert_eq!(ns.lookup("pinned").unwrap().replicas, replicas);
        assert!(matches!(
            ns.create_placed("pinned", replicas),
            Err(FsError::AlreadyExists(_))
        ));
        assert!(matches!(
            ns.create_placed("bad", vec![]),
            Err(FsError::InvalidArgument(_))
        ));
    }

    #[test]
    fn list_prefix_acts_as_directory_listing() {
        let dir = TempDir::new("lsprefix");
        let ns = nameserver(&dir);
        for n in ["logs/a", "logs/b", "data/x", "logs2/c"] {
            ns.create(n).unwrap();
        }
        let names: Vec<String> = ns
            .list_prefix("logs/")
            .into_iter()
            .map(|m| m.name)
            .collect();
        assert_eq!(names, vec!["logs/a", "logs/b"]);
        assert_eq!(ns.list_prefix("nope/").len(), 0);
        assert_eq!(ns.list_prefix("").len(), 4);
    }

    #[test]
    fn self_rename_is_a_noop() {
        let dir = TempDir::new("selfrename");
        let ns = nameserver(&dir);
        let meta = ns.create("same").unwrap();
        let displaced = ns.rename("same", "same", true).unwrap();
        assert!(displaced.is_none(), "self-rename must not displace itself");
        assert_eq!(ns.lookup("same").unwrap().id, meta.id);
    }

    #[test]
    fn list_sorted_by_name() {
        let dir = TempDir::new("list");
        let ns = nameserver(&dir);
        for n in ["c", "a", "b"] {
            ns.create(n).unwrap();
        }
        let names: Vec<String> = ns.list().into_iter().map(|m| m.name).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }
}
