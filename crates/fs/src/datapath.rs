//! The parallel data-plane pipeline (DESIGN.md §16): a bounded
//! scoped-thread worker pool for piece fetches, append relays, and
//! fragment reads, plus the shared fetch context those jobs run with.
//!
//! Parallelism here overlaps *I/O latency* — dataserver RPC round
//! trips — not CPU work, so pool width is a client policy knob
//! ([`crate::client::Client::set_parallelism`]) rather than a function
//! of core count. Results are position-addressed: every job writes its
//! slot (and, for reads, its caller-provided buffer slice), so output
//! bytes are identical regardless of completion order and a width-1
//! pool runs the exact same code inline. The fluid simulator and the
//! model checker never thread through this pool, so their determinism
//! is untouched.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use mayflower_net::HostId;
use mayflower_telemetry::trace::{self, TraceHandle};
use mayflower_telemetry::{Counter, Gauge, Histogram, Scope};
use parking_lot::Mutex;

use crate::dataserver::Dataserver;
use crate::error::FsError;
use crate::types::FileMeta;

/// Backoff growth is capped so a long retry budget cannot make a
/// client hang for seconds on a dead component.
pub(crate) const MAX_RETRY_BACKOFF: std::time::Duration = std::time::Duration::from_millis(16);

/// Telemetry for the parallel pipeline, shared by every client of a
/// cluster (the registry dedups by metric name).
#[derive(Debug)]
pub(crate) struct DatapathMetrics {
    /// Piece / relay / fragment fetches currently running on the pool.
    pub(crate) inflight_fetches: Arc<Gauge>,
    /// Jobs dispatched per parallel operation (1 = serial path).
    pub(crate) fan_out_width: Arc<Histogram>,
    /// Straggler penalty per dispatch: time between the first and the
    /// last job of one fan-out completing. Zero when perfectly
    /// overlapped, the whole residual latency when one replica lags.
    pub(crate) pipeline_stall_us: Arc<Histogram>,
}

impl DatapathMetrics {
    pub(crate) fn new(scope: &Scope) -> DatapathMetrics {
        DatapathMetrics {
            inflight_fetches: scope.gauge("inflight_fetches"),
            fan_out_width: scope.histogram("fan_out_width"),
            pipeline_stall_us: scope.histogram("pipeline_stall_us"),
        }
    }
}

/// Runs `jobs` on a bounded pool of at most `width` scoped worker
/// threads and returns their results **in job order**. Width ≤ 1 (or a
/// single job) runs inline on the caller's thread — the serial
/// baseline goes through the identical code path.
pub(crate) fn fan_out<T, F>(width: usize, jobs: Vec<F>, metrics: Option<&DatapathMetrics>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    if let Some(m) = metrics {
        m.fan_out_width.record(n as u64);
    }
    let workers = width.max(1).min(n);
    if workers == 1 {
        return jobs.into_iter().map(|job| run_one(job, metrics)).collect();
    }

    // Work queue popped from the back; jobs are pushed reversed so the
    // lowest index dispatches first.
    let queue: Mutex<Vec<(usize, F)>> = Mutex::new(jobs.into_iter().enumerate().rev().collect());
    let slots: Vec<Mutex<Option<(T, Instant)>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let next = queue.lock().pop();
                let Some((index, job)) = next else { break };
                let value = run_one(job, metrics);
                *slots[index].lock() = Some((value, Instant::now()));
            });
        }
    });

    let mut first_done: Option<Instant> = None;
    let mut last_done: Option<Instant> = None;
    let out: Vec<T> = slots
        .into_iter()
        .map(|slot| {
            let (value, at) = slot.into_inner().expect("every job ran to completion");
            first_done = Some(first_done.map_or(at, |f| f.min(at)));
            last_done = Some(last_done.map_or(at, |l| l.max(at)));
            value
        })
        .collect();
    if let (Some(m), Some(first), Some(last)) = (metrics, first_done, last_done) {
        m.pipeline_stall_us.record_duration(last - first);
    }
    out
}

fn run_one<T>(job: impl FnOnce() -> T, metrics: Option<&DatapathMetrics>) -> T {
    if let Some(m) = metrics {
        m.inflight_fetches.add(1);
    }
    let value = job();
    if let Some(m) = metrics {
        m.inflight_fetches.sub(1);
    }
    value
}

/// The client's retry policy, detached from the (`!Sync`) client so
/// pool jobs can retry independently.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RetryPolicy {
    pub(crate) attempts: u32,
    pub(crate) backoff: std::time::Duration,
}

/// Runs `op`, retrying transient [`FsError::Unavailable`] failures —
/// the free-function twin of `Client::with_retry`, safe to call from
/// worker threads.
pub(crate) fn with_retry<T>(
    policy: RetryPolicy,
    retries: &Counter,
    mut op: impl FnMut() -> Result<T, FsError>,
) -> Result<T, FsError> {
    let mut delay = policy.backoff;
    let mut last = None;
    for attempt in 0..policy.attempts.max(1) {
        if attempt > 0 {
            retries.inc();
        }
        match op() {
            Ok(v) => return Ok(v),
            Err(e @ FsError::Unavailable(_)) => last = Some(e),
            Err(e) => return Err(e),
        }
        if attempt + 1 < policy.attempts && !delay.is_zero() {
            std::thread::sleep(delay);
            delay = (delay * 2).min(MAX_RETRY_BACKOFF);
        }
    }
    Err(last.expect("at least one attempt runs"))
}

/// Outcome of one piece fetch: how much of the piece buffer was
/// filled, the file size the serving dataserver reported, and which
/// host that size came from (the primary's size is authoritative under
/// strong consistency).
#[derive(Debug)]
pub(crate) struct PieceDone {
    pub(crate) filled: usize,
    pub(crate) reported_size: u64,
    pub(crate) size_from: HostId,
}

/// The `Sync` subset of client state a piece fetch needs — the client
/// itself holds `!Sync` state (the selector, the metadata cache) and
/// cannot be shared with the pool.
pub(crate) struct FetchCtx<'a> {
    pub(crate) dataservers: &'a BTreeMap<HostId, Arc<Dataserver>>,
    pub(crate) policy: RetryPolicy,
    pub(crate) retries: &'a Counter,
    /// Datapath tracing handle: piece fetches open per-host `attempt`
    /// spans under the ambient piece span, so a failover sweep leaves
    /// sibling attempts (failed and successful) in the trace.
    pub(crate) trace: &'a TraceHandle,
}

impl FetchCtx<'_> {
    pub(crate) fn dataserver(&self, host: HostId) -> Result<&Arc<Dataserver>, FsError> {
        self.dataservers
            .get(&host)
            .ok_or_else(|| FsError::InvalidArgument(format!("no dataserver on host {host}")))
    }

    /// Reads one contiguous piece into `buf`, sweeping the hosts in
    /// `order` (the chosen replica first, primary last) under the
    /// retry policy. Keeps the per-piece failover semantics of the
    /// serial path: a crashed dataserver that restarts within the
    /// retry budget turns a transient outage into a slower read.
    pub(crate) fn read_piece_into(
        &self,
        meta: &FileMeta,
        order: &[HostId],
        offset: u64,
        buf: &mut [u8],
    ) -> Result<PieceDone, FsError> {
        let mut round = 0u32;
        with_retry(self.policy, self.retries, || {
            let mut last_err = None;
            for host in order {
                let mut span = self.trace.child("attempt");
                trace::annotate(&mut span, "host", host.0.to_string());
                if round > 0 {
                    trace::annotate(&mut span, "retry_round", round.to_string());
                }
                let out = {
                    let _g = span.as_ref().map(trace::ActiveSpan::enter);
                    self.try_read_piece_into(meta, *host, offset, &mut *buf)
                };
                match out {
                    Ok(done) => {
                        trace::annotate(&mut span, "filled", done.filled.to_string());
                        return Ok(done);
                    }
                    Err(e) => {
                        trace::annotate(&mut span, "error", e.to_string());
                        trace::mark_error(&mut span);
                        last_err = Some(e);
                    }
                }
            }
            round += 1;
            Err(last_err.unwrap_or_else(|| FsError::NotFound(meta.name.clone())))
        })
    }

    fn try_read_piece_into(
        &self,
        meta: &FileMeta,
        host: HostId,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<PieceDone, FsError> {
        let (mut filled, size) = self
            .dataserver(host)?
            .read_local_into(meta.id, offset, buf)?;
        let mut done = PieceDone {
            filled,
            reported_size: size,
            size_from: host,
        };
        if filled < buf.len() {
            // A lagging replica returned a short read; the primary is
            // never behind — fetch the remainder there. Its size
            // report supersedes the laggard's.
            let (more, primary_size) = self.dataserver(meta.primary())?.read_local_into(
                meta.id,
                offset + filled as u64,
                &mut buf[filled..],
            )?;
            filled += more;
            done.filled = filled;
            done.reported_size = primary_size;
            done.size_from = meta.primary();
        }
        Ok(done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_returns_results_in_job_order() {
        for width in [1, 2, 4, 9] {
            let jobs: Vec<_> = (0..7)
                .map(|i| {
                    move || {
                        // Stagger completion so later jobs often finish
                        // first under real parallelism.
                        std::thread::sleep(std::time::Duration::from_micros(700 - 100 * i));
                        i
                    }
                })
                .collect();
            let out = fan_out(width, jobs, None);
            assert_eq!(out, vec![0, 1, 2, 3, 4, 5, 6], "width {width}");
        }
    }

    #[test]
    fn fan_out_handles_empty_and_single_job_inline() {
        let none: Vec<Box<dyn FnOnce() -> u32 + Send>> = Vec::new();
        assert!(fan_out(8, none, None).is_empty());
        let caller = std::thread::current().id();
        let out = fan_out(8, vec![move || std::thread::current().id() == caller], None);
        assert_eq!(out, vec![true], "single job runs on the caller's thread");
    }

    #[test]
    fn fan_out_records_width_stall_and_inflight() {
        let registry = mayflower_telemetry::Registry::new();
        let metrics = DatapathMetrics::new(&registry.scope("dp"));
        let jobs: Vec<_> = (0..4).map(|i| move || i * 2).collect();
        let out = fan_out(2, jobs, Some(&metrics));
        assert_eq!(out, vec![0, 2, 4, 6]);
        let snap = registry.snapshot();
        let width = snap.histogram("dp_fan_out_width").unwrap();
        assert_eq!((width.count, width.sum), (1, 4));
        assert_eq!(snap.histogram("dp_pipeline_stall_us").unwrap().count, 1);
        assert_eq!(metrics.inflight_fetches.get(), 0, "gauge drains to zero");
    }

    #[test]
    fn with_retry_counts_and_gives_up() {
        let retries = Counter::new();
        let policy = RetryPolicy {
            attempts: 3,
            backoff: std::time::Duration::ZERO,
        };
        let mut calls = 0;
        let out: Result<(), FsError> = with_retry(policy, &retries, || {
            calls += 1;
            Err(FsError::Unavailable("down".into()))
        });
        assert!(matches!(out, Err(FsError::Unavailable(_))));
        assert_eq!(calls, 3);
        assert_eq!(retries.get(), 2);
        // Non-retryable errors propagate immediately.
        let out: Result<(), FsError> =
            with_retry(policy, &retries, || Err(FsError::NotFound("gone".into())));
        assert!(matches!(out, Err(FsError::NotFound(_))));
        assert_eq!(retries.get(), 2);
    }
}
