//! The erasure-coded storage tier (DESIGN.md §14): seal-and-encode of
//! complete chunks, degraded reads from any `k` fragments, and
//! reconstruction of a lost fragment for coded repair.
//!
//! Coded files keep the paper's §3.2 append path untouched: the tail
//! chunk is written `n`-way replicated through the primary, and only
//! **complete** chunks — immutable under append-only semantics — are
//! striped into `k` data + `m` parity fragments and dropped from the
//! replicas. Every fragment carries its own checksum frame at the
//! dataserver layer, so silent corruption is detected *before* the
//! codec (Reed-Solomon alone cannot tell a corrupt shard from a good
//! one) and demoted to an erasure the decode can heal.

use std::collections::BTreeMap;
use std::sync::Arc;

use mayflower_ec::Codec;
use mayflower_net::HostId;
use mayflower_telemetry::{Counter, Scope};

use crate::dataserver::Dataserver;
use crate::error::FsError;
use crate::types::FileMeta;

/// Telemetry for the coded tier, registered under the cluster's `ec`
/// scope so every client and repair task aggregates into one series.
#[derive(Debug)]
pub(crate) struct EcMetrics {
    /// Payload bytes pushed through the encoder (seals + rebuilds).
    pub(crate) encode_bytes: Arc<Counter>,
    /// Payload bytes recovered through the decoder (degraded reads and
    /// fragment reconstruction).
    pub(crate) decode_bytes: Arc<Counter>,
    /// Chunks sealed (striped to fragments and dropped from replicas).
    pub(crate) chunks_sealed: Arc<Counter>,
    /// Sealed-chunk reads that needed a decode because a data fragment
    /// was missing or corrupt.
    pub(crate) degraded_reads: Arc<Counter>,
    /// Lost fragments rebuilt from `k` surviving sources.
    pub(crate) fragment_repairs: Arc<Counter>,
}

impl EcMetrics {
    pub(crate) fn new(scope: &Scope) -> EcMetrics {
        EcMetrics {
            encode_bytes: scope.counter("encode_bytes_total"),
            decode_bytes: scope.counter("decode_bytes_total"),
            chunks_sealed: scope.counter("chunks_sealed_total"),
            degraded_reads: scope.counter("degraded_reads_total"),
            fragment_repairs: scope.counter("fragment_repairs_total"),
        }
    }
}

/// Looks up a dataserver by host.
fn ds(
    dataservers: &BTreeMap<HostId, Arc<Dataserver>>,
    host: HostId,
) -> Result<&Arc<Dataserver>, FsError> {
    dataservers
        .get(&host)
        .ok_or_else(|| FsError::InvalidArgument(format!("no dataserver on host {host}")))
}

/// Reads the full payload of chunk `chunk` from any live replica
/// (primary last wins ties on staleness: it is never behind).
fn read_chunk_from_replicas(
    dataservers: &BTreeMap<HostId, Arc<Dataserver>>,
    meta: &FileMeta,
    chunk: u64,
) -> Result<Vec<u8>, FsError> {
    let offset = chunk * meta.chunk_size;
    let want = meta.chunk_payload_len(chunk);
    let mut last = None;
    for host in &meta.replicas {
        match ds(dataservers, *host)?.read_local(meta.id, offset, want) {
            Ok((data, _)) if data.len() as u64 == want => return Ok(data),
            Ok(_) => last = Some(FsError::Unavailable(format!("replica {host} short"))),
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| FsError::NotFound(meta.name.clone())))
}

/// Seals every complete-but-unsealed chunk of a coded file: reads the
/// chunk from a live replica, encodes it into `k + m` fragments, stores
/// one fragment per fragment host, advances the nameserver's seal
/// watermark, refreshes replica-local metadata, and reclaims the
/// replicated chunk copies.
///
/// **Best-effort and resumable**: a fragment host that is down stops
/// the seal at the current watermark (the chunk stays replicated; a
/// later append or an explicit [`crate::Cluster::seal`] retries), and a
/// crash between fragment writes and the watermark update leaves only
/// orphaned fragment files that the retry overwrites. Callers must
/// hold the file's append lock. Returns the new watermark.
///
/// # Errors
///
/// Propagates nameserver metadata failures; storage-side unavailability
/// merely stops early.
pub(crate) fn seal_complete_chunks(
    nameserver: &dyn crate::service::MetadataService,
    dataservers: &BTreeMap<HostId, Arc<Dataserver>>,
    name: &str,
    metrics: Option<&EcMetrics>,
) -> Result<u64, FsError> {
    let mut meta = nameserver.lookup(name)?;
    let Some((k, m)) = meta.redundancy.coded_params() else {
        return Ok(0);
    };
    if meta.fragments.len() != k + m {
        return Err(FsError::CorruptMetadata(format!(
            "{name}: {} fragment hosts for a {k}+{m} file",
            meta.fragments.len()
        )));
    }
    let codec = Codec::new(k, m);
    while meta.sealed_chunks < meta.complete_chunks() {
        let chunk = meta.sealed_chunks;
        let Ok(payload) = read_chunk_from_replicas(dataservers, &meta, chunk) else {
            break; // no live replica holds the chunk — retry later
        };
        let shards = codec.encode_payload(&payload);
        let mut stored_all = true;
        for (index, shard) in shards.iter().enumerate() {
            let host = meta.fragments[index];
            if ds(dataservers, host)?
                .put_fragment(meta.id, chunk, index, payload.len() as u64, shard)
                .is_err()
            {
                stored_all = false;
                break;
            }
        }
        if !stored_all {
            break; // chunk stays replicated until every fragment lands
        }
        nameserver.record_seal(name, chunk + 1)?;
        meta = nameserver.lookup(name)?;
        if let Some(mx) = metrics {
            mx.encode_bytes.add(payload.len() as u64);
            mx.chunks_sealed.inc();
        }
        // Refresh replica- and fragment-local metadata, then reclaim
        // the replicated copies. All best-effort: a down host misses
        // the update but the nameserver watermark is authoritative.
        for host in meta.replicas.iter().chain(&meta.fragments) {
            let _ = ds(dataservers, *host)?.update_meta(&meta);
        }
        for host in &meta.replicas {
            let _ = ds(dataservers, *host)?.drop_chunk(meta.id, chunk);
        }
    }
    Ok(meta.sealed_chunks)
}

/// Reads the full payload of sealed chunk `chunk` from its fragments.
///
/// Fast path: every data fragment the `selector_order` asks for first
/// is live → concatenate, no decode. Degraded path: any data fragment
/// missing or failing its checksum → fetch any `k` live fragments and
/// decode. Fragment fetch failures (host down, frame corrupt) demote
/// that fragment to an erasure and the sweep continues, so up to `m`
/// arbitrary losses are survivable.
///
/// `preferred` gives the fragment indices to try first (a selector's
/// choice); the remaining live fragments serve as failover. The `k`
/// fetches of each round race on a `width`-bounded pool (width 1 is
/// the serial sweep); failed fetches promote the next fragments in
/// deterministic index order, so the shard set a given failure pattern
/// yields is independent of width and timing.
///
/// # Errors
///
/// Returns [`FsError::Unavailable`] when fewer than `k` fragments can
/// be read.
pub(crate) fn read_sealed_chunk(
    dataservers: &BTreeMap<HostId, Arc<Dataserver>>,
    meta: &FileMeta,
    chunk: u64,
    preferred: &[usize],
    width: usize,
    metrics: Option<&EcMetrics>,
    datapath: Option<&crate::datapath::DatapathMetrics>,
) -> Result<Vec<u8>, FsError> {
    let (k, m) = meta
        .redundancy
        .coded_params()
        .ok_or_else(|| FsError::InvalidArgument(format!("{} is not coded", meta.name)))?;
    let n = k + m;
    let payload_len = meta.chunk_payload_len(chunk);

    // Fetch order: the selector's preference, then every other
    // fragment in index order as failover.
    let mut order: Vec<usize> = preferred.iter().copied().filter(|i| *i < n).collect();
    order.dedup();
    for i in 0..n {
        if !order.contains(&i) {
            order.push(i);
        }
    }

    let mut shards: Vec<Option<Vec<u8>>> = vec![None; n];
    let mut have = 0;
    let mut next = 0;
    while have < k && next < order.len() {
        // Fetch exactly as many fragments as are still missing, in
        // parallel; any that fail are replaced by the next candidates
        // in order on the following round.
        let round: Vec<usize> = order[next..].iter().copied().take(k - have).collect();
        next += round.len();
        let fetched = crate::datapath::fan_out(
            width,
            round
                .iter()
                .map(|&index| {
                    let host = meta.fragments[index];
                    move || -> Option<(usize, Vec<u8>)> {
                        let server = dataservers.get(&host)?;
                        match server.read_fragment(meta.id, chunk, index) {
                            Ok((shard, len)) if len == payload_len => Some((index, shard)),
                            // Wrong payload length, corrupt frame, host
                            // down, fragment not yet written: erasures.
                            Ok(_) | Err(_) => None,
                        }
                    }
                })
                .collect(),
            datapath,
        );
        for (index, shard) in fetched.into_iter().flatten() {
            shards[index] = Some(shard);
            have += 1;
        }
    }
    if have < k {
        return Err(FsError::Unavailable(format!(
            "{}: chunk {chunk} has {have} of {k} required fragments",
            meta.name
        )));
    }

    let all_data_present = shards.iter().take(k).all(Option::is_some);
    if all_data_present {
        let mut payload = Vec::with_capacity(payload_len as usize);
        for shard in shards.iter().take(k) {
            payload.extend_from_slice(shard.as_deref().expect("present"));
        }
        payload.truncate(payload_len as usize);
        return Ok(payload);
    }

    let codec = Codec::new(k, m);
    let payload = codec
        .decode_payload(&mut shards, payload_len as usize)
        .map_err(|e| FsError::Unavailable(format!("{}: chunk {chunk}: {e}", meta.name)))?;
    if let Some(mx) = metrics {
        mx.degraded_reads.inc();
        mx.decode_bytes.add(payload.len() as u64);
    }
    Ok(payload)
}

/// Rebuilds fragment `index` of every sealed chunk from `k` surviving
/// fragments and stores it on `dest`. Returns the fragment bytes
/// written. The caller splices `dest` into the fragment map and holds
/// the file's append lock.
///
/// # Errors
///
/// Returns [`FsError::Unavailable`] when any sealed chunk has fewer
/// than `k` live fragments, or when `dest` refuses the write.
pub(crate) fn rebuild_fragment(
    dataservers: &BTreeMap<HostId, Arc<Dataserver>>,
    meta: &FileMeta,
    index: usize,
    dest: HostId,
    metrics: Option<&EcMetrics>,
) -> Result<u64, FsError> {
    let (k, m) = meta
        .redundancy
        .coded_params()
        .ok_or_else(|| FsError::InvalidArgument(format!("{} is not coded", meta.name)))?;
    let n = k + m;
    if index >= n {
        return Err(FsError::InvalidArgument(format!(
            "fragment index {index} out of range for {k}+{m}"
        )));
    }
    let codec = Codec::new(k, m);
    let mut written = 0u64;
    for chunk in 0..meta.sealed_chunks {
        let payload_len = meta.chunk_payload_len(chunk);
        let mut shards: Vec<Option<Vec<u8>>> = vec![None; n];
        let mut have = 0;
        for (i, host) in meta.fragments.iter().enumerate() {
            if i == index || have >= k {
                continue;
            }
            let Ok(server) = ds(dataservers, *host) else {
                continue;
            };
            match server.read_fragment(meta.id, chunk, i) {
                Ok((shard, len)) if len == payload_len => {
                    shards[i] = Some(shard);
                    have += 1;
                }
                Ok(_) | Err(_) => {}
            }
        }
        if have < k {
            return Err(FsError::Unavailable(format!(
                "{}: chunk {chunk} has {have} of {k} fragments needed for rebuild",
                meta.name
            )));
        }
        codec
            .reconstruct(&mut shards)
            .map_err(|e| FsError::Unavailable(format!("{}: chunk {chunk}: {e}", meta.name)))?;
        let shard = shards[index].as_deref().expect("reconstructed");
        ds(dataservers, dest)?.put_fragment(meta.id, chunk, index, payload_len, shard)?;
        written += shard.len() as u64;
        if let Some(mx) = metrics {
            mx.decode_bytes.add(payload_len);
        }
    }
    if let Some(mx) = metrics {
        mx.fragment_repairs.inc();
    }
    Ok(written)
}
