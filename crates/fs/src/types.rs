//! Core filesystem types.

use mayflower_net::HostId;
use serde::{Deserialize, Serialize};

/// A file's universally-unique identifier. The paper names each file's
/// dataserver directory by its UUID (§3.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileId(pub u128);

impl FileId {
    /// Renders as 32 lowercase hex digits — the on-disk directory name.
    #[must_use]
    pub fn as_hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the hex form.
    #[must_use]
    pub fn from_hex(s: &str) -> Option<FileId> {
        u128::from_str_radix(s, 16).ok().map(FileId)
    }
}

impl std::fmt::Display for FileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.as_hex())
    }
}

/// Consistency level for reads (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Consistency {
    /// Sequential consistency: the primary orders appends; reads may go
    /// to any replica. The default.
    #[default]
    Sequential,
    /// Strong consistency: reads of the **last** chunk must go to the
    /// primary replica; all other chunks are immutable and may be read
    /// anywhere.
    Strong,
}

/// Per-file metadata, stored by the nameserver and mirrored to each
/// replica's dataserver directory (the rebuild source after an unclean
/// nameserver restart).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileMeta {
    /// The file's UUID.
    pub id: FileId,
    /// The user-visible name (path-like string).
    pub name: String,
    /// Chunk size in bytes; fixed at creation. Default 256 MB (§5).
    pub chunk_size: u64,
    /// Current file size in bytes (advances with appends).
    pub size: u64,
    /// Replica hosts; `replicas[0]` is the **primary**, which orders
    /// appends.
    pub replicas: Vec<HostId>,
}

impl FileMeta {
    /// The primary replica host.
    ///
    /// # Panics
    ///
    /// Panics if the replica list is empty (never constructed that
    /// way).
    #[must_use]
    pub fn primary(&self) -> HostId {
        self.replicas[0]
    }

    /// Number of chunks currently backing the file (0 when empty).
    #[must_use]
    pub fn chunk_count(&self) -> u64 {
        self.size.div_ceil(self.chunk_size)
    }

    /// Index of the last (mutable) chunk, if the file is non-empty.
    #[must_use]
    pub fn last_chunk(&self) -> Option<u64> {
        if self.size == 0 {
            None
        } else {
            Some((self.size - 1) / self.chunk_size)
        }
    }
}

/// The paper's default block size: 256 MB.
pub const DEFAULT_CHUNK_SIZE: u64 = 256 << 20;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_id_hex_roundtrip() {
        let id = FileId(0xDEAD_BEEF_0123_4567_89AB_CDEF_0000_1111);
        let hex = id.as_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(FileId::from_hex(&hex), Some(id));
        assert!(FileId::from_hex("not hex").is_none());
    }

    fn meta(size: u64, chunk: u64) -> FileMeta {
        FileMeta {
            id: FileId(1),
            name: "f".into(),
            chunk_size: chunk,
            size,
            replicas: vec![HostId(3), HostId(9)],
        }
    }

    #[test]
    fn chunk_math() {
        assert_eq!(meta(0, 10).chunk_count(), 0);
        assert_eq!(meta(0, 10).last_chunk(), None);
        assert_eq!(meta(1, 10).chunk_count(), 1);
        assert_eq!(meta(10, 10).chunk_count(), 1);
        assert_eq!(meta(10, 10).last_chunk(), Some(0));
        assert_eq!(meta(11, 10).chunk_count(), 2);
        assert_eq!(meta(11, 10).last_chunk(), Some(1));
        assert_eq!(meta(25, 10).chunk_count(), 3);
        assert_eq!(meta(25, 10).last_chunk(), Some(2));
    }

    #[test]
    fn primary_is_first_replica() {
        assert_eq!(meta(1, 1).primary(), HostId(3));
    }

    #[test]
    fn meta_serde_roundtrip() {
        let m = meta(42, 7);
        let json = serde_json::to_string(&m).unwrap();
        let back: FileMeta = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
