//! Core filesystem types.

use mayflower_net::HostId;
use serde::{Deserialize, Serialize};

/// A file's universally-unique identifier. The paper names each file's
/// dataserver directory by its UUID (§3.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileId(pub u128);

impl FileId {
    /// Renders as 32 lowercase hex digits — the on-disk directory name.
    #[must_use]
    pub fn as_hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the hex form.
    #[must_use]
    pub fn from_hex(s: &str) -> Option<FileId> {
        u128::from_str_radix(s, 16).ok().map(FileId)
    }
}

impl std::fmt::Display for FileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.as_hex())
    }
}

/// Consistency level for reads (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Consistency {
    /// Sequential consistency: the primary orders appends; reads may go
    /// to any replica. The default.
    #[default]
    Sequential,
    /// Strong consistency: reads of the **last** chunk must go to the
    /// primary replica; all other chunks are immutable and may be read
    /// anywhere.
    Strong,
}

/// Per-file redundancy policy (DESIGN.md §14). Replication is the
/// paper's §3.2 default; the coded tier trades the 3× storage cost for
/// a `(k + m) / k` overhead once chunks are sealed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Redundancy {
    /// `n`-way whole-chunk replication (the §3.2 scheme).
    Replicated {
        /// Replica count, including the primary.
        n: usize,
    },
    /// Systematic Reed-Solomon `k + m`: sealed chunks are striped into
    /// `k` data + `m` parity fragments; any `k` reconstruct. The
    /// append-tail chunk stays replicated until sealed.
    Coded {
        /// Data fragments per stripe.
        k: usize,
        /// Parity fragments per stripe.
        m: usize,
    },
}

impl Default for Redundancy {
    fn default() -> Redundancy {
        Redundancy::Replicated { n: 3 }
    }
}

impl Redundancy {
    /// Parses the `mayfs` CLI spelling: `"3"` → `Replicated{n: 3}`,
    /// `"6+3"` → `Coded{k: 6, m: 3}`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Redundancy> {
        if let Some((k, m)) = s.split_once('+') {
            let k: usize = k.trim().parse().ok()?;
            let m: usize = m.trim().parse().ok()?;
            if k == 0 || m == 0 || k + m > 255 {
                return None;
            }
            Some(Redundancy::Coded { k, m })
        } else {
            let n: usize = s.trim().parse().ok()?;
            if n == 0 {
                return None;
            }
            Some(Redundancy::Replicated { n })
        }
    }

    /// `(k, m)` when coded, `None` when replicated.
    #[must_use]
    pub fn coded_params(&self) -> Option<(usize, usize)> {
        match *self {
            Redundancy::Replicated { .. } => None,
            Redundancy::Coded { k, m } => Some((k, m)),
        }
    }
}

impl std::fmt::Display for Redundancy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Redundancy::Replicated { n } => write!(f, "{n}"),
            Redundancy::Coded { k, m } => write!(f, "{k}+{m}"),
        }
    }
}

/// Per-file metadata, stored by the nameserver and mirrored to each
/// replica's dataserver directory (the rebuild source after an unclean
/// nameserver restart).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileMeta {
    /// The file's UUID.
    pub id: FileId,
    /// The user-visible name (path-like string).
    pub name: String,
    /// Chunk size in bytes; fixed at creation. Default 256 MB (§5).
    pub chunk_size: u64,
    /// Current file size in bytes (advances with appends).
    pub size: u64,
    /// Replica hosts; `replicas[0]` is the **primary**, which orders
    /// appends. For a coded file these hold the (replicated) unsealed
    /// tail chunks only.
    pub replicas: Vec<HostId>,
    /// The file's redundancy policy, fixed at creation.
    pub redundancy: Redundancy,
    /// Fragment hosts for a coded file: `fragments[j]` stores fragment
    /// `j` of every sealed chunk (`j < k` data, `j >= k` parity).
    /// Empty for replicated files.
    pub fragments: Vec<HostId>,
    /// Chunks `[0, sealed_chunks)` have been sealed: striped to the
    /// fragment hosts and dropped from the replicas. Always 0 for
    /// replicated files.
    pub sealed_chunks: u64,
}

impl FileMeta {
    /// The primary replica host.
    ///
    /// # Panics
    ///
    /// Panics if the replica list is empty (never constructed that
    /// way).
    #[must_use]
    pub fn primary(&self) -> HostId {
        self.replicas[0]
    }

    /// Number of chunks currently backing the file (0 when empty).
    #[must_use]
    pub fn chunk_count(&self) -> u64 {
        self.size.div_ceil(self.chunk_size)
    }

    /// Index of the last (mutable) chunk, if the file is non-empty.
    #[must_use]
    pub fn last_chunk(&self) -> Option<u64> {
        if self.size == 0 {
            None
        } else {
            Some((self.size - 1) / self.chunk_size)
        }
    }

    /// Whether this file is on the coded tier.
    #[must_use]
    pub fn is_coded(&self) -> bool {
        matches!(self.redundancy, Redundancy::Coded { .. })
    }

    /// Bytes covered by sealed (fragment-backed) chunks.
    #[must_use]
    pub fn sealed_bytes(&self) -> u64 {
        self.sealed_chunks * self.chunk_size
    }

    /// Chunks that are complete (their full `chunk_size` is below
    /// `size`) and therefore immutable: appends always start at
    /// `size`, so a chunk whose end is `<= size` can never change.
    /// These are the seal candidates for a coded file.
    #[must_use]
    pub fn complete_chunks(&self) -> u64 {
        self.size / self.chunk_size
    }

    /// Actual payload length of sealed chunk `chunk` (always full by
    /// the seal rule, but kept explicit for the last-chunk boundary).
    #[must_use]
    pub fn chunk_payload_len(&self, chunk: u64) -> u64 {
        let start = chunk * self.chunk_size;
        self.size.saturating_sub(start).min(self.chunk_size)
    }
}

/// The paper's default block size: 256 MB.
pub const DEFAULT_CHUNK_SIZE: u64 = 256 << 20;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_id_hex_roundtrip() {
        let id = FileId(0xDEAD_BEEF_0123_4567_89AB_CDEF_0000_1111);
        let hex = id.as_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(FileId::from_hex(&hex), Some(id));
        assert!(FileId::from_hex("not hex").is_none());
    }

    fn meta(size: u64, chunk: u64) -> FileMeta {
        FileMeta {
            id: FileId(1),
            name: "f".into(),
            chunk_size: chunk,
            size,
            replicas: vec![HostId(3), HostId(9)],
            redundancy: Redundancy::default(),
            fragments: Vec::new(),
            sealed_chunks: 0,
        }
    }

    #[test]
    fn chunk_math() {
        assert_eq!(meta(0, 10).chunk_count(), 0);
        assert_eq!(meta(0, 10).last_chunk(), None);
        assert_eq!(meta(1, 10).chunk_count(), 1);
        assert_eq!(meta(10, 10).chunk_count(), 1);
        assert_eq!(meta(10, 10).last_chunk(), Some(0));
        assert_eq!(meta(11, 10).chunk_count(), 2);
        assert_eq!(meta(11, 10).last_chunk(), Some(1));
        assert_eq!(meta(25, 10).chunk_count(), 3);
        assert_eq!(meta(25, 10).last_chunk(), Some(2));
    }

    #[test]
    fn primary_is_first_replica() {
        assert_eq!(meta(1, 1).primary(), HostId(3));
    }

    #[test]
    fn meta_serde_roundtrip() {
        let m = meta(42, 7);
        let json = serde_json::to_string(&m).unwrap();
        let back: FileMeta = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);

        let mut coded = meta(42, 7);
        coded.redundancy = Redundancy::Coded { k: 4, m: 2 };
        coded.fragments = (10..16).map(HostId).collect();
        coded.sealed_chunks = 3;
        let json = serde_json::to_string(&coded).unwrap();
        let back: FileMeta = serde_json::from_str(&json).unwrap();
        assert_eq!(back, coded);
    }

    #[test]
    fn redundancy_parse() {
        assert_eq!(
            Redundancy::parse("3"),
            Some(Redundancy::Replicated { n: 3 })
        );
        assert_eq!(
            Redundancy::parse("6+3"),
            Some(Redundancy::Coded { k: 6, m: 3 })
        );
        assert_eq!(Redundancy::parse("0"), None);
        assert_eq!(Redundancy::parse("0+2"), None);
        assert_eq!(Redundancy::parse("4+0"), None);
        assert_eq!(Redundancy::parse("300+300"), None);
        assert_eq!(Redundancy::parse("x"), None);
        assert_eq!(Redundancy::Coded { k: 6, m: 3 }.to_string(), "6+3");
        assert_eq!(Redundancy::default().to_string(), "3");
    }

    #[test]
    fn sealed_chunk_math() {
        let mut m = meta(25, 10);
        m.redundancy = Redundancy::Coded { k: 2, m: 1 };
        m.fragments = vec![HostId(1), HostId(2), HostId(4)];
        assert!(m.is_coded());
        assert_eq!(m.complete_chunks(), 2);
        m.sealed_chunks = 2;
        assert_eq!(m.sealed_bytes(), 20);
        assert_eq!(m.chunk_payload_len(0), 10);
        assert_eq!(m.chunk_payload_len(1), 10);
        assert_eq!(m.chunk_payload_len(2), 5);
        assert_eq!(m.chunk_payload_len(3), 0);
    }
}
