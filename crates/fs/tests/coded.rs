//! End-to-end tests of the erasure-coded storage tier: seal-and-encode
//! on append, degraded reads with up to `m` fragments lost, checksum
//! detection of silent corruption, and coded repair.

use std::path::PathBuf;
use std::sync::Arc;

use mayflower_fs::{Cluster, ClusterConfig, Consistency, FsError, NameserverConfig, Redundancy};
use mayflower_net::{HostId, Topology, TreeParams};

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "mayflower-coded-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        TempDir(dir)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn cluster(dir: &TempDir, consistency: Consistency) -> Cluster {
    let topo = Arc::new(Topology::three_tier(&TreeParams {
        pods: 2,
        racks_per_pod: 2,
        hosts_per_rack: 2,
        ..TreeParams::paper_testbed()
    }));
    Cluster::create(
        &dir.0,
        topo,
        ClusterConfig {
            nameserver: NameserverConfig {
                chunk_size: 16,
                ..NameserverConfig::default()
            },
            consistency,
        },
    )
    .unwrap()
}

/// Deterministic payload bytes.
fn payload(len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(37).wrapping_add(11))
        .collect()
}

#[test]
fn append_seals_complete_chunks_into_fragments() {
    let dir = TempDir::new("seal");
    let c = cluster(&dir, Consistency::Sequential);
    let mut client = c.client(HostId(0));
    let meta = client
        .create_with("coded", Redundancy::Coded { k: 4, m: 2 })
        .unwrap();
    assert_eq!(meta.fragments.len(), 6);
    assert_eq!(meta.redundancy, Redundancy::Coded { k: 4, m: 2 });

    let data = payload(40); // 2 complete chunks + 8-byte tail
    client.append("coded", &data).unwrap();

    let sealed = c.nameserver().lookup("coded").unwrap();
    assert_eq!(sealed.sealed_chunks, 2);
    // Every fragment host holds its fragment of every sealed chunk.
    for chunk in 0..2 {
        for (i, host) in sealed.fragments.iter().enumerate() {
            assert!(
                c.dataserver(*host).has_fragment(meta.id, chunk, i),
                "fragment {i} of chunk {chunk} missing on host {host}"
            );
        }
    }
    // The replicas reclaimed the sealed chunks but keep the tail.
    for r in &sealed.replicas {
        assert_eq!(c.dataserver(*r).local_size(meta.id).unwrap(), 8);
    }
    // And the read is byte-identical across the sealed/tail boundary.
    assert_eq!(client.read("coded").unwrap(), data);
    assert_eq!(client.read_range("coded", 10, 20).unwrap(), &data[10..30]);

    let snap = c.registry().snapshot();
    assert_eq!(snap.counter("ec_chunks_sealed_total"), Some(2));
    assert_eq!(snap.counter("ec_encode_bytes_total"), Some(32));
    // All data fragments were live: no decode was needed.
    assert_eq!(snap.counter("ec_degraded_reads_total"), Some(0));
}

#[test]
fn degraded_read_survives_m_fragment_losses() {
    let dir = TempDir::new("degraded");
    let c = cluster(&dir, Consistency::Sequential);
    let mut client = c.client(HostId(0));
    let meta = client
        .create_with("frail", Redundancy::Coded { k: 4, m: 2 })
        .unwrap();
    let data = payload(64); // 4 sealed chunks, empty tail
    client.append("frail", &data).unwrap();
    let sealed = c.nameserver().lookup("frail").unwrap();
    assert_eq!(sealed.sealed_chunks, 4);

    // Lose m = 2 fragments: crash one non-replica fragment host (the
    // fault subsystem's failure mode) and silently corrupt another
    // fragment's bytes on disk (the checksum frame must catch it).
    let crashed = sealed
        .fragments
        .iter()
        .enumerate()
        .find(|(_, h)| !sealed.replicas.contains(h))
        .map(|(i, h)| (i, *h))
        .expect("a non-replica fragment host exists");
    c.dataserver(crashed.1).crash();
    let corrupt_idx = (0..sealed.fragments.len())
        .find(|i| *i != crashed.0)
        .unwrap();
    for chunk in 0..sealed.sealed_chunks {
        let path =
            c.dataserver(sealed.fragments[corrupt_idx])
                .fragment_path(meta.id, chunk, corrupt_idx);
        let mut frame = std::fs::read(&path).unwrap();
        let last = frame.len() - 1;
        frame[last] ^= 0xff;
        std::fs::write(&path, &frame).unwrap();
    }

    // Still byte-identical, for clients anywhere in the fabric.
    for host in [0u32, 3, 7] {
        let mut reader = c.client(HostId(host));
        assert_eq!(reader.read("frail").unwrap(), data, "client on {host}");
    }
    let snap = c.registry().snapshot();
    assert!(snap.counter("ec_degraded_reads_total").unwrap() >= 1);
    assert!(snap.counter("ec_decode_bytes_total").unwrap() >= 16);

    // A third loss exceeds m: the read must fail, not mis-decode.
    let third = sealed
        .fragments
        .iter()
        .enumerate()
        .find(|(i, h)| *i != crashed.0 && *i != corrupt_idx && !sealed.replicas.contains(h))
        .map(|(_, h)| *h)
        .expect("another non-replica fragment host");
    c.dataserver(third).crash();
    let mut reader = c.client(HostId(0));
    reader.set_retry_policy(1, std::time::Duration::ZERO);
    assert!(matches!(reader.read("frail"), Err(FsError::Unavailable(_))));
}

#[test]
fn repair_fragment_rebuilds_onto_a_new_host() {
    let dir = TempDir::new("frag-repair");
    let c = cluster(&dir, Consistency::Sequential);
    let mut client = c.client(HostId(0));
    let meta = client
        .create_with("mend", Redundancy::Coded { k: 4, m: 2 })
        .unwrap();
    let data = payload(48); // 3 sealed chunks
    client.append("mend", &data).unwrap();
    let sealed = c.nameserver().lookup("mend").unwrap();

    // Nothing lost: the repair is a no-op.
    assert_eq!(
        c.repair_fragment("mend", 1, sealed.fragments[1]).unwrap(),
        0
    );

    // Wipe fragment 1's host and rebuild onto a host holding nothing.
    let victim = sealed.fragments[1];
    c.dataserver(victim).delete_file(meta.id).ok();
    c.dataserver(victim).crash();
    let dest = c
        .topology()
        .hosts()
        .into_iter()
        .find(|h| !sealed.fragments.contains(h) && !sealed.replicas.contains(h))
        .expect("a free host exists");
    let written = c.repair_fragment("mend", 1, dest).unwrap();
    assert!(written > 0);

    let mended = c.nameserver().lookup("mend").unwrap();
    assert_eq!(mended.fragments[1], dest);
    for chunk in 0..mended.sealed_chunks {
        assert!(c.dataserver(dest).has_fragment(meta.id, chunk, 1));
    }
    // Repaired state reads clean even with the victim still down.
    let mut reader = c.client(HostId(5));
    assert_eq!(reader.read("mend").unwrap(), data);
    let snap = c.registry().snapshot();
    assert_eq!(snap.counter("ec_fragment_repairs_total"), Some(1));

    // Idempotent: the fragment is whole again.
    assert_eq!(c.repair_fragment("mend", 1, dest).unwrap(), 0);
}

#[test]
fn seal_defers_while_a_fragment_host_is_down() {
    let dir = TempDir::new("defer");
    let c = cluster(&dir, Consistency::Sequential);
    let mut client = c.client(HostId(0));
    let meta = client
        .create_with("patient", Redundancy::Coded { k: 2, m: 1 })
        .unwrap();

    // Crash a fragment host that is not also a tail replica, so the
    // append itself still succeeds.
    let down = meta
        .fragments
        .iter()
        .copied()
        .find(|h| !meta.replicas.contains(h))
        .expect("a non-replica fragment host exists");
    c.dataserver(down).crash();
    let data = payload(32); // 2 complete chunks
    client.append("patient", &data).unwrap();
    // Durability never regresses: the chunks stay replicated.
    assert_eq!(c.nameserver().lookup("patient").unwrap().sealed_chunks, 0);
    assert_eq!(client.read("patient").unwrap(), data);

    // Once the host returns, an explicit seal catches up.
    c.dataserver(down).restart();
    assert_eq!(c.seal("patient").unwrap(), 2);
    assert_eq!(client.read("patient").unwrap(), data);
    for r in &c.nameserver().lookup("patient").unwrap().replicas {
        assert_eq!(c.dataserver(*r).local_size(meta.id).unwrap(), 0);
    }
}

#[test]
fn strong_consistency_reads_span_fragments_and_primary_tail() {
    let dir = TempDir::new("strong-coded");
    let c = cluster(&dir, Consistency::Strong);
    let mut client = c.client(HostId(2));
    client
        .create_with("strict", Redundancy::Coded { k: 3, m: 2 })
        .unwrap();
    let data = payload(42); // 2 sealed chunks + 10-byte tail
    client.append("strict", &data).unwrap();
    assert_eq!(c.nameserver().lookup("strict").unwrap().sealed_chunks, 2);
    assert_eq!(client.read("strict").unwrap(), data);
    // A range crossing the sealed/tail boundary.
    assert_eq!(client.read_range("strict", 24, 18).unwrap(), &data[24..42]);
}

#[test]
fn replicated_files_are_untouched_by_the_coded_tier() {
    let dir = TempDir::new("replicated");
    let c = cluster(&dir, Consistency::Sequential);
    let mut client = c.client(HostId(0));
    let meta = client.create("plain").unwrap();
    assert_eq!(meta.redundancy, Redundancy::Replicated { n: 3 });
    assert!(meta.fragments.is_empty());
    let data = payload(40);
    client.append("plain", &data).unwrap();
    assert_eq!(c.nameserver().lookup("plain").unwrap().sealed_chunks, 0);
    assert_eq!(client.read("plain").unwrap(), data);
    let snap = c.registry().snapshot();
    assert_eq!(snap.counter("ec_chunks_sealed_total"), Some(0));
}
