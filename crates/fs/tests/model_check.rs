//! Model-based property test: the Mayflower filesystem must agree with
//! a trivial in-memory reference model under arbitrary operation
//! sequences, chunk sizes and consistency levels.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use mayflower_fs::nameserver::NameserverConfig;
use mayflower_fs::{Cluster, ClusterConfig, Consistency};
use mayflower_net::{HostId, Topology, TreeParams};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    Append(u8, Vec<u8>),
    ReadAll(u8),
    ReadRange(u8, u16, u16),
    Rename(u8, u8),
    Delete(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let name = 0u8..4;
    prop_oneof![
        2 => name.clone().prop_map(Op::Create),
        4 => (name.clone(), proptest::collection::vec(any::<u8>(), 0..60))
            .prop_map(|(n, d)| Op::Append(n, d)),
        3 => name.clone().prop_map(Op::ReadAll),
        2 => (name.clone(), any::<u16>(), 0u16..80).prop_map(|(n, o, l)| Op::ReadRange(n, o, l)),
        1 => (name.clone(), name.clone()).prop_map(|(a, b)| Op::Rename(a, b)),
        1 => name.prop_map(Op::Delete),
    ]
}

fn temp_dir(tag: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "mayflower-model-{}-{:?}-{tag}",
        std::process::id(),
        std::thread::current().id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn filesystem_agrees_with_model(
        ops in proptest::collection::vec(op_strategy(), 1..40),
        chunk_size in 1u64..40,
        strong in any::<bool>(),
        case_tag in any::<u64>(),
    ) {
        let dir = temp_dir(case_tag);
        std::fs::remove_dir_all(&dir).ok();
        let topo = Arc::new(Topology::three_tier(&TreeParams {
            pods: 2,
            racks_per_pod: 2,
            hosts_per_rack: 2,
            ..TreeParams::paper_testbed()
        }));
        let cluster = Cluster::create(
            &dir,
            topo,
            ClusterConfig {
                nameserver: NameserverConfig {
                    chunk_size,
                    ..NameserverConfig::default()
                },
                consistency: if strong {
                    Consistency::Strong
                } else {
                    Consistency::Sequential
                },
            },
        )
        .expect("cluster");
        let mut client = cluster.client(HostId(0));
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();

        for op in ops {
            match op {
                Op::Create(n) => {
                    let name = format!("f{n}");
                    let real = client.create(&name);
                    if let std::collections::hash_map::Entry::Vacant(slot) = model.entry(name) {
                        prop_assert!(real.is_ok(), "create failed: {real:?}");
                        slot.insert(Vec::new());
                    } else {
                        prop_assert!(real.is_err(), "duplicate create must fail");
                    }
                }
                Op::Append(n, data) => {
                    let name = format!("f{n}");
                    let real = client.append(&name, &data);
                    match model.get_mut(&name) {
                        Some(content) => {
                            content.extend_from_slice(&data);
                            prop_assert_eq!(real.expect("append"), content.len() as u64);
                        }
                        None => prop_assert!(real.is_err()),
                    }
                }
                Op::ReadAll(n) => {
                    let name = format!("f{n}");
                    let real = client.read(&name);
                    match model.get(&name) {
                        Some(content) => prop_assert_eq!(&real.expect("read"), content),
                        None => prop_assert!(real.is_err()),
                    }
                }
                Op::ReadRange(n, offset, len) => {
                    let name = format!("f{n}");
                    let real = client.read_range(&name, u64::from(offset), u64::from(len));
                    match model.get(&name) {
                        Some(content) => {
                            let start = (offset as usize).min(content.len());
                            let end = (offset as usize + len as usize).min(content.len());
                            prop_assert_eq!(&real.expect("read_range"), &content[start..end]);
                        }
                        None => prop_assert!(real.is_err()),
                    }
                }
                Op::Rename(a, b) => {
                    let (from, to) = (format!("f{a}"), format!("f{b}"));
                    let real = client.rename(&from, &to);
                    if let Some(content) = model.remove(&from) {
                        prop_assert!(real.is_ok(), "rename failed: {real:?}");
                        model.insert(to, content);
                    } else {
                        prop_assert!(real.is_err());
                    }
                }
                Op::Delete(n) => {
                    let name = format!("f{n}");
                    let real = client.delete(&name);
                    if model.remove(&name).is_some() {
                        prop_assert!(real.is_ok(), "delete failed: {real:?}");
                    } else {
                        prop_assert!(real.is_err());
                    }
                }
            }
        }

        // Final sweep: every surviving file reads back exactly.
        for (name, content) in &model {
            prop_assert_eq!(&client.read(name).expect("final read"), content);
        }
        drop(client);
        drop(cluster);
        std::fs::remove_dir_all(&dir).ok();
    }
}
