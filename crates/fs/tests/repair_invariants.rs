//! Repair invariants under arbitrary replica loss.
//!
//! Property: however replicas are killed (up to replication − 1 per
//! cluster), repairing every file restores the replication factor,
//! lands every copy on a live host with the right bytes, and — when
//! enough racks survive — places every *replacement* in a rack no
//! other replica of the same file occupies (the §3.1
//! no-two-replicas-per-rack constraint re-checked against the whole
//! final set). Plus: concurrent targeted repairs are idempotent and
//! never corrupt the replica list.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

use mayflower_fs::{Cluster, ClusterConfig};
use mayflower_net::{HostId, Topology, TreeParams};
use mayflower_simcore::testutil::SeedGuard;
use mayflower_simcore::SimRng;
use proptest::prelude::*;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "mayfs-repair-inv-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        TempDir(dir)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn cluster_in(dir: &TempDir, params: &TreeParams) -> Cluster {
    let topo = Arc::new(Topology::three_tier(params));
    Cluster::create(&dir.0, topo, ClusterConfig::default()).unwrap()
}

fn put(c: &Cluster, name: &str, data: &[u8]) -> mayflower_fs::FileMeta {
    let meta = c.nameserver().create(name).unwrap();
    for r in &meta.replicas {
        c.dataserver(*r).create_file(&meta).unwrap();
    }
    c.append_via_primary(&meta, data).unwrap();
    c.nameserver().lookup(name).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn kills_then_repairs_restore_factor_and_spread(
        seed in any::<u64>(),
        raw_kills in proptest::collection::vec(any::<u32>(), 1..3),
        n_files in 1usize..4,
        case_tag in any::<u64>(),
    ) {
        let _seed_guard = SeedGuard::new("repair_invariants::kills_then_repairs", seed);
        let dir = TempDir::new(&format!("prop-{case_tag}"));
        let c = cluster_in(&dir, &TreeParams::paper_testbed());
        let mut originals = Vec::new();
        for i in 0..n_files {
            originals.push(put(&c, &format!("files/f{i}"), format!("data-{i}").as_bytes()));
        }

        // Map raw kill ids onto replica-holding hosts (mod idiom) and
        // cap at replication − 1 so every file keeps a live source.
        let holders: Vec<HostId> = originals
            .iter()
            .flat_map(|m| m.replicas.iter().copied())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut killed = BTreeSet::new();
        for raw in &raw_kills {
            killed.insert(holders[(*raw as usize) % holders.len()]);
            if killed.len() == 2 {
                break;
            }
        }
        for h in &killed {
            c.dataserver(*h).crash();
        }

        let mut rng = SimRng::seed_from(seed);
        let topo = Arc::clone(c.topology());
        for (i, original) in originals.iter().enumerate() {
            let name = format!("files/f{i}");
            let new_hosts = c.repair(&name, &mut rng).unwrap();
            let meta = c.nameserver().lookup(&name).unwrap();

            // Replication factor restored, no duplicate hosts.
            prop_assert_eq!(meta.replicas.len(), original.replicas.len());
            let distinct: BTreeSet<_> = meta.replicas.iter().collect();
            prop_assert_eq!(distinct.len(), meta.replicas.len());

            // Every replica is live and holds the right bytes.
            for r in &meta.replicas {
                prop_assert!(!killed.contains(r));
                prop_assert!(c.dataserver(*r).has_file(meta.id));
                let (data, _) = c.dataserver(*r).read_local(meta.id, 0, meta.size).unwrap();
                let expect = format!("data-{i}").into_bytes();
                prop_assert_eq!(&data, &expect);
            }

            // Rack spread: the 16-rack testbed minus ≤2 hosts always
            // has fresh racks, so each replacement must occupy a rack
            // no other replica of this file uses.
            for n in &new_hosts {
                prop_assert!(!original.replicas.contains(n));
                let others: Vec<_> = meta.replicas.iter().filter(|r| *r != n).collect();
                prop_assert!(
                    others.iter().all(|r| topo.rack_of(**r) != topo.rack_of(*n)),
                    "replacement {} shares a rack with {:?}", n, others
                );
            }
        }
    }
}

#[test]
fn repair_degrades_gracefully_when_racks_are_scarce() {
    let dir = TempDir::new("scarce");
    // One pod, two racks, four hosts: losing a replica can leave no
    // unused rack, yet the factor must still be restored.
    let c = cluster_in(
        &dir,
        &TreeParams {
            pods: 1,
            racks_per_pod: 2,
            hosts_per_rack: 2,
            ..TreeParams::paper_testbed()
        },
    );
    let meta = put(&c, "files/a", b"abc");
    let victim = meta.replicas[1];
    c.dataserver(victim).crash();
    let mut rng = SimRng::seed_from(3);
    let new_hosts = c.repair("files/a", &mut rng).unwrap();
    assert_eq!(new_hosts.len(), 1);
    let healed = c.nameserver().lookup("files/a").unwrap();
    assert_eq!(healed.replicas.len(), 3);
    assert!(!healed.replicas.contains(&victim));
    for r in &healed.replicas {
        assert!(c.dataserver(*r).has_file(healed.id));
    }
}

#[test]
fn concurrent_identical_repairs_copy_once() {
    let dir = TempDir::new("concurrent-same");
    let c = Arc::new(cluster_in(&dir, &TreeParams::paper_testbed()));
    let meta = put(&c, "files/a", b"payload");
    c.dataserver(meta.replicas[2]).crash();
    let dest = c
        .topology()
        .hosts()
        .into_iter()
        .find(|h| !meta.replicas.contains(h))
        .unwrap();
    let source = meta.replicas[0];

    let results: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                s.spawn(move || c.repair_to("files/a", source, dest).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Exactly one racer copied; the other saw a healthy file.
    let copied: Vec<_> = results.iter().filter(|b| **b > 0).collect();
    assert_eq!(copied, vec![&7u64], "results: {results:?}");

    let healed = c.nameserver().lookup("files/a").unwrap();
    let distinct: BTreeSet<_> = healed.replicas.iter().collect();
    assert_eq!(distinct.len(), 3, "no duplicate replicas: {healed:?}");
    assert!(healed.replicas.contains(&dest));
    for r in &healed.replicas {
        assert!(c.dataserver(*r).has_file(healed.id));
        let (data, _) = c.dataserver(*r).read_local(healed.id, 0, 7).unwrap();
        assert_eq!(data, b"payload");
    }
}

#[test]
fn concurrent_distinct_repairs_fill_distinct_slots() {
    let dir = TempDir::new("concurrent-two");
    let c = Arc::new(cluster_in(&dir, &TreeParams::paper_testbed()));
    let meta = put(&c, "files/a", b"ab");
    // Two replicas lost, two racing targeted repairs to two new hosts.
    c.dataserver(meta.replicas[1]).crash();
    c.dataserver(meta.replicas[2]).crash();
    let mut fresh = c
        .topology()
        .hosts()
        .into_iter()
        .filter(|h| !meta.replicas.contains(h));
    let dest_a = fresh.next().unwrap();
    let dest_b = fresh.next().unwrap();
    let source = meta.replicas[0];

    let results: Vec<u64> = std::thread::scope(|s| {
        let ha = {
            let c = Arc::clone(&c);
            s.spawn(move || c.repair_to("files/a", source, dest_a).unwrap())
        };
        let hb = {
            let c = Arc::clone(&c);
            s.spawn(move || c.repair_to("files/a", source, dest_b).unwrap())
        };
        vec![ha.join().unwrap(), hb.join().unwrap()]
    });
    assert_eq!(results, vec![2, 2], "each racer fills its own slot");

    let healed = c.nameserver().lookup("files/a").unwrap();
    let distinct: BTreeSet<_> = healed.replicas.iter().copied().collect();
    assert_eq!(distinct.len(), 3);
    assert!(distinct.contains(&dest_a) && distinct.contains(&dest_b));
    assert!(distinct.contains(&source));
    for r in &healed.replicas {
        assert!(c.dataserver(*r).has_file(healed.id));
    }
}
