//! Stress tests for the parallel data-plane pipeline (DESIGN.md §16):
//! split reads and append fan-out under replica kill/restart cycles,
//! coded reads racing a dying fragment host, and width-independence —
//! parallel and serial reads must return identical bytes.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use mayflower_fs::{
    Cluster, ClusterConfig, Consistency, NameserverConfig, Redundancy, SplitSelector,
};
use mayflower_net::{HostId, Topology, TreeParams};

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "mayflower-dpstress-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        TempDir(dir)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn cluster(dir: &TempDir, consistency: Consistency) -> Cluster {
    let topo = Arc::new(Topology::three_tier(&TreeParams {
        pods: 2,
        racks_per_pod: 2,
        hosts_per_rack: 2,
        ..TreeParams::paper_testbed()
    }));
    Cluster::create(
        &dir.0,
        topo,
        ClusterConfig {
            nameserver: NameserverConfig {
                chunk_size: 64,
                ..NameserverConfig::default()
            },
            consistency,
        },
    )
    .unwrap()
}

/// Deterministic payload bytes.
fn payload(len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(131).wrapping_add(7))
        .collect()
}

#[test]
fn parallel_split_read_fails_over_when_a_replica_dies_mid_fetch() {
    let dir = TempDir::new("read-kill");
    let c = cluster(&dir, Consistency::Sequential);
    let mut client = c.client_with_selector(HostId(0), Box::new(SplitSelector::new(3)));
    client.set_parallelism(4);
    let data = payload(64 * 5);
    client.create("victim").unwrap();
    client.append("victim", &data).unwrap();
    let meta = client.meta("victim").unwrap();
    let secondary = meta.replicas[1];

    // Stretch the fetch window so the kill lands while pieces are in
    // flight, then crash a replica from another thread mid-read. The
    // piece assigned to it must fail over inside the pool.
    c.set_simulated_rtt(Duration::from_millis(3));
    for round in 0..4 {
        let ds = c.dataserver(secondary).clone();
        let killer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(1));
            ds.crash();
        });
        let got = client.read("victim").unwrap();
        assert_eq!(got, data, "round {round}: bytes diverged after kill");
        killer.join().unwrap();
        c.dataserver(secondary).restart();
        let got = client.read("victim").unwrap();
        assert_eq!(got, data, "round {round}: bytes diverged after restart");
    }
}

#[test]
fn parallel_strong_read_survives_secondary_kill_cycles() {
    let dir = TempDir::new("strong-kill");
    let c = cluster(&dir, Consistency::Strong);
    let mut client = c.client_with_selector(HostId(0), Box::new(SplitSelector::new(3)));
    client.set_parallelism(8);
    let data = payload(64 * 4 + 17);
    client.create("strong").unwrap();
    client.append("strong", &data).unwrap();
    let meta = client.meta("strong").unwrap();

    // Kill and restart each secondary in turn while split reads are in
    // flight; the primary-pinned tail piece is untouched and the rest
    // fail over, so every read sees the full append.
    c.set_simulated_rtt(Duration::from_millis(2));
    for victim in meta.replicas[1..].to_vec() {
        let ds = c.dataserver(victim).clone();
        let killer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(1));
            ds.crash();
        });
        assert_eq!(client.read("strong").unwrap(), data);
        killer.join().unwrap();
        c.dataserver(victim).restart();
        assert_eq!(client.read("strong").unwrap(), data);
    }
}

#[test]
fn fan_out_append_rides_out_a_replica_blip() {
    let dir = TempDir::new("append-blip");
    let c = cluster(&dir, Consistency::Sequential);
    let mut client = c.client(HostId(0));
    client.set_parallelism(4);
    client.set_retry_policy(8, Duration::from_millis(2));
    client.create("blippy").unwrap();
    client.append("blippy", b"stable ").unwrap();
    let meta = client.meta("blippy").unwrap();
    let secondary = *meta.replicas.last().unwrap();

    // The replica is down when the relay first reaches it and comes
    // back inside the retry budget: the fan-out job for that replica
    // retries until the restart lands, and the append still acks all
    // replicas before returning.
    c.dataserver(secondary).crash();
    let ds = c.dataserver(secondary).clone();
    let reviver = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(15));
        ds.restart();
    });
    let new_size = client.append("blippy", b"and recovered").unwrap();
    reviver.join().unwrap();
    assert_eq!(new_size, "stable and recovered".len() as u64);
    // Ack-all durability: every replica holds every byte.
    for host in &meta.replicas {
        let (bytes, size) = c
            .dataserver(*host)
            .read_local(meta.id, 0, new_size)
            .unwrap();
        assert_eq!(size, new_size, "replica {host} lagging");
        assert_eq!(bytes, b"stable and recovered", "replica {host} diverged");
    }
}

#[test]
fn fan_out_append_fails_whole_when_a_replica_stays_down() {
    let dir = TempDir::new("append-down");
    let c = cluster(&dir, Consistency::Sequential);
    let mut client = c.client(HostId(0));
    client.set_parallelism(4);
    client.set_retry_policy(2, Duration::from_micros(200));
    client.create("halted").unwrap();
    client.append("halted", b"before").unwrap();
    let meta = client.meta("halted").unwrap();
    let secondary = *meta.replicas.last().unwrap();

    // All-or-fail: a replica that stays down past the retry budget
    // fails the append as a whole — the relay fan-out surfaces the
    // error after the ack barrier — and the recorded size never moves,
    // so no reader is ever pointed at bytes that missed a replica.
    c.dataserver(secondary).crash();
    assert!(client.append("halted", b" lost").is_err());
    assert_eq!(c.nameserver().lookup("halted").unwrap().size, 6);

    // The recorded range stays fully readable at every width after the
    // replica comes back; recovering the failed append itself is the
    // out-of-band re-election/repair path, not the relay's job.
    c.dataserver(secondary).restart();
    for width in [1, 4] {
        client.set_parallelism(width);
        assert_eq!(client.read_range("halted", 0, 6).unwrap(), b"before");
    }
}

#[test]
fn coded_read_survives_fragment_host_dying_after_selection() {
    let dir = TempDir::new("coded-kill");
    let c = cluster(&dir, Consistency::Sequential);
    let mut client = c.client(HostId(0));
    client.set_parallelism(4);
    client
        .create_with("coded", Redundancy::Coded { k: 4, m: 2 })
        .unwrap();
    let data = payload(64 * 3); // three sealed chunks
    client.append("coded", &data).unwrap();
    let meta = c.nameserver().lookup("coded").unwrap();
    assert_eq!(meta.sealed_chunks, 3);

    // Crash a *data* fragment host mid-read, after the selector has
    // already picked it as a preferred source: its fetch fails and the
    // round-based sweep promotes a parity fragment, so the read
    // decodes instead of erroring.
    c.set_simulated_rtt(Duration::from_millis(2));
    let victim = meta.fragments[1];
    let ds = c.dataserver(victim).clone();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(1));
        ds.crash();
    });
    let got = client.read("coded").unwrap();
    assert_eq!(got, data, "degraded coded read diverged");
    killer.join().unwrap();

    // Still down: every subsequent read promotes deterministically.
    assert_eq!(client.read("coded").unwrap(), data);
    c.dataserver(victim).restart();
    assert_eq!(client.read("coded").unwrap(), data);
}

#[test]
fn parallel_and_serial_reads_return_identical_bytes() {
    let dir = TempDir::new("determinism");
    let c = cluster(&dir, Consistency::Strong);
    let mut client = c.client_with_selector(HostId(0), Box::new(SplitSelector::new(3)));
    let data = payload(64 * 6 + 29);
    client.create("mirror").unwrap();
    client.append("mirror", &data).unwrap();
    client
        .create_with("mirror-coded", Redundancy::Coded { k: 4, m: 2 })
        .unwrap();
    client.append("mirror-coded", &data).unwrap();

    // Width 1 runs the identical code path inline; wider pools only
    // overlap the fetches. Bytes must match bit for bit at every
    // width, for replicated split reads and coded fragment reads.
    client.set_parallelism(1);
    let serial = client.read("mirror").unwrap();
    let serial_coded = client.read("mirror-coded").unwrap();
    assert_eq!(serial, data);
    assert_eq!(serial_coded, data);
    for width in [2, 4, 8] {
        client.set_parallelism(width);
        assert_eq!(client.read("mirror").unwrap(), serial, "width {width}");
        assert_eq!(
            client.read("mirror-coded").unwrap(),
            serial_coded,
            "width {width} coded"
        );
        let mid = client.read_range("mirror", 37, 200).unwrap();
        assert_eq!(mid, &data[37..237], "width {width} range");
    }
}
