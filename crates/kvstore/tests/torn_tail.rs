//! Crash-recovery sweep: the WAL is cut at **every** byte boundary —
//! in particular at every offset inside the final record — and replay
//! must recover exactly the operations whose frames survived intact:
//! no partial record applied, no committed prefix lost, no panic.
//!
//! This pins the recovery behavior the model checker's `wal-torn-tail`
//! mutant deliberately breaks (over-truncation that drops a *valid*
//! record): the real replay keeps every complete frame and discards
//! only the torn tail.

use std::collections::BTreeMap;
use std::path::PathBuf;

use mayflower_kvstore::{KvStore, Options};

enum Op {
    Put(&'static [u8], &'static [u8]),
    Delete(&'static [u8]),
}

fn ops() -> Vec<Op> {
    vec![
        Op::Put(b"alpha", b"one"),
        Op::Put(b"beta", b"two-longer-value"),
        Op::Delete(b"alpha"),
        Op::Put(b"gamma", b"three"),
        Op::Put(b"beta", b"overwritten"),
        Op::Put(b"delta", b"the final record, cut at every byte"),
    ]
}

fn apply(state: &mut BTreeMap<Vec<u8>, Vec<u8>>, op: &Op) {
    match op {
        Op::Put(k, v) => {
            state.insert(k.to_vec(), v.to_vec());
        }
        Op::Delete(k) => {
            state.remove(*k);
        }
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "mayflower-torn-tail-{tag}-{}-{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn replay_recovers_the_committed_prefix_at_every_cut_point() {
    // Write the ops once, recording the WAL length after each: those
    // are the frame boundaries.
    let master = scratch_dir("master");
    let wal_path = master.join("wal.log");
    let mut boundaries = Vec::new();
    {
        let mut db = KvStore::open(&master, Options::default()).expect("open master");
        for op in &ops() {
            match op {
                Op::Put(k, v) => db.put(k, v).expect("put"),
                Op::Delete(k) => db.delete(k).expect("delete"),
            }
            boundaries.push(std::fs::metadata(&wal_path).expect("wal exists").len());
        }
    }
    let full = std::fs::read(&wal_path).expect("read master wal");
    assert_eq!(
        *boundaries.last().expect("nonempty"),
        full.len() as u64,
        "boundaries cover the whole log"
    );

    for cut in 0..=full.len() as u64 {
        // A fresh directory whose WAL is the master's, truncated at
        // `cut` — the on-disk state after a crash mid-write.
        let dir = scratch_dir("cut");
        std::fs::write(dir.join("wal.log"), &full[..cut as usize]).expect("write cut wal");

        // Expected: exactly the ops whose frames completed by `cut`.
        let committed = boundaries.iter().filter(|&&b| b <= cut).count();
        let mut expected = BTreeMap::new();
        for op in ops().iter().take(committed) {
            apply(&mut expected, op);
        }

        let recovered = KvStore::open(&dir, Options::default()).expect("recovery must not fail");
        let got: BTreeMap<Vec<u8>, Vec<u8>> = recovered
            .scan_prefix(b"")
            .into_iter()
            .map(|(k, v)| (k, v.to_vec()))
            .collect();
        assert_eq!(
            got, expected,
            "cut at byte {cut}: recovered state must equal the {committed} committed ops"
        );
        drop(recovered);

        // Recovery truncated the torn tail, so a second open sees the
        // same state, and the log accepts new writes cleanly.
        let mut again = KvStore::open(&dir, Options::default()).expect("reopen after recovery");
        assert_eq!(
            again.len(),
            expected.len(),
            "cut at byte {cut}: reopen stable"
        );
        again
            .put(b"post-crash", b"ok")
            .expect("append after recovery");
        drop(again);
        let after = KvStore::open(&dir, Options::default()).expect("third open");
        assert_eq!(
            after.get(b"post-crash").as_deref(),
            Some(b"ok".as_slice()),
            "cut at byte {cut}: post-recovery write survives"
        );

        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&master).ok();
}
