//! The public store: WAL + memtable + segments + compaction.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use bytes::Bytes;

use crate::memtable::Memtable;
use crate::segment::Segment;
use crate::wal::{Wal, WalRecord};

/// Errors returned by the store.
#[derive(Debug)]
pub enum KvError {
    /// An underlying I/O failure.
    Io(std::io::Error),
    /// A file failed structural or checksum validation.
    Corrupt(String),
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::Io(e) => write!(f, "i/o error: {e}"),
            KvError::Corrupt(what) => write!(f, "corrupt store file: {what}"),
        }
    }
}

impl std::error::Error for KvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KvError::Io(e) => Some(e),
            KvError::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for KvError {
    fn from(e: std::io::Error) -> KvError {
        KvError::Io(e)
    }
}

/// Store tuning options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Whether every WAL append is fsynced. The paper runs LevelDB
    /// **with fsync off** "to speed up file creation and deletion";
    /// that is the default here too.
    pub fsync: bool,
    /// Memtable size (approximate bytes) that triggers a flush to a
    /// segment.
    pub memtable_flush_bytes: usize,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            fsync: false,
            memtable_flush_bytes: 4 << 20,
        }
    }
}

/// A persistent key-value store with an in-memory read path — the
/// nameserver's metadata backend (see crate docs for the design and
/// its correspondence to the paper's LevelDB configuration).
#[derive(Debug)]
pub struct KvStore {
    dir: PathBuf,
    options: Options,
    wal: Wal,
    memtable: Memtable,
    /// Older segments first; newer entries shadow older ones.
    segments: Vec<Segment>,
    next_segment_no: u64,
}

impl KvStore {
    /// Opens (creating if necessary) a store in `dir`, replaying
    /// segments and then the WAL.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or unrecoverable segment
    /// corruption.
    pub fn open(dir: &Path, options: Options) -> Result<KvStore, KvError> {
        std::fs::create_dir_all(dir)?;
        let mut seg_paths: Vec<PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "seg"))
            .collect();
        seg_paths.sort();
        let mut segments = Vec::with_capacity(seg_paths.len());
        let mut next_segment_no = 0u64;
        for p in seg_paths {
            if let Some(no) = p
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(|s| s.parse::<u64>().ok())
            {
                next_segment_no = next_segment_no.max(no + 1);
            }
            segments.push(Segment::open(&p)?);
        }
        let mut wal = Wal::open(&dir.join("wal.log"), options.fsync)?;
        let mut memtable = Memtable::new();
        for record in wal.replay()? {
            match record {
                WalRecord::Put { key, value } => memtable.put(&key, value),
                WalRecord::Delete { key } => memtable.delete(&key),
            }
        }
        Ok(KvStore {
            dir: dir.to_path_buf(),
            options,
            wal,
            memtable,
            segments,
            next_segment_no,
        })
    }

    /// Writes a key/value pair.
    ///
    /// # Errors
    ///
    /// Returns an error if the WAL append or a triggered flush fails.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), KvError> {
        let value = Bytes::copy_from_slice(value);
        self.wal.append(&WalRecord::Put {
            key: key.to_vec(),
            value: value.clone(),
        })?;
        self.memtable.put(key, value);
        self.maybe_flush()
    }

    /// Deletes a key (idempotent).
    ///
    /// # Errors
    ///
    /// Returns an error if the WAL append or a triggered flush fails.
    pub fn delete(&mut self, key: &[u8]) -> Result<(), KvError> {
        self.wal.append(&WalRecord::Delete { key: key.to_vec() })?;
        self.memtable.delete(key);
        self.maybe_flush()
    }

    /// Reads a key. Entirely in-memory — never touches disk.
    #[must_use]
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        if let Some(hit) = self.memtable.get(key) {
            return hit;
        }
        for seg in self.segments.iter().rev() {
            if let Some(hit) = seg.get(key) {
                return hit;
            }
        }
        None
    }

    /// All live `(key, value)` pairs whose key starts with `prefix`,
    /// in key order.
    #[must_use]
    pub fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, Bytes)> {
        let mut merged: BTreeMap<Vec<u8>, Option<Bytes>> = BTreeMap::new();
        for seg in &self.segments {
            for (k, v) in seg.iter() {
                if k.starts_with(prefix) {
                    merged.insert(k.to_vec(), v.cloned());
                }
            }
        }
        for (k, v) in self.memtable.iter() {
            if k.starts_with(prefix) {
                merged.insert(k.to_vec(), v.cloned());
            }
        }
        merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect()
    }

    /// Number of live keys (scans everything; intended for tests and
    /// admin tooling, not hot paths).
    #[must_use]
    pub fn len(&self) -> usize {
        self.scan_prefix(b"").len()
    }

    /// Whether the store holds no live keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flushes the memtable to a new segment and resets the WAL. The
    /// graceful-shutdown path: after this, reopening needs no WAL
    /// replay.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure.
    pub fn flush(&mut self) -> Result<(), KvError> {
        if self.memtable.is_empty() {
            return Ok(());
        }
        let entries = self.memtable.drain();
        let path = self.dir.join(format!("{:08}.seg", self.next_segment_no));
        self.next_segment_no += 1;
        self.segments.push(Segment::create(&path, entries)?);
        self.wal.reset()
    }

    /// Merges all segments (and the memtable) into a single segment,
    /// dropping tombstones and shadowed values.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure.
    pub fn compact(&mut self) -> Result<(), KvError> {
        let mut merged: BTreeMap<Vec<u8>, Option<Bytes>> = BTreeMap::new();
        for seg in &self.segments {
            for (k, v) in seg.iter() {
                merged.insert(k.to_vec(), v.cloned());
            }
        }
        for (k, v) in self.memtable.iter() {
            merged.insert(k.to_vec(), v.cloned());
        }
        // Drop tombstones: nothing older remains to shadow.
        merged.retain(|_, v| v.is_some());
        let old_paths: Vec<PathBuf> = self
            .segments
            .iter()
            .map(|s| s.path().to_path_buf())
            .collect();
        let path = self.dir.join(format!("{:08}.seg", self.next_segment_no));
        self.next_segment_no += 1;
        let seg = Segment::create(&path, merged)?;
        self.segments = vec![seg];
        self.memtable.drain();
        self.wal.reset()?;
        for p in old_paths {
            std::fs::remove_file(p)?;
        }
        Ok(())
    }

    /// Number of on-disk segments.
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    fn maybe_flush(&mut self) -> Result<(), KvError> {
        if self.memtable.approx_bytes() >= self.options.memtable_flush_bytes {
            self.flush()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir = std::env::temp_dir().join(format!(
                "mayflower-kv-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            std::fs::remove_dir_all(&dir).ok();
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
        fn path(&self) -> &Path {
            &self.0
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    #[test]
    fn put_get_delete() {
        let dir = TempDir::new("basic");
        let mut db = KvStore::open(dir.path(), Options::default()).unwrap();
        db.put(b"k", b"v").unwrap();
        assert_eq!(db.get(b"k"), Some(Bytes::from_static(b"v")));
        db.delete(b"k").unwrap();
        assert_eq!(db.get(b"k"), None);
        assert!(db.is_empty());
    }

    #[test]
    fn survives_graceful_restart() {
        let dir = TempDir::new("graceful");
        {
            let mut db = KvStore::open(dir.path(), Options::default()).unwrap();
            db.put(b"a", b"1").unwrap();
            db.put(b"b", b"2").unwrap();
            db.flush().unwrap();
        }
        let db = KvStore::open(dir.path(), Options::default()).unwrap();
        assert_eq!(db.get(b"a"), Some(Bytes::from_static(b"1")));
        assert_eq!(db.get(b"b"), Some(Bytes::from_static(b"2")));
        assert_eq!(db.segment_count(), 1);
    }

    #[test]
    fn survives_crash_via_wal() {
        let dir = TempDir::new("crash");
        {
            let mut db = KvStore::open(dir.path(), Options::default()).unwrap();
            db.put(b"a", b"1").unwrap();
            db.delete(b"a").unwrap();
            db.put(b"b", b"2").unwrap();
            // No flush: simulate a crash by dropping.
        }
        let db = KvStore::open(dir.path(), Options::default()).unwrap();
        assert_eq!(db.get(b"a"), None);
        assert_eq!(db.get(b"b"), Some(Bytes::from_static(b"2")));
    }

    #[test]
    fn tombstones_shadow_flushed_values() {
        let dir = TempDir::new("tombstone");
        let mut db = KvStore::open(dir.path(), Options::default()).unwrap();
        db.put(b"k", b"old").unwrap();
        db.flush().unwrap(); // "old" now in a segment
        db.delete(b"k").unwrap(); // tombstone in memtable
        assert_eq!(db.get(b"k"), None);
        db.flush().unwrap(); // tombstone now in a newer segment
        assert_eq!(db.get(b"k"), None);
        // And across a restart.
        drop(db);
        let db = KvStore::open(dir.path(), Options::default()).unwrap();
        assert_eq!(db.get(b"k"), None);
    }

    #[test]
    fn scan_prefix_merges_layers() {
        let dir = TempDir::new("scan");
        let mut db = KvStore::open(dir.path(), Options::default()).unwrap();
        db.put(b"file/1", b"a").unwrap();
        db.put(b"file/2", b"b").unwrap();
        db.flush().unwrap();
        db.put(b"file/3", b"c").unwrap();
        db.put(b"other/x", b"z").unwrap();
        db.delete(b"file/2").unwrap();
        let hits = db.scan_prefix(b"file/");
        let keys: Vec<&[u8]> = hits.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![b"file/1".as_slice(), b"file/3"]);
    }

    #[test]
    fn compaction_collapses_segments_and_tombstones() {
        let dir = TempDir::new("compact");
        let mut db = KvStore::open(dir.path(), Options::default()).unwrap();
        for i in 0..5u8 {
            db.put(&[i], b"v").unwrap();
            db.flush().unwrap();
        }
        db.delete(&[0]).unwrap();
        assert_eq!(db.segment_count(), 5);
        db.compact().unwrap();
        assert_eq!(db.segment_count(), 1);
        assert_eq!(db.get(&[0]), None);
        assert_eq!(db.len(), 4);
        // Compacted state survives restart.
        drop(db);
        let db = KvStore::open(dir.path(), Options::default()).unwrap();
        assert_eq!(db.len(), 4);
        assert_eq!(db.segment_count(), 1);
    }

    #[test]
    fn automatic_flush_on_threshold() {
        let dir = TempDir::new("autoflush");
        let mut db = KvStore::open(
            dir.path(),
            Options {
                memtable_flush_bytes: 64,
                ..Options::default()
            },
        )
        .unwrap();
        for i in 0..20u8 {
            db.put(&[b'k', i], &[0u8; 32]).unwrap();
        }
        assert!(db.segment_count() > 1, "threshold should force flushes");
        for i in 0..20u8 {
            assert!(db.get(&[b'k', i]).is_some());
        }
    }

    #[test]
    fn empty_value_is_not_deletion() {
        let dir = TempDir::new("emptyval");
        let mut db = KvStore::open(dir.path(), Options::default()).unwrap();
        db.put(b"k", b"").unwrap();
        assert_eq!(db.get(b"k"), Some(Bytes::new()));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn overwrite_across_layers() {
        let dir = TempDir::new("overwrite");
        let mut db = KvStore::open(dir.path(), Options::default()).unwrap();
        db.put(b"k", b"v1").unwrap();
        db.flush().unwrap();
        db.put(b"k", b"v2").unwrap();
        assert_eq!(db.get(b"k"), Some(Bytes::from_static(b"v2")));
        db.flush().unwrap();
        drop(db);
        let db = KvStore::open(dir.path(), Options::default()).unwrap();
        assert_eq!(db.get(b"k"), Some(Bytes::from_static(b"v2")));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Put(Vec<u8>, Vec<u8>),
        Delete(Vec<u8>),
        Flush,
        Compact,
        Reopen,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        let key = proptest::collection::vec(0u8..4, 1..3);
        let val = proptest::collection::vec(any::<u8>(), 0..16);
        prop_oneof![
            4 => (key.clone(), val).prop_map(|(k, v)| Op::Put(k, v)),
            2 => key.prop_map(Op::Delete),
            1 => Just(Op::Flush),
            1 => Just(Op::Compact),
            1 => Just(Op::Reopen),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// The store always agrees with an in-memory model map, across
        /// flushes, compactions and restarts.
        #[test]
        fn behaves_like_a_map(ops in proptest::collection::vec(op_strategy(), 1..60)) {
            let dir = std::env::temp_dir().join(format!(
                "mayflower-kv-prop-{}-{:?}-{}",
                std::process::id(),
                std::thread::current().id(),
                ops.len(),
            ));
            std::fs::remove_dir_all(&dir).ok();
            let mut db = KvStore::open(&dir, Options::default()).unwrap();
            let mut model: std::collections::BTreeMap<Vec<u8>, Vec<u8>> = Default::default();
            for op in ops {
                match op {
                    Op::Put(k, v) => {
                        db.put(&k, &v).unwrap();
                        model.insert(k, v);
                    }
                    Op::Delete(k) => {
                        db.delete(&k).unwrap();
                        model.remove(&k);
                    }
                    Op::Flush => db.flush().unwrap(),
                    Op::Compact => db.compact().unwrap(),
                    Op::Reopen => {
                        drop(db);
                        db = KvStore::open(&dir, Options::default()).unwrap();
                    }
                }
                // Check all keys in the small keyspace.
                for k in model.keys() {
                    prop_assert_eq!(
                        db.get(k).map(|b| b.to_vec()),
                        model.get(k).cloned()
                    );
                }
                prop_assert_eq!(db.len(), model.len());
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
