//! The in-memory sorted write buffer.

use std::collections::BTreeMap;

use bytes::Bytes;

/// A sorted in-memory table of the most recent writes.
///
/// `None` values are tombstones: they record a deletion that must
/// shadow any older value in flushed segments until compaction drops
/// the pair entirely.
#[derive(Debug, Clone, Default)]
pub struct Memtable {
    entries: BTreeMap<Vec<u8>, Option<Bytes>>,
    approx_bytes: usize,
}

impl Memtable {
    /// Creates an empty memtable.
    #[must_use]
    pub fn new() -> Memtable {
        Memtable::default()
    }

    /// Records a put.
    pub fn put(&mut self, key: &[u8], value: Bytes) {
        self.approx_bytes += key.len() + value.len() + 16;
        self.entries.insert(key.to_vec(), Some(value));
    }

    /// Records a deletion (tombstone).
    pub fn delete(&mut self, key: &[u8]) {
        self.approx_bytes += key.len() + 16;
        self.entries.insert(key.to_vec(), None);
    }

    /// Looks a key up. `Some(None)` means "deleted here" (do not fall
    /// through to older segments); `None` means "not present here".
    #[must_use]
    pub fn get(&self, key: &[u8]) -> Option<Option<Bytes>> {
        self.entries.get(key).cloned()
    }

    /// Number of live entries plus tombstones.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table holds nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Rough heap footprint, used to trigger flushes.
    #[must_use]
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// Iterates entries in key order (tombstones included).
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], Option<&Bytes>)> {
        self.entries.iter().map(|(k, v)| (k.as_slice(), v.as_ref()))
    }

    /// Drains the table, returning its sorted contents.
    pub fn drain(&mut self) -> BTreeMap<Vec<u8>, Option<Bytes>> {
        self.approx_bytes = 0;
        std::mem::take(&mut self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut m = Memtable::new();
        m.put(b"a", Bytes::from_static(b"1"));
        assert_eq!(m.get(b"a"), Some(Some(Bytes::from_static(b"1"))));
        assert_eq!(m.get(b"b"), None);
    }

    #[test]
    fn tombstone_shadows() {
        let mut m = Memtable::new();
        m.put(b"a", Bytes::from_static(b"1"));
        m.delete(b"a");
        assert_eq!(m.get(b"a"), Some(None));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn last_write_wins() {
        let mut m = Memtable::new();
        m.put(b"k", Bytes::from_static(b"old"));
        m.put(b"k", Bytes::from_static(b"new"));
        assert_eq!(m.get(b"k"), Some(Some(Bytes::from_static(b"new"))));
    }

    #[test]
    fn iteration_is_sorted() {
        let mut m = Memtable::new();
        for k in [b"c".as_slice(), b"a", b"b"] {
            m.put(k, Bytes::from_static(b"v"));
        }
        let keys: Vec<&[u8]> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![b"a".as_slice(), b"b", b"c"]);
    }

    #[test]
    fn size_tracking_grows_and_resets() {
        let mut m = Memtable::new();
        assert_eq!(m.approx_bytes(), 0);
        m.put(b"key", Bytes::from_static(b"value"));
        assert!(m.approx_bytes() > 0);
        let drained = m.drain();
        assert_eq!(drained.len(), 1);
        assert!(m.is_empty());
        assert_eq!(m.approx_bytes(), 0);
    }
}
