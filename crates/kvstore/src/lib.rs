#![warn(missing_docs)]

//! A persistent, log-structured key-value store — the reproduction's
//! stand-in for LevelDB (§3.3.1, §5 of the paper).
//!
//! The Mayflower nameserver stores its file→chunks and file→dataservers
//! mappings in LevelDB, "configured with fsync off in order to speed up
//! file creation and deletion", with enough memory that reads are
//! served entirely from RAM; the persistent form exists to speed up
//! restarts after a *graceful* shutdown (after a crash the nameserver
//! rebuilds from dataserver metadata instead). This crate reproduces
//! exactly that contract:
//!
//! * [`KvStore`] — `put`/`get`/`delete`/`scan_prefix` over binary keys.
//! * Writes go to a CRC-protected write-ahead log ([`wal`]) and an
//!   in-memory table ([`memtable`]); reads never touch disk.
//! * When the memtable grows past a threshold it is flushed to an
//!   immutable sorted [`segment`]; segments are merged by
//!   [`KvStore::compact`].
//! * Reopening replays segments then the WAL; torn tails (crash during
//!   a write with fsync off) are detected by checksum and truncated,
//!   recovering the longest valid prefix.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), mayflower_kvstore::KvError> {
//! let dir = std::env::temp_dir().join(format!("kv-doc-{}", std::process::id()));
//! let mut db = mayflower_kvstore::KvStore::open(&dir, Default::default())?;
//! db.put(b"file/42", b"metadata")?;
//! assert_eq!(db.get(b"file/42"), Some(b"metadata".to_vec().into()));
//! # drop(db); std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

pub mod crc;
pub mod db;
pub mod memtable;
pub mod segment;
pub mod wal;

pub use db::{KvError, KvStore, Options};
