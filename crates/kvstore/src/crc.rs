//! CRC-32 (IEEE 802.3) checksums for WAL and segment integrity.

/// The CRC-32 lookup table, generated at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    })
}

/// Computes the CRC-32 (IEEE) checksum of `data`.
///
/// # Example
///
/// ```
/// // The classic check value.
/// assert_eq!(mayflower_kvstore::crc::crc32(b"123456789"), 0xCBF4_3926);
/// ```
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"hello world".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at {i}:{bit} undetected");
            }
        }
    }
}
