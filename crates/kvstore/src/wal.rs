//! The write-ahead log.
//!
//! Record format (little-endian):
//!
//! ```text
//! [u32 crc][u32 len][len bytes payload]
//! payload = [u8 kind][u32 key_len][key][value]   kind: 0=put, 1=delete
//! ```
//!
//! The CRC covers the payload. With fsync off (the paper's LevelDB
//! configuration), a crash can tear the tail of the log; replay stops
//! at the first record whose length or checksum does not verify and
//! truncates there, recovering the longest valid prefix.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use bytes::Bytes;

use crate::crc::crc32;
use crate::db::KvError;

/// One logical WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A key/value write.
    Put {
        /// The key.
        key: Vec<u8>,
        /// The value.
        value: Bytes,
    },
    /// A deletion.
    Delete {
        /// The key.
        key: Vec<u8>,
    },
}

/// An append-only write-ahead log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    fsync: bool,
}

impl Wal {
    /// Opens (or creates) the log at `path` for appending.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be opened.
    pub fn open(path: &Path, fsync: bool) -> Result<Wal, KvError> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(path)?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            fsync,
        })
    }

    /// Appends a record.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), KvError> {
        let payload = encode_payload(record);
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        if self.fsync {
            self.file.sync_data()?;
        }
        Ok(())
    }

    /// Replays every valid record from the start of the log. If a torn
    /// or corrupt tail is found, it is truncated away and replay
    /// returns the valid prefix.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure (corruption is *not* an error —
    /// it is expected after a crash with fsync off).
    pub fn replay(&mut self) -> Result<Vec<WalRecord>, KvError> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut buf = Vec::new();
        self.file.read_to_end(&mut buf)?;
        let mut records = Vec::new();
        let mut pos = 0usize;
        let mut valid_end = 0usize;
        while pos + 8 <= buf.len() {
            let crc = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes"));
            let len =
                u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().expect("4 bytes")) as usize;
            let start = pos + 8;
            let end = start.checked_add(len);
            let Some(end) = end else { break };
            if end > buf.len() {
                break; // torn tail
            }
            let payload = &buf[start..end];
            if crc32(payload) != crc {
                break; // corrupt record
            }
            let Some(record) = decode_payload(payload) else {
                break;
            };
            records.push(record);
            pos = end;
            valid_end = end;
        }
        if valid_end < buf.len() {
            // Truncate the torn tail so future appends start clean.
            self.file.set_len(valid_end as u64)?;
            self.file.seek(SeekFrom::End(0))?;
        }
        Ok(records)
    }

    /// Truncates the log to empty (after a successful memtable flush).
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure.
    pub fn reset(&mut self) -> Result<(), KvError> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::End(0))?;
        if self.fsync {
            self.file.sync_data()?;
        }
        Ok(())
    }

    /// The log's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn encode_payload(record: &WalRecord) -> Vec<u8> {
    match record {
        WalRecord::Put { key, value } => {
            let mut p = Vec::with_capacity(5 + key.len() + value.len());
            p.push(0u8);
            p.extend_from_slice(&(key.len() as u32).to_le_bytes());
            p.extend_from_slice(key);
            p.extend_from_slice(value);
            p
        }
        WalRecord::Delete { key } => {
            let mut p = Vec::with_capacity(5 + key.len());
            p.push(1u8);
            p.extend_from_slice(&(key.len() as u32).to_le_bytes());
            p.extend_from_slice(key);
            p
        }
    }
}

fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    if payload.len() < 5 {
        return None;
    }
    let kind = payload[0];
    let key_len = u32::from_le_bytes(payload[1..5].try_into().ok()?) as usize;
    let key_end = 5usize.checked_add(key_len)?;
    if key_end > payload.len() {
        return None;
    }
    let key = payload[5..key_end].to_vec();
    match kind {
        0 => Some(WalRecord::Put {
            key,
            value: Bytes::copy_from_slice(&payload[key_end..]),
        }),
        1 if key_end == payload.len() => Some(WalRecord::Delete { key }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mayflower-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_replay_roundtrip() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal");
        let mut wal = Wal::open(&path, false).unwrap();
        let records = vec![
            WalRecord::Put {
                key: b"a".to_vec(),
                value: Bytes::from_static(b"1"),
            },
            WalRecord::Delete { key: b"a".to_vec() },
            WalRecord::Put {
                key: b"b".to_vec(),
                value: Bytes::from_static(b""),
            },
        ];
        for r in &records {
            wal.append(r).unwrap();
        }
        drop(wal);
        let mut wal = Wal::open(&path, false).unwrap();
        assert_eq!(wal.replay().unwrap(), records);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated() {
        let dir = tmpdir("torn");
        let path = dir.join("wal");
        let mut wal = Wal::open(&path, false).unwrap();
        wal.append(&WalRecord::Put {
            key: b"keep".to_vec(),
            value: Bytes::from_static(b"me"),
        })
        .unwrap();
        wal.append(&WalRecord::Put {
            key: b"lost".to_vec(),
            value: Bytes::from_static(b"tail"),
        })
        .unwrap();
        drop(wal);
        // Tear the last 3 bytes off, as a crash mid-write would.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let mut wal = Wal::open(&path, false).unwrap();
        let records = wal.replay().unwrap();
        assert_eq!(records.len(), 1);
        assert!(matches!(&records[0], WalRecord::Put { key, .. } if key == b"keep"));
        // Appends after recovery extend the valid prefix.
        wal.append(&WalRecord::Delete {
            key: b"keep".to_vec(),
        })
        .unwrap();
        drop(wal);
        let mut wal = Wal::open(&path, false).unwrap();
        assert_eq!(wal.replay().unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_record_stops_replay() {
        let dir = tmpdir("corrupt");
        let path = dir.join("wal");
        let mut wal = Wal::open(&path, false).unwrap();
        for i in 0..3u8 {
            wal.append(&WalRecord::Put {
                key: vec![i],
                value: Bytes::from_static(b"v"),
            })
            .unwrap();
        }
        drop(wal);
        // Flip a byte in the middle record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let record_len = 8 + 5 + 1 + 1; // frame + payload for 1-byte key, 1-byte value
        bytes[record_len + 10] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let mut wal = Wal::open(&path, false).unwrap();
        let records = wal.replay().unwrap();
        assert_eq!(records.len(), 1, "only the first record survives");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reset_empties_the_log() {
        let dir = tmpdir("reset");
        let path = dir.join("wal");
        let mut wal = Wal::open(&path, false).unwrap();
        wal.append(&WalRecord::Delete { key: b"x".to_vec() })
            .unwrap();
        wal.reset().unwrap();
        assert!(wal.replay().unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_mode_also_works() {
        let dir = tmpdir("fsync");
        let path = dir.join("wal");
        let mut wal = Wal::open(&path, true).unwrap();
        wal.append(&WalRecord::Put {
            key: b"k".to_vec(),
            value: Bytes::from_static(b"v"),
        })
        .unwrap();
        assert_eq!(wal.replay().unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
