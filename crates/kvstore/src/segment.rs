//! Immutable sorted segments (the store's SSTable analogue).
//!
//! Segment file format (little-endian):
//!
//! ```text
//! [u32 magic "MSEG"][u32 count]
//! count × ( [u8 kind][u32 key_len][key][u32 val_len][value] )
//! [u32 crc of everything above]
//! ```
//!
//! Entries are sorted by key. Tombstones (kind 1) persist deletions
//! across restarts until compaction drops them. Matching the paper's
//! "serves requests entirely from memory" configuration, segments are
//! fully loaded at open; the on-disk form exists for restart and
//! durability, not for cold reads.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

use bytes::Bytes;

use crate::crc::crc32;
use crate::db::KvError;

const MAGIC: u32 = 0x4D53_4547; // "MSEG"

/// An immutable sorted run of key/value (or tombstone) entries.
#[derive(Debug, Clone)]
pub struct Segment {
    path: PathBuf,
    entries: BTreeMap<Vec<u8>, Option<Bytes>>,
}

impl Segment {
    /// Writes `entries` (sorted by `BTreeMap` construction) to `path`
    /// and returns the in-memory segment.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure.
    pub fn create(
        path: &Path,
        entries: BTreeMap<Vec<u8>, Option<Bytes>>,
    ) -> Result<Segment, KvError> {
        let mut body = Vec::new();
        body.extend_from_slice(&MAGIC.to_le_bytes());
        body.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for (k, v) in &entries {
            match v {
                Some(value) => {
                    body.push(0u8);
                    body.extend_from_slice(&(k.len() as u32).to_le_bytes());
                    body.extend_from_slice(k);
                    body.extend_from_slice(&(value.len() as u32).to_le_bytes());
                    body.extend_from_slice(value);
                }
                None => {
                    body.push(1u8);
                    body.extend_from_slice(&(k.len() as u32).to_le_bytes());
                    body.extend_from_slice(k);
                    body.extend_from_slice(&0u32.to_le_bytes());
                }
            }
        }
        let crc = crc32(&body);
        let mut file = std::fs::File::create(path)?;
        file.write_all(&body)?;
        file.write_all(&crc.to_le_bytes())?;
        file.sync_data()?;
        Ok(Segment {
            path: path.to_path_buf(),
            entries,
        })
    }

    /// Loads a segment from disk, verifying its checksum.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::Corrupt`] if the file is malformed or fails
    /// its checksum, or an I/O error.
    pub fn open(path: &Path) -> Result<Segment, KvError> {
        let bytes = std::fs::read(path)?;
        if bytes.len() < 12 {
            return Err(KvError::Corrupt(format!("{}: too short", path.display())));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored_crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if crc32(body) != stored_crc {
            return Err(KvError::Corrupt(format!(
                "{}: checksum mismatch",
                path.display()
            )));
        }
        let magic = u32::from_le_bytes(body[0..4].try_into().expect("4 bytes"));
        if magic != MAGIC {
            return Err(KvError::Corrupt(format!("{}: bad magic", path.display())));
        }
        let count = u32::from_le_bytes(body[4..8].try_into().expect("4 bytes")) as usize;
        let mut entries = BTreeMap::new();
        let mut pos = 8usize;
        for _ in 0..count {
            let parse = || -> Option<(Vec<u8>, Option<Bytes>, usize)> {
                let kind = *body.get(pos)?;
                let key_len =
                    u32::from_le_bytes(body.get(pos + 1..pos + 5)?.try_into().ok()?) as usize;
                let key_end = pos + 5 + key_len;
                let key = body.get(pos + 5..key_end)?.to_vec();
                let val_len =
                    u32::from_le_bytes(body.get(key_end..key_end + 4)?.try_into().ok()?) as usize;
                let val_end = key_end + 4 + val_len;
                let value = body.get(key_end + 4..val_end)?;
                let entry = match kind {
                    0 => Some(Bytes::copy_from_slice(value)),
                    1 => None,
                    _ => return None,
                };
                Some((key, entry, val_end))
            };
            let Some((key, entry, next)) = parse() else {
                return Err(KvError::Corrupt(format!(
                    "{}: truncated entry",
                    path.display()
                )));
            };
            entries.insert(key, entry);
            pos = next;
        }
        Ok(Segment {
            path: path.to_path_buf(),
            entries,
        })
    }

    /// Looks a key up. `Some(None)` is a tombstone.
    #[must_use]
    pub fn get(&self, key: &[u8]) -> Option<Option<Bytes>> {
        self.entries.get(key).cloned()
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], Option<&Bytes>)> {
        self.entries.iter().map(|(k, v)| (k.as_slice(), v.as_ref()))
    }

    /// Number of entries (tombstones included).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the segment holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The on-disk path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mayflower-seg-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> BTreeMap<Vec<u8>, Option<Bytes>> {
        let mut m = BTreeMap::new();
        m.insert(b"alpha".to_vec(), Some(Bytes::from_static(b"1")));
        m.insert(b"beta".to_vec(), None); // tombstone
        m.insert(b"gamma".to_vec(), Some(Bytes::from_static(b"")));
        m
    }

    #[test]
    fn create_open_roundtrip() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("0001.seg");
        let seg = Segment::create(&path, sample()).unwrap();
        assert_eq!(seg.len(), 3);
        let reopened = Segment::open(&path).unwrap();
        assert_eq!(reopened.get(b"alpha"), Some(Some(Bytes::from_static(b"1"))));
        assert_eq!(reopened.get(b"beta"), Some(None));
        assert_eq!(reopened.get(b"gamma"), Some(Some(Bytes::from_static(b""))));
        assert_eq!(reopened.get(b"delta"), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_detected() {
        let dir = tmpdir("corrupt");
        let path = dir.join("0001.seg");
        Segment::create(&path, sample()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(Segment::open(&path), Err(KvError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_segment_roundtrip() {
        let dir = tmpdir("empty");
        let path = dir.join("0001.seg");
        Segment::create(&path, BTreeMap::new()).unwrap();
        let seg = Segment::open(&path).unwrap();
        assert!(seg.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn iteration_is_sorted() {
        let dir = tmpdir("sorted");
        let path = dir.join("0001.seg");
        let seg = Segment::create(&path, sample()).unwrap();
        let keys: Vec<&[u8]> = seg.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![b"alpha".as_slice(), b"beta", b"gamma"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_file_rejected() {
        let dir = tmpdir("trunc");
        let path = dir.join("0001.seg");
        Segment::create(&path, sample()).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 6]).unwrap();
        assert!(Segment::open(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
