//! Causal tracing: per-operation span trees across the client,
//! datapath, dataserver, flowserver, shard-router, and recovery
//! layers (DESIGN.md §17).
//!
//! A [`Tracer`] allocates trace/span ids and timestamps span events
//! from either a wall clock (live clusters) or a manually driven
//! simulation clock (byte-deterministic sim traces). Components hold a
//! [`TraceHandle`] — their name plus a bounded lock-free
//! [`FlightRecorder`] ring — and open [`ActiveSpan`]s that record a
//! [`SpanEvent`] on drop. Causality propagates two ways:
//!
//! * **in-process** through a thread-local ambient context
//!   ([`current_context`] / [`ActiveSpan::enter`]), which also carries
//!   across the datapath worker pool because piece spans are created
//!   on the caller's thread (in planning order, so ids are stable) and
//!   entered by whichever worker runs the job;
//! * **cross-process** through the rpc envelope: the client stamps
//!   [`ActiveSpan::ctx`] into the request, the server re-enters it
//!   with [`with_context`].
//!
//! The record path is cheap by construction: a disabled tracer costs
//! one relaxed atomic load per would-be span, and an enabled one costs
//! a ring push (one `fetch_add` plus one pointer swap) per finished
//! span — full event collection only happens inside an explicit
//! [`Tracer::begin_capture`] window. `mayflower-bench`'s `trace_smoke`
//! guards both costs.
//!
//! The analyzer ([`TraceTree`]) rebuilds the span forest from events,
//! checks well-formedness, extracts the **critical path** (from each
//! root, repeatedly descend into the child that finishes last), and
//! exports byte-deterministic JSON plus Chrome `traceEvents` JSON
//! loadable in `about:tracing` / Perfetto.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Identifies one end-to-end operation; every span of the operation
/// shares it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

/// Identifies one span within a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

/// A finished span: one timed step of an operation, with its causal
/// parent and structured annotations.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Operation this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub span: SpanId,
    /// Causal parent, `None` for the operation root.
    pub parent: Option<SpanId>,
    /// Component that emitted the span (`"client"`, `"flowserver"`, ...).
    pub component: &'static str,
    /// What the span timed (`"read"`, `"piece"`, `"attempt"`, ...).
    pub name: String,
    /// Start, in microseconds of the tracer's clock.
    pub start_us: u64,
    /// End, in microseconds of the tracer's clock.
    pub end_us: u64,
    /// `false` when the spanned step failed.
    pub ok: bool,
    /// Key/value annotations in insertion order.
    pub annotations: Vec<(String, String)>,
}

impl SpanEvent {
    /// Span duration in microseconds.
    #[must_use]
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// First annotation value for `key`, if any.
    #[must_use]
    pub fn annotation(&self, key: &str) -> Option<&str> {
        self.annotations
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A bounded lock-free ring of the most recent [`SpanEvent`]s of one
/// component — the flight recorder dumped on failure or on demand.
/// Push is a `fetch_add` on the head plus an `AtomicPtr` swap on the
/// slot; older events in a contended slot are freed by the pusher.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<AtomicPtr<SpanEvent>>,
    head: AtomicUsize,
    dropped: AtomicU64,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            slots: (0..capacity.max(1))
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
            head: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Event capacity of the ring.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events evicted before ever being dumped.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    fn push(&self, event: SpanEvent) {
        let slot = self.head.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        let fresh = Box::into_raw(Box::new(event));
        let old = self.slots[slot].swap(fresh, Ordering::AcqRel);
        if !old.is_null() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            // SAFETY: `old` came from `Box::into_raw` in `push` and the
            // swap transferred exclusive ownership back to us.
            drop(unsafe { Box::from_raw(old) });
        }
    }

    /// Drains the ring, returning the retained events ordered by
    /// `(trace, start, span)`.
    pub fn dump(&self) -> Vec<SpanEvent> {
        let mut out = Vec::new();
        for slot in &self.slots {
            let ptr = slot.swap(std::ptr::null_mut(), Ordering::AcqRel);
            if !ptr.is_null() {
                // SAFETY: the swap took exclusive ownership of a
                // pointer produced by `Box::into_raw`.
                out.push(*unsafe { Box::from_raw(ptr) });
            }
        }
        sort_events(&mut out);
        out
    }
}

impl Drop for FlightRecorder {
    fn drop(&mut self) {
        for slot in &self.slots {
            let ptr = slot.swap(std::ptr::null_mut(), Ordering::AcqRel);
            if !ptr.is_null() {
                // SAFETY: exclusive ownership as in `dump`.
                drop(unsafe { Box::from_raw(ptr) });
            }
        }
    }
}

/// Orders events deterministically for export and dumps.
fn sort_events(events: &mut [SpanEvent]) {
    events.sort_by_key(|e| (e.trace, e.start_us, e.span));
}

#[derive(Debug)]
enum TraceClock {
    Wall(Instant),
    Manual(AtomicU64),
}

/// Events each component's flight recorder retains by default.
pub const DEFAULT_RING_CAPACITY: usize = 256;

/// The tracing root: id allocation, the clock, per-component flight
/// recorders, and the optional capture sink. Disabled by default —
/// a disabled tracer never allocates a span.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    clock: TraceClock,
    next_trace: AtomicU64,
    next_span: AtomicU64,
    capturing: AtomicBool,
    sink: Mutex<Vec<SpanEvent>>,
    rings: Mutex<BTreeMap<&'static str, Arc<FlightRecorder>>>,
    ring_capacity: usize,
}

impl Tracer {
    /// A wall-clock tracer for live clusters; timestamps are
    /// microseconds since creation.
    #[must_use]
    pub fn new_wall() -> Arc<Tracer> {
        Tracer::with_clock(TraceClock::Wall(Instant::now()))
    }

    /// A manually clocked tracer for simulations: timestamps come from
    /// [`Tracer::set_time_us`], so fixed-seed runs trace
    /// byte-identically.
    #[must_use]
    pub fn new_manual() -> Arc<Tracer> {
        Tracer::with_clock(TraceClock::Manual(AtomicU64::new(0)))
    }

    fn with_clock(clock: TraceClock) -> Arc<Tracer> {
        Arc::new(Tracer {
            enabled: AtomicBool::new(false),
            clock,
            next_trace: AtomicU64::new(1),
            next_span: AtomicU64::new(1),
            capturing: AtomicBool::new(false),
            sink: Mutex::new(Vec::new()),
            rings: Mutex::new(BTreeMap::new()),
            ring_capacity: DEFAULT_RING_CAPACITY,
        })
    }

    /// Turns span recording on or off.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether spans are currently recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Advances the manual clock (no-op on a wall-clock tracer).
    pub fn set_time_us(&self, us: u64) {
        if let TraceClock::Manual(t) = &self.clock {
            t.store(us, Ordering::Relaxed);
        }
    }

    /// Current clock reading in microseconds.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        match &self.clock {
            TraceClock::Wall(origin) => {
                u64::try_from(origin.elapsed().as_micros()).unwrap_or(u64::MAX)
            }
            TraceClock::Manual(t) => t.load(Ordering::Relaxed),
        }
    }

    /// A handle for `component`, creating its flight recorder on first
    /// use (all handles of one component share the ring).
    #[must_use]
    pub fn handle(self: &Arc<Tracer>, component: &'static str) -> TraceHandle {
        let ring = self
            .rings
            .lock()
            .expect("tracer ring registry poisoned")
            .entry(component)
            .or_insert_with(|| Arc::new(FlightRecorder::new(self.ring_capacity)))
            .clone();
        TraceHandle {
            tracer: self.clone(),
            ring,
            component,
        }
    }

    /// Starts collecting every finished span (in addition to the
    /// flight-recorder rings) until [`Tracer::take_capture`].
    pub fn begin_capture(&self) {
        self.sink.lock().expect("trace sink poisoned").clear();
        self.capturing.store(true, Ordering::Release);
    }

    /// Stops capture and returns the collected events ordered by
    /// `(trace, start, span)`.
    pub fn take_capture(&self) -> Vec<SpanEvent> {
        self.capturing.store(false, Ordering::Release);
        let mut events = std::mem::take(&mut *self.sink.lock().expect("trace sink poisoned"));
        sort_events(&mut events);
        events
    }

    /// Drains every component's flight recorder into one ordered dump.
    pub fn dump_flight_recorders(&self) -> Vec<SpanEvent> {
        let rings: Vec<Arc<FlightRecorder>> = self
            .rings
            .lock()
            .expect("tracer ring registry poisoned")
            .values()
            .cloned()
            .collect();
        let mut out = Vec::new();
        for ring in rings {
            out.extend(ring.dump());
        }
        sort_events(&mut out);
        out
    }

    fn next_trace_id(&self) -> TraceId {
        TraceId(self.next_trace.fetch_add(1, Ordering::Relaxed))
    }

    fn next_span_id(&self) -> SpanId {
        SpanId(self.next_span.fetch_add(1, Ordering::Relaxed))
    }

    fn finish(&self, ring: &FlightRecorder, event: SpanEvent) {
        if self.capturing.load(Ordering::Acquire) {
            self.sink
                .lock()
                .expect("trace sink poisoned")
                .push(event.clone());
        }
        ring.push(event);
    }
}

thread_local! {
    static CURRENT: Cell<Option<(u64, u64)>> = const { Cell::new(None) };
}

/// The ambient `(trace, span)` context of the calling thread — what a
/// client stamps into an rpc envelope.
#[must_use]
pub fn current_context() -> Option<(u64, u64)> {
    CURRENT.with(Cell::get)
}

/// Runs `f` with the ambient context set to `ctx` (the server side of
/// envelope propagation), restoring the previous context after.
pub fn with_context<T>(ctx: Option<(u64, u64)>, f: impl FnOnce() -> T) -> T {
    let prev = CURRENT.with(|c| c.replace(ctx));
    let out = f();
    CURRENT.with(|c| c.set(prev));
    out
}

/// Restores the previous ambient context on drop (see
/// [`ActiveSpan::enter`]).
#[derive(Debug)]
pub struct EnterGuard {
    prev: Option<(u64, u64)>,
}

impl Drop for EnterGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// One component's entry point into a [`Tracer`]: its name plus its
/// flight-recorder ring. Cheap to clone; clones share the ring.
#[derive(Clone, Debug)]
pub struct TraceHandle {
    tracer: Arc<Tracer>,
    ring: Arc<FlightRecorder>,
    component: &'static str,
}

impl TraceHandle {
    /// Whether the underlying tracer records spans right now.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.tracer.is_enabled()
    }

    /// The underlying tracer.
    #[must_use]
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// This component's flight recorder.
    #[must_use]
    pub fn ring(&self) -> &Arc<FlightRecorder> {
        &self.ring
    }

    /// Opens a new root span (a fresh trace), or `None` when tracing
    /// is disabled.
    #[must_use]
    pub fn root(&self, name: &str) -> Option<ActiveSpan> {
        if !self.enabled() {
            return None;
        }
        let trace = self.tracer.next_trace_id();
        Some(self.open(trace, None, name))
    }

    /// Opens a child of the calling thread's ambient span; `None` when
    /// tracing is disabled or no ambient span exists (spans never
    /// float unparented).
    #[must_use]
    pub fn child(&self, name: &str) -> Option<ActiveSpan> {
        if !self.enabled() {
            return None;
        }
        let (trace, parent) = current_context()?;
        Some(self.open(TraceId(trace), Some(SpanId(parent)), name))
    }

    /// Opens a child of the ambient span when one exists, else a new
    /// root — the right shape for operation entry points that may
    /// themselves be nested (e.g. a client op invoked under a traced
    /// rpc serve).
    #[must_use]
    pub fn span(&self, name: &str) -> Option<ActiveSpan> {
        if !self.enabled() {
            return None;
        }
        match current_context() {
            Some((trace, parent)) => Some(self.open(TraceId(trace), Some(SpanId(parent)), name)),
            None => self.root(name),
        }
    }

    /// Opens a child of an explicit `(trace, span)` context — the
    /// receiving side of envelope propagation.
    #[must_use]
    pub fn child_of(&self, ctx: (u64, u64), name: &str) -> Option<ActiveSpan> {
        if !self.enabled() {
            return None;
        }
        Some(self.open(TraceId(ctx.0), Some(SpanId(ctx.1)), name))
    }

    fn open(&self, trace: TraceId, parent: Option<SpanId>, name: &str) -> ActiveSpan {
        ActiveSpan {
            tracer: self.tracer.clone(),
            ring: self.ring.clone(),
            component: self.component,
            trace,
            span: self.tracer.next_span_id(),
            parent,
            name: name.to_string(),
            start_us: self.tracer.now_us(),
            ok: true,
            annotations: Vec::new(),
        }
    }
}

/// An open span; records a [`SpanEvent`] when dropped.
#[derive(Debug)]
pub struct ActiveSpan {
    tracer: Arc<Tracer>,
    ring: Arc<FlightRecorder>,
    component: &'static str,
    trace: TraceId,
    span: SpanId,
    parent: Option<SpanId>,
    name: String,
    start_us: u64,
    ok: bool,
    annotations: Vec<(String, String)>,
}

impl ActiveSpan {
    /// This span's `(trace, span)` context, for envelope propagation
    /// or explicit [`TraceHandle::child_of`] parenting.
    #[must_use]
    pub fn ctx(&self) -> (u64, u64) {
        (self.trace.0, self.span.0)
    }

    /// Makes this span the calling thread's ambient parent until the
    /// guard drops.
    #[must_use]
    pub fn enter(&self) -> EnterGuard {
        let prev = CURRENT.with(|c| c.replace(Some(self.ctx())));
        EnterGuard { prev }
    }

    /// Attaches a key/value annotation.
    pub fn annotate(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.annotations.push((key.into(), value.into()));
    }

    /// Marks the spanned step as failed.
    pub fn set_error(&mut self) {
        self.ok = false;
    }
}

impl Drop for ActiveSpan {
    fn drop(&mut self) {
        let event = SpanEvent {
            trace: self.trace,
            span: self.span,
            parent: self.parent,
            component: self.component,
            name: std::mem::take(&mut self.name),
            start_us: self.start_us,
            end_us: self.tracer.now_us(),
            ok: self.ok,
            annotations: std::mem::take(&mut self.annotations),
        };
        self.tracer.finish(&self.ring, event);
    }
}

/// Annotates the span if one is open — the pervasive call-site idiom
/// for `Option<ActiveSpan>`.
pub fn annotate(span: &mut Option<ActiveSpan>, key: &str, value: impl Into<String>) {
    if let Some(s) = span.as_mut() {
        s.annotate(key, value);
    }
}

/// Marks the span failed if one is open.
pub fn mark_error(span: &mut Option<ActiveSpan>) {
    if let Some(s) = span.as_mut() {
        s.set_error();
    }
}

// ---------------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------------

/// A reconstructed span forest: events indexed by id with parent/child
/// links, ready for well-formedness checks, critical-path extraction,
/// and export.
#[derive(Debug)]
pub struct TraceTree {
    events: Vec<SpanEvent>,
    children: BTreeMap<u64, Vec<usize>>,
    roots: Vec<usize>,
}

/// One hop of a critical path: a span plus its exclusive (self) time —
/// the part of its duration not covered by the next hop down.
#[derive(Clone, Debug)]
pub struct CriticalHop {
    /// Index into [`TraceTree::events`].
    pub index: usize,
    /// Exclusive time in microseconds.
    pub self_us: u64,
}

impl TraceTree {
    /// Builds the forest from finished events (sorted deterministically
    /// on the way in).
    #[must_use]
    pub fn build(mut events: Vec<SpanEvent>) -> TraceTree {
        sort_events(&mut events);
        let mut children: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        let mut roots = Vec::new();
        for (i, e) in events.iter().enumerate() {
            match e.parent {
                Some(p) => children.entry(p.0).or_default().push(i),
                None => roots.push(i),
            }
        }
        TraceTree {
            events,
            children,
            roots,
        }
    }

    /// The events, ordered by `(trace, start, span)`.
    #[must_use]
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    /// Root spans (one per trace in a well-formed forest).
    #[must_use]
    pub fn roots(&self) -> &[usize] {
        self.roots.as_slice()
    }

    /// Direct children of span `id`, in deterministic order.
    #[must_use]
    pub fn children_of(&self, id: SpanId) -> &[usize] {
        self.children.get(&id.0).map_or(&[], Vec::as_slice)
    }

    /// Checks well-formedness: every trace has exactly one root, every
    /// parent id resolves to a span of the same trace, and child
    /// intervals nest within their parent's interval.
    pub fn validate(&self) -> Result<(), String> {
        let mut by_span: BTreeMap<u64, &SpanEvent> = BTreeMap::new();
        for e in &self.events {
            if by_span.insert(e.span.0, e).is_some() {
                return Err(format!("duplicate span id {}", e.span.0));
            }
        }
        let mut roots_per_trace: BTreeMap<u64, usize> = BTreeMap::new();
        for e in &self.events {
            if e.end_us < e.start_us {
                return Err(format!("span {} ends before it starts", e.span.0));
            }
            match e.parent {
                None => *roots_per_trace.entry(e.trace.0).or_insert(0) += 1,
                Some(p) => {
                    let Some(parent) = by_span.get(&p.0) else {
                        return Err(format!("span {} has orphan parent {}", e.span.0, p.0));
                    };
                    if parent.trace != e.trace {
                        return Err(format!(
                            "span {} crosses traces ({} -> {})",
                            e.span.0, e.trace.0, parent.trace.0
                        ));
                    }
                    if e.start_us < parent.start_us || e.end_us > parent.end_us {
                        return Err(format!(
                            "span {} [{}, {}] escapes parent {} [{}, {}]",
                            e.span.0, e.start_us, e.end_us, p.0, parent.start_us, parent.end_us
                        ));
                    }
                }
            }
        }
        for e in &self.events {
            match roots_per_trace.get(&e.trace.0) {
                Some(1) => {}
                Some(n) => return Err(format!("trace {} has {n} roots", e.trace.0)),
                None => return Err(format!("trace {} has no root", e.trace.0)),
            }
        }
        Ok(())
    }

    /// The critical path of `trace`: starting at its root, repeatedly
    /// descend into the child that finishes last (ties broken by later
    /// start, then larger span id — deterministic). Each hop carries
    /// its exclusive time: its duration minus the next hop's.
    #[must_use]
    pub fn critical_path(&self, trace: TraceId) -> Vec<CriticalHop> {
        let Some(&root) = self.roots.iter().find(|&&i| self.events[i].trace == trace) else {
            return Vec::new();
        };
        let mut path = vec![root];
        let mut at = root;
        loop {
            let next = self
                .children_of(self.events[at].span)
                .iter()
                .copied()
                .max_by_key(|&i| {
                    let e = &self.events[i];
                    (e.end_us, e.start_us, e.span.0)
                });
            match next {
                Some(i) => {
                    path.push(i);
                    at = i;
                }
                None => break,
            }
        }
        path.iter()
            .enumerate()
            .map(|(depth, &index)| {
                let own = self.events[index].duration_us();
                let child = path
                    .get(depth + 1)
                    .map_or(0, |&c| self.events[c].duration_us());
                CriticalHop {
                    index,
                    self_us: own.saturating_sub(child),
                }
            })
            .collect()
    }

    /// Renders a critical path as indented text, one hop per line.
    #[must_use]
    pub fn render_critical_path(&self, trace: TraceId) -> String {
        let mut out = String::new();
        for (depth, hop) in self.critical_path(trace).iter().enumerate() {
            let e = &self.events[hop.index];
            let mut line = format!(
                "{}{}/{} {}us (self {}us){}",
                "  ".repeat(depth),
                e.component,
                e.name,
                e.duration_us(),
                hop.self_us,
                if e.ok { "" } else { " [error]" },
            );
            for (k, v) in &e.annotations {
                line.push_str(&format!(" {k}={v}"));
            }
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Byte-deterministic JSON export: spans sorted by
    /// `(trace, start, span)`, annotations in insertion order.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"spans\": [");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"trace\": {}, ", e.trace.0));
            out.push_str(&format!("\"span\": {}, ", e.span.0));
            match e.parent {
                Some(p) => out.push_str(&format!("\"parent\": {}, ", p.0)),
                None => out.push_str("\"parent\": null, "),
            }
            out.push_str(&format!("\"component\": \"{}\", ", escape(e.component)));
            out.push_str(&format!("\"name\": \"{}\", ", escape(&e.name)));
            out.push_str(&format!("\"start_us\": {}, ", e.start_us));
            out.push_str(&format!("\"end_us\": {}, ", e.end_us));
            out.push_str(&format!("\"ok\": {}, ", e.ok));
            out.push_str("\"annotations\": {");
            for (j, (k, v)) in e.annotations.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": \"{}\"", escape(k), escape(v)));
            }
            out.push_str("}}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Chrome trace-event export (`about:tracing` / Perfetto): one
    /// complete (`"ph": "X"`) event per span, `pid` = trace id, `tid`
    /// = stable per-component index.
    #[must_use]
    pub fn render_chrome(&self) -> String {
        let mut tids: BTreeMap<&'static str, usize> = BTreeMap::new();
        for e in &self.events {
            let next = tids.len() + 1;
            tids.entry(e.component).or_insert(next);
        }
        let mut out = String::from("{\"traceEvents\": [");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {}, \
                 \"dur\": {}, \"pid\": {}, \"tid\": {}, \"args\": {{",
                escape(&e.name),
                escape(e.component),
                e.start_us,
                e.duration_us(),
                e.trace.0,
                tids[e.component],
            ));
            out.push_str(&format!("\"span\": \"{}\", ", e.span.0));
            out.push_str(&format!("\"ok\": \"{}\"", e.ok));
            for (k, v) in &e.annotations {
                out.push_str(&format!(", \"{}\": \"{}\"", escape(k), escape(v)));
            }
            out.push_str("}}");
        }
        out.push_str("\n]}\n");
        out
    }
}

/// JSON string escaping (mirrors the registry's renderer).
fn escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_opens_no_spans() {
        let tracer = Tracer::new_wall();
        let handle = tracer.handle("test");
        assert!(handle.root("op").is_none());
        assert!(handle.child("op").is_none());
        tracer.set_enabled(true);
        assert!(handle.root("op").is_some());
        assert!(
            handle.child("op").is_none(),
            "no ambient context, no orphan child"
        );
    }

    #[test]
    fn spans_nest_through_ambient_context_and_capture() {
        let tracer = Tracer::new_manual();
        tracer.set_enabled(true);
        tracer.begin_capture();
        let handle = tracer.handle("test");
        tracer.set_time_us(10);
        let root = handle.root("op").unwrap();
        let root_ctx = root.ctx();
        {
            let _g = root.enter();
            tracer.set_time_us(20);
            let mut child = handle.child("step").unwrap();
            child.annotate("k", "v");
            assert_eq!(current_context().unwrap().0, root_ctx.0);
            tracer.set_time_us(30);
            drop(child);
        }
        assert!(current_context().is_none(), "guard restored");
        tracer.set_time_us(40);
        drop(root);
        let events = tracer.take_capture();
        assert_eq!(events.len(), 2);
        let tree = TraceTree::build(events);
        tree.validate().expect("well-formed");
        let root_ev = &tree.events()[0];
        assert_eq!((root_ev.name.as_str(), root_ev.parent), ("op", None));
        assert_eq!((root_ev.start_us, root_ev.end_us), (10, 40));
        let child_ev = &tree.events()[1];
        assert_eq!(child_ev.parent, Some(root_ev.span));
        assert_eq!(child_ev.annotation("k"), Some("v"));
    }

    #[test]
    fn cross_thread_parenting_via_explicit_enter() {
        let tracer = Tracer::new_wall();
        tracer.set_enabled(true);
        tracer.begin_capture();
        let handle = tracer.handle("test");
        let root = handle.root("op").unwrap();
        let pieces: Vec<ActiveSpan> = {
            let _g = root.enter();
            (0..2)
                .map(|i| handle.child(&format!("piece{i}")).unwrap())
                .collect()
        };
        std::thread::scope(|s| {
            for piece in pieces {
                let h = handle.clone();
                s.spawn(move || {
                    let _g = piece.enter();
                    let attempt = h.child("attempt").unwrap();
                    drop(attempt);
                    drop(piece);
                });
            }
        });
        drop(root);
        let tree = TraceTree::build(tracer.take_capture());
        tree.validate().expect("well-formed across threads");
        assert_eq!(tree.events().len(), 5);
        assert_eq!(tree.roots().len(), 1);
    }

    #[test]
    fn flight_recorder_bounds_and_dumps() {
        let ring = FlightRecorder::new(4);
        let tracer = Tracer::new_manual();
        tracer.set_enabled(true);
        let handle = tracer.handle("ringed");
        for i in 0..10 {
            tracer.set_time_us(i);
            drop(handle.root(&format!("op{i}")));
        }
        let dump = handle.ring().dump();
        assert_eq!(dump.len(), DEFAULT_RING_CAPACITY.min(10));
        assert!(handle.ring().dump().is_empty(), "dump drains");
        drop(ring);
    }

    #[test]
    fn flight_recorder_evicts_oldest() {
        let ring = FlightRecorder::new(3);
        for i in 0..5u64 {
            ring.push(SpanEvent {
                trace: TraceId(1),
                span: SpanId(i),
                parent: None,
                component: "t",
                name: "op".into(),
                start_us: i,
                end_us: i,
                ok: true,
                annotations: Vec::new(),
            });
        }
        assert_eq!(ring.dropped(), 2);
        let kept: Vec<u64> = ring.dump().iter().map(|e| e.span.0).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    fn demo_events() -> Vec<SpanEvent> {
        let mk = |span: u64, parent: Option<u64>, name: &str, s: u64, e: u64| SpanEvent {
            trace: TraceId(1),
            span: SpanId(span),
            parent: parent.map(SpanId),
            component: "c",
            name: name.into(),
            start_us: s,
            end_us: e,
            ok: true,
            annotations: vec![("host".into(), format!("h{span}"))],
        };
        vec![
            mk(1, None, "read", 0, 100),
            mk(2, Some(1), "piece0", 0, 40),
            mk(3, Some(1), "piece1", 5, 90),
            mk(4, Some(3), "attempt", 5, 80),
        ]
    }

    #[test]
    fn critical_path_follows_latest_finisher() {
        let tree = TraceTree::build(demo_events());
        tree.validate().unwrap();
        let path = tree.critical_path(TraceId(1));
        let names: Vec<&str> = path
            .iter()
            .map(|h| tree.events()[h.index].name.as_str())
            .collect();
        assert_eq!(names, vec!["read", "piece1", "attempt"]);
        assert_eq!(path[0].self_us, 100 - 85, "root exclusive of piece1");
        assert_eq!(path[2].self_us, 75, "leaf keeps full duration");
        let text = tree.render_critical_path(TraceId(1));
        assert!(
            text.contains("c/piece1") && text.contains("host=h3"),
            "{text}"
        );
    }

    #[test]
    fn validate_rejects_malformed_trees() {
        let mut orphan = demo_events();
        orphan[3].parent = Some(SpanId(99));
        assert!(TraceTree::build(orphan).validate().is_err());

        let mut escaped = demo_events();
        escaped[1].end_us = 500;
        assert!(TraceTree::build(escaped).validate().is_err());

        let mut two_roots = demo_events();
        two_roots[1].parent = None;
        assert!(TraceTree::build(two_roots).validate().is_err());
    }

    #[test]
    fn exports_are_deterministic_and_escaped() {
        let mut shuffled = demo_events();
        shuffled.reverse();
        let a = TraceTree::build(demo_events());
        let b = TraceTree::build(shuffled);
        assert_eq!(a.render_json(), b.render_json());
        assert_eq!(a.render_chrome(), b.render_chrome());
        assert!(a.render_json().contains("\"name\": \"piece1\""));
        assert!(a.render_chrome().contains("\"ph\": \"X\""));
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn with_context_sets_and_restores() {
        assert!(current_context().is_none());
        let seen = with_context(Some((7, 9)), current_context);
        assert_eq!(seen, Some((7, 9)));
        assert!(current_context().is_none());
    }
}
