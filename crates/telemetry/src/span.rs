//! Scoped wall-clock span timers.

use std::sync::Arc;
use std::time::Instant;

use crate::metrics::Histogram;

/// A scoped timer: started against a histogram, it records the
/// elapsed wall-clock time in microseconds when dropped — so every
/// exit path of a function (including `?` early returns) is measured.
///
/// Spans are for the *live* layers (RPC, filesystem). Simulation code
/// records sim-time values directly via [`Histogram::record_secs`] so
/// snapshots stay byte-deterministic.
///
/// ```
/// use mayflower_telemetry::{Histogram, Span};
/// use std::sync::Arc;
///
/// let latency = Arc::new(Histogram::new());
/// {
///     let _span = Span::start(latency.clone());
///     // ... work ...
/// } // records here
/// assert_eq!(latency.count(), 1);
/// ```
#[derive(Debug)]
pub struct Span {
    hist: Arc<Histogram>,
    start: Instant,
    armed: bool,
}

impl Span {
    /// Starts timing against `hist`.
    #[must_use]
    pub fn start(hist: Arc<Histogram>) -> Span {
        Span {
            hist,
            start: Instant::now(),
            armed: true,
        }
    }

    /// Elapsed time so far.
    #[must_use]
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }

    /// Discards the span without recording (e.g. when the measured
    /// operation turned out not to apply).
    pub fn cancel(mut self) {
        self.armed = false;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.armed {
            self.hist.record_duration(self.start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let h = Arc::new(Histogram::new());
        {
            let _s = Span::start(h.clone());
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn cancelled_span_records_nothing() {
        let h = Arc::new(Histogram::new());
        let s = Span::start(h.clone());
        s.cancel();
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn span_survives_early_return() {
        fn faillible(h: &Arc<Histogram>) -> Result<(), ()> {
            let _s = Span::start(h.clone());
            Err(())
        }
        let h = Arc::new(Histogram::new());
        let _ = faillible(&h);
        assert_eq!(h.count(), 1, "error path still measured");
    }
}
