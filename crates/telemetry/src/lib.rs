#![warn(missing_docs)]

//! Zero-dependency observability layer for the Mayflower reproduction.
//!
//! Mayflower's Flowserver is itself a monitoring component — it polls
//! switch counters and models per-flow bandwidth (§4, Pseudocode 2) —
//! yet the reproduction had no first-class way to observe its *own*
//! behavior. This crate provides that layer for every runtime crate:
//!
//! * [`Counter`] / [`Gauge`] — lock-free atomic scalars.
//! * [`Histogram`] — log2-bucketed distribution with deterministic
//!   p50/p95/p99 extraction; records latencies, sizes, or costs.
//! * [`Span`] — a scoped wall-clock timer that records into a
//!   histogram on drop.
//! * [`Registry`] / [`Scope`] — hierarchical metric registration and
//!   byte-deterministic snapshot rendering as Prometheus text format
//!   and JSON.
//!
//! The crate is **std-only** (no external dependencies) so the offline
//! vendored build stays intact, and every data structure is lock-free
//! on the record path: counters and histogram buckets are plain
//! relaxed atomics, so instrumentation can sit on hot paths (the
//! `mayflower-bench` crate guards the increment and record costs).
//!
//! # Determinism
//!
//! Snapshots render metrics in sorted `(name, labels)` order with
//! fixed integer formatting. A registry fed only deterministic values
//! (e.g. simulation time) therefore renders **byte-identical**
//! snapshots across runs — the property `tests/determinism.rs`
//! asserts for fixed-seed simulations. Wall-clock spans are reserved
//! for the live filesystem/RPC layers, which are never part of a
//! simulation snapshot.
//!
//! # Example
//!
//! ```
//! use mayflower_telemetry::Registry;
//!
//! let registry = Registry::new();
//! let rpc = registry.scope("rpc");
//! let calls = rpc.counter_with("calls_total", &[("method", "lookup")]);
//! let latency = rpc.histogram("call_latency_us");
//! calls.inc();
//! latency.record(420);
//! let snap = registry.snapshot();
//! assert!(snap.render_prometheus().contains("rpc_calls_total{method=\"lookup\"} 1"));
//! ```

pub mod metrics;
pub mod registry;
pub mod span;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{MetricId, Registry, Scope, Snapshot, SnapshotEntry, SnapshotValue};
pub use span::Span;
pub use trace::{
    ActiveSpan, CriticalHop, FlightRecorder, SpanEvent, SpanId, TraceHandle, TraceId, TraceTree,
    Tracer,
};

/// Converts a non-negative duration in seconds to whole microseconds,
/// saturating — the canonical unit for every `*_us` metric.
#[must_use]
pub fn secs_to_us(secs: f64) -> u64 {
    if secs <= 0.0 {
        0
    } else {
        let us = secs * 1e6;
        if us >= u64::MAX as f64 {
            u64::MAX
        } else {
            us.round() as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secs_to_us_rounds_and_saturates() {
        assert_eq!(secs_to_us(0.0), 0);
        assert_eq!(secs_to_us(-1.0), 0);
        assert_eq!(secs_to_us(1.0), 1_000_000);
        assert_eq!(secs_to_us(0.000_001_4), 1);
        assert_eq!(secs_to_us(0.000_001_6), 2);
        assert_eq!(secs_to_us(f64::MAX), u64::MAX);
    }
}
