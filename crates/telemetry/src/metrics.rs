//! Lock-free metric primitives: counters, gauges, and log2-bucket
//! histograms.
//!
//! Every record-path operation is a single relaxed atomic RMW, so
//! instrumentation is safe on hot paths. Reads (snapshots) are also
//! relaxed: metrics are monotonic or last-write-wins, and the snapshot
//! layer only needs a consistent-enough view for reporting.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Number of histogram buckets: bucket `i` holds values whose bit
/// length is `i`, i.e. `v == 0` lands in bucket 0 and `v` in
/// `[2^(i-1), 2^i)` lands in bucket `i`. Bucket 64 holds `v >= 2^63`.
pub const BUCKETS: usize = 65;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    #[must_use]
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins signed gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh gauge at zero.
    #[must_use]
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A lock-free histogram over `u64` values with logarithmic (power of
/// two) buckets — the shape used for latency and size distributions,
/// where relative error is what matters.
///
/// Recording is one relaxed `fetch_add` on the bucket plus count/sum
/// bookkeeping; percentile extraction happens only at snapshot time
/// and reports the **upper bound** of the bucket containing the
/// requested quantile (a deterministic, conservative estimate with at
/// most 2x relative error).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket a value lands in: its bit length.
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The largest value bucket `i` can hold.
#[must_use]
pub(crate) fn bucket_upper(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a wall-clock duration in whole microseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Records a non-negative quantity of seconds as microseconds —
    /// the bridge for simulation-time and model-cost values.
    pub fn record_secs(&self, secs: f64) {
        self.record(crate::secs_to_us(secs));
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// An immutable copy of the current state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count(),
            sum: self.sum(),
        }
    }

    /// Percentile shortcut over a fresh snapshot.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        self.snapshot().percentile(p)
    }
}

/// A point-in-time copy of a [`Histogram`], with percentile
/// extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`BUCKETS`]).
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// The value below which `p` percent of observations fall,
    /// reported as the containing bucket's upper bound. Returns 0 for
    /// an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.count == 0 {
            return 0;
        }
        // Rank of the target observation, 1-based, at least 1.
        let target = ((p / 100.0 * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return bucket_upper(i);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// Exact arithmetic mean of the recorded values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Iterator over `(upper_bound, cumulative_count)` for non-empty
    /// prefixes — the Prometheus `le` series.
    pub(crate) fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cumulative = 0u64;
        for (i, c) in self.buckets.iter().enumerate() {
            if *c > 0 {
                cumulative += c;
                out.push((bucket_upper(i), cumulative));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_sets_adds_and_goes_negative() {
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(20);
        assert_eq!(g.get(), -5);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn histogram_records_and_extracts_percentiles() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        let snap = h.snapshot();
        // p50 of 1..=100 is 50, inside bucket [32,64) → upper 63.
        assert_eq!(snap.percentile(50.0), 63);
        // p99 is 99, inside bucket [64,128) → upper 127.
        assert_eq!(snap.percentile(99.0), 127);
        assert!((snap.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.percentile(95.0), 0);
        assert_eq!(h.snapshot().mean(), 0.0);
    }

    #[test]
    fn percentile_is_monotone_in_p() {
        let h = Histogram::new();
        for v in [1u64, 10, 100, 1000, 10_000, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        let mut last = 0;
        for p in [0.0, 25.0, 50.0, 75.0, 95.0, 99.0, 100.0] {
            let v = s.percentile(p);
            assert!(v >= last, "p{p} regressed");
            last = v;
        }
    }

    #[test]
    fn record_duration_and_secs_agree_on_units() {
        let h = Histogram::new();
        h.record_duration(std::time::Duration::from_millis(3));
        h.record_secs(0.003);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 6000);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        use std::sync::Arc;
        let c = Arc::new(Counter::new());
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        c.inc();
                        h.record(i & 1023);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
        assert_eq!(h.count(), 80_000);
    }
}
