//! Hierarchical metric registry and deterministic snapshot rendering.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

/// A metric's identity: its fully-qualified name plus sorted label
/// pairs. Ordering is lexicographic on `(name, labels)`, which is what
/// makes snapshot rendering deterministic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricId {
    /// Fully-qualified metric name (`layer_noun_unit`).
    pub name: String,
    /// Sorted `(key, value)` label pairs.
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    fn new(name: &str, labels: &[(&str, &str)]) -> MetricId {
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "invalid metric name {name:?}: use [a-zA-Z0-9_:]"
        );
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        labels.sort();
        MetricId {
            name: name.to_string(),
            labels,
        }
    }

    /// Renders the id in Prometheus exposition syntax:
    /// `name{key="value",...}` (bare name without labels).
    #[must_use]
    pub fn render(&self) -> String {
        self.render_with_extra_label(None)
    }

    fn render_with_extra_label(&self, extra: Option<(&str, &str)>) -> String {
        if self.labels.is_empty() && extra.is_none() {
            return self.name.clone();
        }
        let mut out = format!("{}{{", self.name);
        let mut first = true;
        for (k, v) in &self.labels {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "{k}=\"{}\"", escape_label(v));
        }
        if let Some((k, v)) = extra {
            if !first {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{}\"", escape_label(v));
        }
        out.push('}');
        out
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_json(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A shared, hierarchical metric registry.
///
/// Cloning is cheap (the state is behind one `Arc`); components hold
/// [`Scope`]s carved out of one cluster- or run-wide registry so all
/// layers land in a single taxonomy. Registration is idempotent:
/// asking for the same `(name, labels)` returns the same underlying
/// metric.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    metrics: Arc<Mutex<BTreeMap<MetricId, Metric>>>,
}

impl Registry {
    /// A fresh, empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// A sub-registry whose metric names are prefixed `prefix_`.
    #[must_use]
    pub fn scope(&self, prefix: &str) -> Scope {
        Scope {
            registry: self.clone(),
            prefix: prefix.to_string(),
        }
    }

    /// Registers (or fetches) a counter.
    ///
    /// # Panics
    ///
    /// Panics if the name is invalid or already registered as a
    /// different metric type.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Registers (or fetches) a labeled counter.
    #[must_use]
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let m = self.entry(MetricId::new(name, labels), || {
            Metric::Counter(Arc::new(Counter::new()))
        });
        match m {
            Metric::Counter(c) => c,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// Registers (or fetches) a gauge.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Registers (or fetches) a labeled gauge.
    #[must_use]
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let m = self.entry(MetricId::new(name, labels), || {
            Metric::Gauge(Arc::new(Gauge::new()))
        });
        match m {
            Metric::Gauge(g) => g,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// Registers (or fetches) a histogram.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// Registers (or fetches) a labeled histogram.
    #[must_use]
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let m = self.entry(MetricId::new(name, labels), || {
            Metric::Histogram(Arc::new(Histogram::new()))
        });
        match m {
            Metric::Histogram(h) => h,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    fn entry(&self, id: MetricId, make: impl FnOnce() -> Metric) -> Metric {
        let mut metrics = self.metrics.lock().expect("registry lock poisoned");
        metrics.entry(id).or_insert_with(make).clone()
    }

    /// Number of registered metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metrics.lock().expect("registry lock poisoned").len()
    }

    /// Whether nothing is registered yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time copy of every metric, in deterministic order.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().expect("registry lock poisoned");
        Snapshot {
            entries: metrics
                .iter()
                .map(|(id, m)| SnapshotEntry {
                    id: id.clone(),
                    value: match m {
                        Metric::Counter(c) => SnapshotValue::Counter(c.get()),
                        Metric::Gauge(g) => SnapshotValue::Gauge(g.get()),
                        Metric::Histogram(h) => SnapshotValue::Histogram(Box::new(h.snapshot())),
                    },
                })
                .collect(),
        }
    }
}

/// A name-prefixing view of a [`Registry`]; see [`Registry::scope`].
#[derive(Debug, Clone)]
pub struct Scope {
    registry: Registry,
    prefix: String,
}

impl Scope {
    /// A nested scope: `registry.scope("fs").scope("client")` prefixes
    /// `fs_client_`.
    #[must_use]
    pub fn scope(&self, prefix: &str) -> Scope {
        Scope {
            registry: self.registry.clone(),
            prefix: format!("{}_{prefix}", self.prefix),
        }
    }

    /// The underlying registry.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    fn qualify(&self, name: &str) -> String {
        format!("{}_{name}", self.prefix)
    }

    /// Registers (or fetches) a counter under the scope's prefix.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.registry.counter(&self.qualify(name))
    }

    /// Registers (or fetches) a labeled counter under the prefix.
    #[must_use]
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.registry.counter_with(&self.qualify(name), labels)
    }

    /// Registers (or fetches) a gauge under the prefix.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.registry.gauge(&self.qualify(name))
    }

    /// Registers (or fetches) a labeled gauge under the prefix.
    #[must_use]
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.registry.gauge_with(&self.qualify(name), labels)
    }

    /// Registers (or fetches) a histogram under the prefix.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.registry.histogram(&self.qualify(name))
    }

    /// Registers (or fetches) a labeled histogram under the prefix.
    #[must_use]
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.registry.histogram_with(&self.qualify(name), labels)
    }
}

/// One metric's value inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Full histogram state (boxed: a bucket array dwarfs the scalar
    /// variants).
    Histogram(Box<HistogramSnapshot>),
}

/// One `(id, value)` pair inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// The metric's identity.
    pub id: MetricId,
    /// The metric's value at snapshot time.
    pub value: SnapshotValue,
}

/// A point-in-time copy of a whole registry, in sorted order.
///
/// Renders as Prometheus text exposition format or JSON; both renders
/// are pure functions of the snapshot contents, so registries fed
/// deterministic values render byte-identical output across runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// All metrics, sorted by `(name, labels)`.
    pub entries: Vec<SnapshotEntry>,
}

impl Snapshot {
    /// Looks up a metric by rendered id (e.g. `name` or
    /// `name{k="v"}`).
    #[must_use]
    pub fn get(&self, rendered_id: &str) -> Option<&SnapshotValue> {
        self.entries
            .iter()
            .find(|e| e.id.render() == rendered_id)
            .map(|e| &e.value)
    }

    /// Counter value by rendered id, `None` if absent or not a
    /// counter.
    #[must_use]
    pub fn counter(&self, rendered_id: &str) -> Option<u64> {
        match self.get(rendered_id)? {
            SnapshotValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value by rendered id.
    #[must_use]
    pub fn gauge(&self, rendered_id: &str) -> Option<i64> {
        match self.get(rendered_id)? {
            SnapshotValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Histogram state by rendered id.
    #[must_use]
    pub fn histogram(&self, rendered_id: &str) -> Option<&HistogramSnapshot> {
        match self.get(rendered_id)? {
            SnapshotValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Renders the snapshot in Prometheus text exposition format.
    /// Histograms render cumulative `_bucket{le=...}` series (only
    /// non-empty buckets, plus `+Inf`), `_sum`, and `_count`.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for e in &self.entries {
            let kind = match &e.value {
                SnapshotValue::Counter(_) => "counter",
                SnapshotValue::Gauge(_) => "gauge",
                SnapshotValue::Histogram(_) => "histogram",
            };
            if last_name != Some(e.id.name.as_str()) {
                let _ = writeln!(out, "# TYPE {} {kind}", e.id.name);
                last_name = Some(e.id.name.as_str());
            }
            match &e.value {
                SnapshotValue::Counter(v) => {
                    let _ = writeln!(out, "{} {v}", e.id.render());
                }
                SnapshotValue::Gauge(v) => {
                    let _ = writeln!(out, "{} {v}", e.id.render());
                }
                SnapshotValue::Histogram(h) => {
                    let bucket_id = MetricId {
                        name: format!("{}_bucket", e.id.name),
                        labels: e.id.labels.clone(),
                    };
                    for (le, cumulative) in h.cumulative_buckets() {
                        let le = le.to_string();
                        let _ = writeln!(
                            out,
                            "{} {cumulative}",
                            bucket_id.render_with_extra_label(Some(("le", &le)))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{} {}",
                        bucket_id.render_with_extra_label(Some(("le", "+Inf"))),
                        h.count
                    );
                    let sum_id = MetricId {
                        name: format!("{}_sum", e.id.name),
                        labels: e.id.labels.clone(),
                    };
                    let _ = writeln!(out, "{} {}", sum_id.render(), h.sum);
                    let count_id = MetricId {
                        name: format!("{}_count", e.id.name),
                        labels: e.id.labels.clone(),
                    };
                    let _ = writeln!(out, "{} {}", count_id.render(), h.count);
                }
            }
        }
        out
    }

    /// Renders the snapshot as a JSON object with `counters`,
    /// `gauges`, and `histograms` maps keyed by rendered metric id.
    /// Histogram values carry count, sum, p50/p95/p99, and the
    /// non-empty `[upper_bound, count]` bucket pairs.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for e in &self.entries {
            let key = escape_json(&e.id.render());
            match &e.value {
                SnapshotValue::Counter(v) => counters.push(format!("\"{key}\":{v}")),
                SnapshotValue::Gauge(v) => gauges.push(format!("\"{key}\":{v}")),
                SnapshotValue::Histogram(h) => {
                    let buckets: Vec<String> = h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| **c > 0)
                        .map(|(i, c)| format!("[{},{c}]", crate::metrics::bucket_upper(i)))
                        .collect();
                    histograms.push(format!(
                        "\"{key}\":{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[{}]}}",
                        h.count,
                        h.sum,
                        h.percentile(50.0),
                        h.percentile(95.0),
                        h.percentile(99.0),
                        buckets.join(",")
                    ));
                }
            }
        }
        format!(
            "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
            counters.join(","),
            gauges.join(","),
            histograms.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let r = Registry::new();
        let a = r.counter("requests_total");
        let b = r.counter("requests_total");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn labels_distinguish_metrics() {
        let r = Registry::new();
        let read = r.counter_with("ops_total", &[("op", "read")]);
        let write = r.counter_with("ops_total", &[("op", "write")]);
        read.inc();
        assert_eq!(read.get(), 1);
        assert_eq!(write.get(), 0);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn label_order_is_normalized() {
        let r = Registry::new();
        let a = r.counter_with("x_total", &[("b", "2"), ("a", "1")]);
        let b = r.counter_with("x_total", &[("a", "1"), ("b", "2")]);
        a.inc();
        assert_eq!(b.get(), 1, "same metric regardless of label order");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_conflict_panics() {
        let r = Registry::new();
        let _ = r.counter("thing");
        let _ = r.gauge("thing");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_name_panics() {
        let _ = Registry::new().counter("bad name!");
    }

    #[test]
    fn scopes_prefix_and_nest() {
        let r = Registry::new();
        let fs = r.scope("fs");
        let client = fs.scope("client");
        client.counter("reads_total").inc();
        let snap = r.snapshot();
        assert_eq!(snap.counter("fs_client_reads_total"), Some(1));
    }

    #[test]
    fn snapshot_orders_deterministically() {
        let r = Registry::new();
        r.counter("z_total").add(1);
        r.counter("a_total").add(2);
        r.gauge("m_gauge").set(-7);
        let s1 = r.snapshot();
        let s2 = r.snapshot();
        assert_eq!(s1, s2);
        assert_eq!(s1.entries[0].id.name, "a_total");
        assert_eq!(s1.entries[2].id.name, "z_total");
        assert_eq!(s1.render_prometheus(), s2.render_prometheus());
        assert_eq!(s1.render_json(), s2.render_json());
    }

    #[test]
    fn prometheus_render_shape() {
        let r = Registry::new();
        r.counter_with("rpc_calls_total", &[("method", "lookup")])
            .add(3);
        r.gauge("flows").set(12);
        let h = r.histogram("lat_us");
        h.record(0);
        h.record(5);
        h.record(5);
        let text = r.snapshot().render_prometheus();
        assert!(text.contains("# TYPE rpc_calls_total counter"));
        assert!(text.contains("rpc_calls_total{method=\"lookup\"} 3"));
        assert!(text.contains("# TYPE flows gauge"));
        assert!(text.contains("flows 12"));
        assert!(text.contains("# TYPE lat_us histogram"));
        assert!(text.contains("lat_us_bucket{le=\"0\"} 1"));
        // 5 has bit length 3 → bucket upper 7; cumulative 3.
        assert!(text.contains("lat_us_bucket{le=\"7\"} 3"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_us_sum 10"));
        assert!(text.contains("lat_us_count 3"));
    }

    #[test]
    fn json_render_is_valid_shape() {
        let r = Registry::new();
        r.counter_with("c_total", &[("k", "v\"q")]).add(1);
        let h = r.histogram("h_us");
        h.record(100);
        let json = r.snapshot().render_json();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"c_total{k=\\\"v\\\\\\\"q\\\"}\":1"));
        assert!(json.contains("\"count\":1"));
        assert!(json.contains("\"p95\":127"));
        assert!(json.ends_with("}"));
    }

    #[test]
    fn snapshot_lookup_helpers() {
        let r = Registry::new();
        r.counter("c_total").add(4);
        r.gauge("g").set(-1);
        r.histogram("h_us").record(9);
        let s = r.snapshot();
        assert_eq!(s.counter("c_total"), Some(4));
        assert_eq!(s.gauge("g"), Some(-1));
        assert_eq!(s.histogram("h_us").unwrap().count, 1);
        assert_eq!(s.counter("missing"), None);
        assert_eq!(s.counter("g"), None, "type-checked lookup");
    }
}
