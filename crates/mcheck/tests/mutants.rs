//! Checker validation gate: every deliberately broken protocol variant
//! must be caught within the CI exploration budget, the real protocols
//! must survive the *identical* budget, and a caught counterexample
//! must reproduce byte-for-byte when its minimized schedule is
//! replayed. This is the suite `ci.sh` runs as the mcheck smoke gate.

use mayflower_mcheck::{
    Budget, DataScenario, Explorer, FreezeScenario, Mutant, NsMetaScenario, Scenario,
    ShardHandoffScenario, StrategyKind,
};

/// One smoke-gate case: a scenario family, the budget the mutant must
/// be caught within, and the budget the real variant must survive.
struct Case {
    real: Box<dyn Scenario>,
    mutated: Box<dyn Scenario>,
    kind: StrategyKind,
    seed: u64,
    budget: Budget,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            real: Box::new(NsMetaScenario::new(1)),
            mutated: Box::new(NsMetaScenario::new(1).with_mutant(Mutant::WalTornTail)),
            kind: StrategyKind::RandomWalk,
            seed: 1,
            budget: Budget::schedules(40),
        },
        Case {
            real: Box::new(DataScenario::new(true)),
            mutated: Box::new(DataScenario::new(true).with_mutant(Mutant::StaleLastChunkRead)),
            kind: StrategyKind::RandomWalk,
            seed: 1,
            budget: Budget::schedules(80),
        },
        Case {
            real: Box::new(DataScenario::new(true)),
            mutated: Box::new(DataScenario::new(true).with_mutant(Mutant::UnlockedAppend)),
            kind: StrategyKind::RandomWalk,
            seed: 1,
            budget: Budget::schedules(80),
        },
        Case {
            real: Box::new(FreezeScenario::new()),
            mutated: Box::new(FreezeScenario::new().with_mutant(Mutant::FreezeExpiryBeforePoll)),
            kind: StrategyKind::Exhaustive,
            seed: 0,
            budget: Budget::schedules(64),
        },
        Case {
            real: Box::new(ShardHandoffScenario::new()),
            mutated: Box::new(
                ShardHandoffScenario::new().with_mutant(Mutant::ServeStaleAfterHandoff),
            ),
            kind: StrategyKind::RandomWalk,
            seed: 1,
            budget: Budget::schedules(80),
        },
    ]
}

#[test]
fn every_mutant_is_caught_within_the_ci_budget() {
    for case in cases() {
        let explorer = Explorer::new();
        let report = explorer.check(&*case.mutated, case.kind, case.seed, case.budget);
        let cx = report.counterexample.unwrap_or_else(|| {
            panic!(
                "mutant not caught: {} under {} (budget {})",
                case.mutated.name(),
                case.kind,
                case.budget.max_schedules
            )
        });
        assert!(
            !cx.violation.is_empty() && !cx.trace.is_empty(),
            "counterexample must carry a violation and a trace"
        );
        assert!(
            explorer.violations_seen() > 0,
            "telemetry must count the violation"
        );
    }
}

#[test]
fn the_real_protocols_survive_the_identical_budget() {
    for case in cases() {
        let explorer = Explorer::new();
        let report = explorer.check(&*case.real, case.kind, case.seed, case.budget);
        if let Some(cx) = report.counterexample {
            panic!("false positive on the real protocol:\n{}", cx.render());
        }
        assert!(
            explorer.schedules_explored() as usize >= report.explored,
            "telemetry counts every schedule"
        );
    }
}

#[test]
fn counterexamples_reproduce_byte_for_byte() {
    for case in cases() {
        let explorer = Explorer::new();
        let report = explorer.check(&*case.mutated, case.kind, case.seed, case.budget);
        let cx = report
            .counterexample
            .unwrap_or_else(|| panic!("mutant not caught: {}", case.mutated.name()));
        // Replay the minimized schedule twice more: same violation,
        // same trace, same canonical decision list — so the rendered
        // counterexample is stable down to the byte.
        for _ in 0..2 {
            let (again, decisions) = explorer.reproduce(&*case.mutated, &cx.decisions);
            assert_eq!(
                again.verdict.expect_err("replay must still violate"),
                cx.violation,
                "violation text differs on replay ({})",
                case.mutated.name()
            );
            assert_eq!(again.trace, cx.trace, "trace differs on replay");
            assert_eq!(decisions, cx.decisions, "decision log differs on replay");
        }
    }
}
