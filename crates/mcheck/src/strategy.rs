//! Schedule strategies and the recording/replaying chooser.
//!
//! Three families of [`ScheduleStrategy`] explore the same-timestamp
//! schedule space opened by `simcore`'s controlled-scheduling hook:
//!
//! * [`RandomWalk`] — seeded uniform choices; one seed is one exact
//!   interleaving, replayable byte-for-byte.
//! * [`RoundRobinPerturb`] — a bounded deterministic perturbation that
//!   rotates which ready-set position fires first, sweeping the "one
//!   event systematically delayed" neighbourhood of the FIFO schedule.
//! * bounded-exhaustive enumeration — driven by [`crate::explore::
//!   Explorer::enumerate`], which replays a decision prefix via
//!   [`Chooser::replay`] and backtracks depth-first.
//!
//! Every decision a strategy makes is recorded by the [`Chooser`]
//! wrapper as a `(ready, chosen)` pair; the resulting [`DecisionList`]
//! is the *name* of the schedule — replaying it reproduces the run
//! exactly, and the shrinker minimizes failing runs by editing it.

use mayflower_simcore::{ScheduleStrategy, SimRng};

/// One recorded scheduling decision: out of `ready` same-timestamp
/// events, the `chosen`-th (FIFO index) fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Size of the ready set shown to the strategy (always ≥ 2).
    pub ready: u32,
    /// The FIFO index chosen (`< ready`).
    pub chosen: u32,
}

impl std::fmt::Display for Decision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.chosen, self.ready)
    }
}

/// A full schedule name: the ordered decisions of one run.
pub type DecisionList = Vec<Decision>;

/// Renders a decision list as the stable, greppable form printed in
/// counterexamples: `[1/3 0/2 2/4]`.
#[must_use]
pub fn render_decisions(decisions: &[Decision]) -> String {
    let mut out = String::from("[");
    for (i, d) in decisions.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&d.to_string());
    }
    out.push(']');
    out
}

/// Seeded uniform random walk over ready sets.
#[derive(Debug, Clone)]
pub struct RandomWalk {
    rng: SimRng,
}

impl RandomWalk {
    /// A walk drawing from `seed`; the same seed always walks the same
    /// schedule.
    #[must_use]
    pub fn new(seed: u64) -> RandomWalk {
        RandomWalk {
            rng: SimRng::seed_from(seed),
        }
    }
}

impl ScheduleStrategy for RandomWalk {
    fn choose(&mut self, ready: usize) -> usize {
        self.rng.index(ready)
    }
}

/// Bounded round-robin perturbation: decision `i` picks index
/// `(i + shift) mod ready`. `shift = 0` delays the FIFO-oldest event
/// at every other step, `shift = 1` rotates one further, and so on —
/// a cheap deterministic sweep of near-FIFO schedules that needs no
/// randomness at all.
#[derive(Debug, Clone)]
pub struct RoundRobinPerturb {
    shift: usize,
    step: usize,
}

impl RoundRobinPerturb {
    /// A perturbation with the given rotation offset.
    #[must_use]
    pub fn new(shift: usize) -> RoundRobinPerturb {
        RoundRobinPerturb { shift, step: 0 }
    }
}

impl ScheduleStrategy for RoundRobinPerturb {
    fn choose(&mut self, ready: usize) -> usize {
        let k = (self.step + self.shift) % ready;
        self.step += 1;
        k
    }
}

enum Mode {
    /// Delegate to an inner strategy.
    Drive(Box<dyn ScheduleStrategy>),
    /// Replay a fixed decision list; past its end, fall back to FIFO.
    Replay { decisions: Vec<u32>, cursor: usize },
}

/// The recorder every exploration runs through: delegates (or
/// replays), clamps, and logs each decision so the run is replayable.
pub struct Chooser {
    mode: Mode,
    log: DecisionList,
    /// Whether a replay diverged: a replayed decision met a ready set
    /// of a different size than when it was recorded, or the run asked
    /// for more decisions than the list holds. Shrinking treats
    /// diverged replays as candidates like any other — the verdict of
    /// the re-run is what matters — but the flag is kept for
    /// diagnostics.
    diverged: bool,
}

impl Chooser {
    /// Records the decisions of `strategy`.
    #[must_use]
    pub fn recording(strategy: Box<dyn ScheduleStrategy>) -> Chooser {
        Chooser {
            mode: Mode::Drive(strategy),
            log: Vec::new(),
            diverged: false,
        }
    }

    /// Replays `decisions`, FIFO past the end.
    #[must_use]
    pub fn replay(decisions: &[Decision]) -> Chooser {
        Chooser {
            mode: Mode::Replay {
                decisions: decisions.iter().map(|d| d.chosen).collect(),
                cursor: 0,
            },
            log: Vec::new(),
            diverged: false,
        }
    }

    /// Replays raw choice indices (the enumeration prefix form).
    #[must_use]
    pub fn replay_indices(indices: &[u32]) -> Chooser {
        Chooser {
            mode: Mode::Replay {
                decisions: indices.to_vec(),
                cursor: 0,
            },
            log: Vec::new(),
            diverged: false,
        }
    }

    /// The decisions taken so far (recorded or replayed, after
    /// clamping) — the schedule's replayable name.
    #[must_use]
    pub fn decisions(&self) -> &[Decision] {
        &self.log
    }

    /// Consumes the chooser, returning its decision log.
    #[must_use]
    pub fn into_decisions(self) -> DecisionList {
        self.log
    }

    /// Whether a replay ran off its list or met a differently-sized
    /// ready set.
    #[must_use]
    pub fn diverged(&self) -> bool {
        self.diverged
    }
}

impl ScheduleStrategy for Chooser {
    fn choose(&mut self, ready: usize) -> usize {
        let raw = match &mut self.mode {
            Mode::Drive(s) => s.choose(ready),
            Mode::Replay { decisions, cursor } => {
                let k = decisions.get(*cursor).copied();
                *cursor += 1;
                match k {
                    Some(k) => k as usize,
                    None => {
                        self.diverged = true;
                        0
                    }
                }
            }
        };
        let chosen = raw.min(ready - 1);
        if chosen != raw {
            self.diverged = true;
        }
        self.log.push(Decision {
            ready: ready as u32,
            chosen: chosen as u32,
        });
        chosen
    }
}

impl std::fmt::Debug for Chooser {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Chooser")
            .field("decisions", &self.log.len())
            .field("diverged", &self.diverged)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_walk_is_seed_deterministic() {
        let mut a = RandomWalk::new(9);
        let mut b = RandomWalk::new(9);
        for ready in [2usize, 3, 5, 7, 4, 2] {
            assert_eq!(a.choose(ready), b.choose(ready));
        }
    }

    #[test]
    fn round_robin_rotates() {
        let mut s = RoundRobinPerturb::new(1);
        assert_eq!(s.choose(3), 1);
        assert_eq!(s.choose(3), 2);
        assert_eq!(s.choose(3), 0);
        assert_eq!(s.choose(2), 0);
    }

    #[test]
    fn chooser_records_and_replays_identically() {
        let mut rec = Chooser::recording(Box::new(RandomWalk::new(4)));
        let readies = [3usize, 2, 4, 2, 5];
        let first: Vec<usize> = readies.iter().map(|r| rec.choose(*r)).collect();
        let decisions = rec.into_decisions();

        let mut rep = Chooser::replay(&decisions);
        let second: Vec<usize> = readies.iter().map(|r| rep.choose(*r)).collect();
        assert_eq!(first, second);
        assert!(!rep.diverged());
        assert_eq!(rep.decisions(), decisions.as_slice());
    }

    #[test]
    fn replay_past_end_is_fifo_and_flags_divergence() {
        let mut rep = Chooser::replay(&[Decision {
            ready: 2,
            chosen: 1,
        }]);
        assert_eq!(rep.choose(2), 1);
        assert_eq!(rep.choose(3), 0, "past the list, FIFO");
        assert!(rep.diverged());
    }

    #[test]
    fn out_of_range_choice_clamps() {
        let mut rep = Chooser::replay(&[Decision {
            ready: 5,
            chosen: 4,
        }]);
        assert_eq!(rep.choose(2), 1, "4 clamps to ready-1");
        assert!(rep.diverged());
    }

    #[test]
    fn decisions_render_stably() {
        let d = vec![
            Decision {
                ready: 3,
                chosen: 1,
            },
            Decision {
                ready: 2,
                chosen: 0,
            },
        ];
        assert_eq!(render_decisions(&d), "[1/3 0/2]");
        assert_eq!(render_decisions(&[]), "[]");
    }
}
