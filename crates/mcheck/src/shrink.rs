//! Greedy delta-debugging of failing schedules.
//!
//! A counterexample found by a random walk is typically noisy: dozens
//! of scheduling decisions, most of them irrelevant. The shrinker
//! minimizes a failing [`DecisionList`] by alternating two greedy
//! passes until a fixpoint:
//!
//! 1. **Truncation** — replay ever-shorter prefixes of the list (the
//!    scheduler falls back to FIFO past the end), shortest first.
//! 2. **Lowering** — left to right, try replacing each decision with a
//!    smaller index (0 is the FIFO choice).
//!
//! A candidate is accepted only if its re-run still *fails* and its
//! canonical decision log is strictly lighter (fewer non-FIFO
//! decisions, then smaller indices, then shorter), which also proves
//! termination. The accepted list is always the canonical log of an
//! actual failing run, so replaying the final result reproduces the
//! violation byte-for-byte.

use crate::strategy::{Decision, DecisionList};

/// The outcome of replaying one shrink candidate.
#[derive(Debug, Clone)]
pub struct ShrinkRun {
    /// Whether the run still violated the oracle.
    pub failed: bool,
    /// The canonical decision log the run actually took (clamping and
    /// FIFO fallback applied).
    pub decisions: DecisionList,
}

/// Hard cap on candidate executions, against pathological scenarios.
const MAX_RUNS: usize = 2000;

fn weight(d: &[Decision]) -> (usize, usize, usize) {
    (
        d.iter().filter(|x| x.chosen != 0).count(),
        d.iter().map(|x| x.chosen as usize).sum(),
        d.len(),
    )
}

/// Minimizes `initial` (the canonical log of a failing run) under
/// `run`, which replays a candidate decision list and reports whether
/// the violation persists.
pub fn shrink(
    initial: DecisionList,
    mut run: impl FnMut(&[Decision]) -> ShrinkRun,
) -> DecisionList {
    let mut cur = initial;
    let mut runs = 0usize;
    loop {
        let mut improved = false;

        // Truncation pass: shortest prefix first.
        for k in 0..cur.len() {
            if runs >= MAX_RUNS {
                return cur;
            }
            runs += 1;
            let r = run(&cur[..k]);
            if r.failed && weight(&r.decisions) < weight(&cur) {
                cur = r.decisions;
                improved = true;
                break;
            }
        }

        // Lowering pass: left to right, smallest replacement first.
        'outer: for i in 0..cur.len() {
            for v in 0..cur[i].chosen {
                if runs >= MAX_RUNS {
                    return cur;
                }
                runs += 1;
                let mut cand = cur.clone();
                cand[i].chosen = v;
                let r = run(&cand);
                if r.failed && weight(&r.decisions) < weight(&cur) {
                    cur = r.decisions;
                    improved = true;
                    break 'outer;
                }
            }
        }

        if !improved {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic scenario with 4 decision points over ready sets of
    /// size 2; it fails iff decision 2 is non-FIFO.
    fn toy_run(cand: &[Decision]) -> ShrinkRun {
        let mut full: Vec<Decision> = Vec::new();
        for i in 0..4 {
            let chosen = cand.get(i).map_or(0, |d| d.chosen.min(1));
            full.push(Decision { ready: 2, chosen });
        }
        ShrinkRun {
            failed: full[2].chosen == 1,
            decisions: full,
        }
    }

    #[test]
    fn shrinks_to_the_single_relevant_decision() {
        let initial = toy_run(&[
            Decision {
                ready: 2,
                chosen: 1,
            },
            Decision {
                ready: 2,
                chosen: 1,
            },
            Decision {
                ready: 2,
                chosen: 1,
            },
            Decision {
                ready: 2,
                chosen: 1,
            },
        ])
        .decisions;
        let min = shrink(initial, toy_run);
        let chosen: Vec<u32> = min.iter().map(|d| d.chosen).collect();
        assert_eq!(chosen, vec![0, 0, 1, 0]);
        assert!(toy_run(&min).failed, "minimized list still fails");
    }

    #[test]
    fn already_minimal_is_stable() {
        let minimal = vec![
            Decision {
                ready: 2,
                chosen: 0,
            },
            Decision {
                ready: 2,
                chosen: 0,
            },
            Decision {
                ready: 2,
                chosen: 1,
            },
            Decision {
                ready: 2,
                chosen: 0,
            },
        ];
        assert_eq!(shrink(minimal.clone(), toy_run), minimal);
    }

    #[test]
    fn respects_the_run_cap() {
        let mut calls = 0usize;
        let initial = vec![
            Decision {
                ready: 9,
                chosen: 8
            };
            8
        ];
        let _ = shrink(initial, |cand| {
            calls += 1;
            ShrinkRun {
                failed: true,
                decisions: cand.to_vec(),
            }
        });
        assert!(calls <= MAX_RUNS);
    }
}
