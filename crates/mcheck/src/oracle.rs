//! Append/read consistency oracle (§3.4).
//!
//! Mayflower files are append-only and primary-ordered: the primary
//! replica serializes appends, so the file's *content* is the
//! primary's final byte sequence and every read must return a byte
//! prefix of it (sequential consistency — a read may lag, but never
//! diverge). Under **strong** consistency the paper additionally
//! requires last-chunk reads to go through the primary, which buys
//! real-time freshness: a read invoked after an append was
//! acknowledged must include that append's bytes.
//!
//! The oracle exploits the scenarios' tagged payloads: every append
//! writes `len` copies of a unique `tag` byte, so "does this read
//! cover that append" is a position check against the primary's final
//! content rather than a subsequence search.

use crate::history::{Event, History};

/// A data-path operation, as driven by the model-checking scenarios.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataOp {
    /// A primary-ordered append of `len` copies of the byte `tag`.
    Append {
        /// File name.
        file: String,
        /// Unique payload byte for this append.
        tag: u8,
        /// Payload length in bytes.
        len: u32,
    },
    /// A whole-file read.
    Read {
        /// File name.
        file: String,
    },
    /// A dataserver fail-stop crash (fault-schedule event).
    Crash {
        /// Replica index into the file's replica list.
        replica: u32,
    },
    /// A crashed dataserver restarts with its disk intact.
    Restart {
        /// Replica index into the file's replica list.
        replica: u32,
    },
    /// Replica loss + re-replication (`Cluster::repair`).
    Repair,
}

impl std::fmt::Display for DataOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataOp::Append { file, tag, len } => write!(f, "append({file},tag={tag},len={len})"),
            DataOp::Read { file } => write!(f, "read({file})"),
            DataOp::Crash { replica } => write!(f, "crash(r{replica})"),
            DataOp::Restart { replica } => write!(f, "restart(r{replica})"),
            DataOp::Repair => write!(f, "repair"),
        }
    }
}

/// The response of a [`DataOp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataRet {
    /// Append acknowledged; the file's new size.
    Appended(u64),
    /// Read returned these bytes.
    Value(Vec<u8>),
    /// The operation failed (crashed replica, severed path); failed
    /// operations are exempt from the consistency checks.
    Failed(String),
    /// A fault-schedule event completed.
    Done,
}

impl std::fmt::Display for DataRet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataRet::Appended(size) => write!(f, "appended(size={size})"),
            DataRet::Value(v) => write!(f, "value({})", render_bytes(v)),
            DataRet::Failed(why) => write!(f, "failed({why})"),
            DataRet::Done => write!(f, "done"),
        }
    }
}

/// Renders tagged payload bytes run-length encoded (`len=12: 1x6 2x6`)
/// — stable, compact, and enough to diff counterexample traces by eye.
#[must_use]
pub fn render_bytes(bytes: &[u8]) -> String {
    let mut out = format!("len={}:", bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        let tag = bytes[i];
        let mut j = i;
        while j < bytes.len() && bytes[j] == tag {
            j += 1;
        }
        out.push_str(&format!(" {tag}x{}", j - i));
        i = j;
    }
    out
}

/// Checks an append/read history against the primary's final content.
///
/// Always checked (sequential consistency): every successful read
/// returned a byte prefix of `primary`. With `strong`, additionally:
/// every successful read invoked after an append's acknowledgement
/// covers that append's bytes (real-time freshness, §3.4), and every
/// acknowledged append's bytes are present in `primary`.
///
/// # Errors
///
/// Returns a violation message naming the offending calls.
pub fn check_append_read(
    history: &History<DataOp, DataRet>,
    primary: &[u8],
    strong: bool,
) -> Result<(), String> {
    let spans = history.spans();
    let completed: Vec<_> = history
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::Invoke { .. } => None,
            Event::Response { call, ret } => Some((*call, ret)),
        })
        .collect();
    let op_of = |call: crate::history::CallId| {
        history.events().iter().find_map(|e| match e {
            Event::Invoke { call: c, op, .. } if *c == call => Some(op),
            _ => None,
        })
    };

    for (call, ret) in &completed {
        let Some(DataOp::Read { .. }) = op_of(*call) else {
            continue;
        };
        let DataRet::Value(v) = ret else { continue };
        if v.len() > primary.len() || primary[..v.len()] != v[..] {
            return Err(format!(
                "read[{}] is not a prefix of the primary's final content: \
                 got {}, primary {}",
                call.0,
                render_bytes(v),
                render_bytes(primary)
            ));
        }
    }

    if !strong {
        return Ok(());
    }
    for (rcall, rret) in &completed {
        let Some(DataOp::Read { .. }) = op_of(*rcall) else {
            continue;
        };
        let DataRet::Value(v) = rret else { continue };
        let read_invoke = spans[rcall].0;
        for (acall, aret) in &completed {
            let Some(DataOp::Append { tag, len, .. }) = op_of(*acall) else {
                continue;
            };
            let DataRet::Appended(_) = aret else { continue };
            let Some(ack) = spans[acall].1 else { continue };
            if ack >= read_invoke {
                continue; // not acknowledged before the read began
            }
            let Some(pos) = primary.iter().position(|b| b == tag) else {
                return Err(format!(
                    "append[{}] (tag {tag}) was acknowledged but its bytes \
                     never reached the primary",
                    acall.0
                ));
            };
            let need = pos + *len as usize;
            if v.len() < need {
                return Err(format!(
                    "strong read[{}] began after append[{}] (tag {tag}) was \
                     acknowledged, but returned {} — needs at least {need} \
                     bytes to cover it",
                    rcall.0,
                    acall.0,
                    render_bytes(v)
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_ret(h: &mut History<DataOp, DataRet>, v: &[u8]) {
        let c = h.invoke(1, DataOp::Read { file: "f".into() });
        h.respond(c, DataRet::Value(v.to_vec()));
    }

    fn append_ret(h: &mut History<DataOp, DataRet>, tag: u8, len: u32, size: u64) {
        let c = h.invoke(
            0,
            DataOp::Append {
                file: "f".into(),
                tag,
                len,
            },
        );
        h.respond(c, DataRet::Appended(size));
    }

    #[test]
    fn prefix_reads_pass() {
        let primary = [1, 1, 1, 2, 2, 2];
        let mut h = History::new();
        append_ret(&mut h, 1, 3, 3);
        read_ret(&mut h, &[1, 1, 1]);
        read_ret(&mut h, &primary);
        read_ret(&mut h, &[]);
        assert!(check_append_read(&h, &primary, false).is_ok());
    }

    #[test]
    fn non_prefix_read_fails() {
        let primary = [1, 1, 2, 2];
        let mut h = History::new();
        read_ret(&mut h, &[2, 2]);
        let err = check_append_read(&h, &primary, false).unwrap_err();
        assert!(err.contains("not a prefix"), "{err}");
    }

    #[test]
    fn strong_requires_acked_appends_visible() {
        let primary = [1, 1, 2, 2];
        let mut h = History::new();
        append_ret(&mut h, 2, 2, 4); // acked before the read begins
        read_ret(&mut h, &[1, 1]); // misses tag 2
        assert!(check_append_read(&h, &primary, false).is_ok());
        let err = check_append_read(&h, &primary, true).unwrap_err();
        assert!(err.contains("strong read"), "{err}");
    }

    #[test]
    fn strong_ignores_concurrent_appends() {
        let primary = [1, 1, 2, 2];
        let mut h = History::new();
        // Append overlaps the read: freshness not required.
        let a = h.invoke(
            0,
            DataOp::Append {
                file: "f".into(),
                tag: 2,
                len: 2,
            },
        );
        let r = h.invoke(1, DataOp::Read { file: "f".into() });
        h.respond(a, DataRet::Appended(4));
        h.respond(r, DataRet::Value(vec![1, 1]));
        assert!(check_append_read(&h, &primary, true).is_ok());
    }

    #[test]
    fn acked_append_missing_from_primary_fails_strong() {
        let primary = [1, 1];
        let mut h = History::new();
        append_ret(&mut h, 9, 2, 4);
        read_ret(&mut h, &[1, 1]);
        let err = check_append_read(&h, &primary, true).unwrap_err();
        assert!(err.contains("never reached the primary"), "{err}");
    }

    #[test]
    fn failed_ops_are_exempt() {
        let primary = [1, 1];
        let mut h = History::new();
        let r = h.invoke(1, DataOp::Read { file: "f".into() });
        h.respond(r, DataRet::Failed("replica down".into()));
        assert!(check_append_read(&h, &primary, true).is_ok());
    }

    #[test]
    fn byte_rendering_is_run_length() {
        assert_eq!(render_bytes(&[]), "len=0:");
        assert_eq!(render_bytes(&[7, 7, 7, 2]), "len=4: 7x3 2x1");
    }
}
