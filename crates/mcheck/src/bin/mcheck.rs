//! Command-line front end for the schedule-exploration model checker.
//!
//! ```text
//! mcheck --scenario data-strong --strategy random-walk --seed 7 --budget 500
//! mcheck --scenario freeze --mutant freeze-expiry-before-poll --strategy exhaustive
//! ```
//!
//! Exits 0 when every explored schedule satisfies its oracle, 1 with a
//! rendered, byte-reproducible counterexample otherwise, 2 on usage
//! errors. `ci.sh` drives this binary for the opt-in `MCHECK_BUDGET`
//! long-fuzz mode; the fixed-seed mutant smoke gate lives in the
//! crate's `mutants` integration test.

use mayflower_mcheck::{
    Budget, DataScenario, Explorer, FreezeScenario, Mutant, NsMetaScenario, Scenario,
    ShardHandoffScenario, StrategyKind,
};

struct Args {
    scenario: String,
    mutant: Mutant,
    strategy: StrategyKind,
    seed: u64,
    budget: usize,
}

const USAGE: &str = "usage: mcheck [--scenario ns|data|data-strong|data-repair|freeze|shard] \
    [--mutant none|wal-torn-tail|stale-last-chunk-read|unlocked-append|freeze-expiry-before-poll|serve-stale-after-handoff] \
    [--strategy fifo|random-walk|round-robin|exhaustive] [--seed N] [--budget N]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scenario: "ns".to_string(),
        mutant: Mutant::None,
        strategy: StrategyKind::RandomWalk,
        seed: 1,
        budget: 100,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--scenario" => args.scenario = value("--scenario")?,
            "--mutant" => {
                args.mutant = match value("--mutant")?.as_str() {
                    "none" => Mutant::None,
                    "wal-torn-tail" => Mutant::WalTornTail,
                    "stale-last-chunk-read" => Mutant::StaleLastChunkRead,
                    "unlocked-append" => Mutant::UnlockedAppend,
                    "freeze-expiry-before-poll" => Mutant::FreezeExpiryBeforePoll,
                    "serve-stale-after-handoff" => Mutant::ServeStaleAfterHandoff,
                    other => return Err(format!("unknown mutant {other:?}")),
                }
            }
            "--strategy" => {
                args.strategy = match value("--strategy")?.as_str() {
                    "fifo" => StrategyKind::Fifo,
                    "random-walk" => StrategyKind::RandomWalk,
                    "round-robin" => StrategyKind::RoundRobin,
                    "exhaustive" => StrategyKind::Exhaustive,
                    other => return Err(format!("unknown strategy {other:?}")),
                }
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--budget" => {
                args.budget = value("--budget")?
                    .parse()
                    .map_err(|e| format!("bad --budget: {e}"))?;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn build_scenario(args: &Args) -> Result<Box<dyn Scenario>, String> {
    Ok(match args.scenario.as_str() {
        "ns" => Box::new(NsMetaScenario::new(1).with_mutant(args.mutant)),
        "data" => Box::new(DataScenario::new(false).with_mutant(args.mutant)),
        "data-strong" => Box::new(DataScenario::new(true).with_mutant(args.mutant)),
        "data-repair" => Box::new(
            DataScenario::new(true)
                .with_mutant(args.mutant)
                .with_repair_race(),
        ),
        "freeze" => Box::new(FreezeScenario::new().with_mutant(args.mutant)),
        "shard" => Box::new(ShardHandoffScenario::new().with_mutant(args.mutant)),
        other => return Err(format!("unknown scenario {other:?}")),
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mcheck: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    let scenario = match build_scenario(&args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mcheck: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };

    let explorer = Explorer::new();
    let report = explorer.check(
        &*scenario,
        args.strategy,
        args.seed,
        Budget::schedules(args.budget),
    );
    println!(
        "mcheck: scenario={} strategy={} seed={} explored={}{} runs={} violations={}",
        scenario.name(),
        args.strategy,
        args.seed,
        report.explored,
        if report.exhausted { " (exhausted)" } else { "" },
        explorer.schedules_explored(),
        explorer.violations_seen(),
    );
    match report.counterexample {
        None => println!("mcheck: no violation found"),
        Some(cx) => {
            println!("{}", cx.render());
            std::process::exit(1);
        }
    }
}
