//! Invoke/response histories.
//!
//! Every explored schedule taps the operations it drives — nameserver
//! metadata calls, dataserver appends and reads — into a [`History`]:
//! a totally ordered log of *invocation* and *response* events. The
//! oracles consume histories: the Wing–Gong checker searches for a
//! linearization of a metadata history, and the append/read oracle
//! checks prefix and freshness properties against the primary's final
//! order. The rendered trace is also the counterexample's body, so
//! rendering must be byte-deterministic — `Display` implementations
//! only, no pointers, no wall-clock time.

/// Identifies one operation instance within a history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CallId(pub u32);

/// One history event: an operation's invocation or its response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<O, R> {
    /// Operation `op` by `client` began.
    Invoke {
        /// The operation instance.
        call: CallId,
        /// Logical client index.
        client: u32,
        /// The operation.
        op: O,
    },
    /// The operation opened by the matching [`Event::Invoke`] returned.
    Response {
        /// The operation instance.
        call: CallId,
        /// The value returned.
        ret: R,
    },
}

/// A completed call as `(call, client, op, ret)`.
pub type Completed<O, R> = (CallId, u32, O, R);

/// A pending (invoked, never responded) call as `(call, client, op)`.
pub type PendingCall<O> = (CallId, u32, O);

/// A totally ordered invoke/response log.
#[derive(Debug, Clone, Default)]
pub struct History<O, R> {
    events: Vec<Event<O, R>>,
    next_call: u32,
}

impl<O: Clone, R: Clone> History<O, R> {
    /// An empty history.
    #[must_use]
    pub fn new() -> History<O, R> {
        History {
            events: Vec::new(),
            next_call: 0,
        }
    }

    /// Records an invocation, returning its call id.
    pub fn invoke(&mut self, client: u32, op: O) -> CallId {
        let call = CallId(self.next_call);
        self.next_call += 1;
        self.events.push(Event::Invoke { call, client, op });
        call
    }

    /// Records the response of `call`.
    pub fn respond(&mut self, call: CallId, ret: R) {
        self.events.push(Event::Response { call, ret });
    }

    /// The events in order.
    #[must_use]
    pub fn events(&self) -> &[Event<O, R>] {
        &self.events
    }

    /// The completed operations as `(call, client, op, ret)`, in
    /// response order, plus the pending ones (invoked, never
    /// responded) as `(call, client, op)`.
    #[must_use]
    pub fn split(&self) -> (Vec<Completed<O, R>>, Vec<PendingCall<O>>) {
        let mut open: Vec<PendingCall<O>> = Vec::new();
        let mut done: Vec<Completed<O, R>> = Vec::new();
        for e in &self.events {
            match e {
                Event::Invoke { call, client, op } => open.push((*call, *client, op.clone())),
                Event::Response { call, ret } => {
                    if let Some(pos) = open.iter().position(|(c, _, _)| c == call) {
                        let (c, client, op) = open.remove(pos);
                        done.push((c, client, op, ret.clone()));
                    }
                }
            }
        }
        (done, open)
    }

    /// Index of each call's invocation and (if any) response in the
    /// event order: `(invoke_idx, Option<response_idx>)`.
    #[must_use]
    pub fn spans(&self) -> std::collections::BTreeMap<CallId, (usize, Option<usize>)> {
        let mut spans = std::collections::BTreeMap::new();
        for (i, e) in self.events.iter().enumerate() {
            match e {
                Event::Invoke { call, .. } => {
                    spans.insert(*call, (i, None));
                }
                Event::Response { call, .. } => {
                    if let Some((_, r)) = spans.get_mut(call) {
                        *r = Some(i);
                    }
                }
            }
        }
        spans
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl<O: std::fmt::Display, R: std::fmt::Display> History<O, R> {
    /// Renders the history as the stable multi-line trace printed in
    /// counterexamples: one event per line, `#<idx> c<client>
    /// invoke <op>` / `#<idx> ret[<call>] -> <ret>`.
    #[must_use]
    pub fn trace(&self) -> String {
        let mut out = String::new();
        for (i, e) in self.events.iter().enumerate() {
            match e {
                Event::Invoke { call, client, op } => {
                    out.push_str(&format!("#{i:03} c{client} invoke[{}] {op}\n", call.0));
                }
                Event::Response { call, ret } => {
                    out.push_str(&format!("#{i:03} return[{}] -> {ret}\n", call.0));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_separates_completed_and_pending() {
        let mut h: History<&str, &str> = History::new();
        let a = h.invoke(0, "create");
        let b = h.invoke(1, "delete");
        h.respond(a, "ok");
        let (done, open) = h.split();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, a);
        assert_eq!(open.len(), 1);
        assert_eq!(open[0].0, b);
    }

    #[test]
    fn spans_track_event_indices() {
        let mut h: History<&str, &str> = History::new();
        let a = h.invoke(0, "x");
        let b = h.invoke(1, "y");
        h.respond(b, "ok");
        h.respond(a, "ok");
        let spans = h.spans();
        assert_eq!(spans[&a], (0, Some(3)));
        assert_eq!(spans[&b], (1, Some(2)));
    }

    #[test]
    fn trace_is_stable() {
        let mut h: History<&str, &str> = History::new();
        let a = h.invoke(2, "op");
        h.respond(a, "ok");
        assert_eq!(h.trace(), "#000 c2 invoke[0] op\n#001 return[0] -> ok\n");
    }
}
