//! Schedule-exploration model checker for Mayflower's
//! consistency-critical protocols.
//!
//! The repo's simulation runs are deterministic but explore exactly
//! one interleaving — FIFO order among same-timestamp events. The
//! ordering-sensitive protocols (nameserver metadata over the WAL'd KV
//! store, §3.3.2 primary-ordered appends, §3.4 strong-consistency
//! reads, Pseudocode 2's update freeze) can hide bugs that only
//! surface under *other* orders. This crate turns the simulator's
//! controlled scheduler hook ([`mayflower_simcore::EventQueue::
//! pop_with`]) into a model checker:
//!
//! * [`strategy`] — schedule strategies (seeded random walks, bounded
//!   round-robin perturbation, bounded-exhaustive enumeration) and the
//!   recording/replaying [`strategy::Chooser`]: one decision list
//!   names one interleaving, replayable byte-for-byte.
//! * [`history`] — invoke/response histories with concurrency-faithful
//!   traces.
//! * [`lin`] — a Wing–Gong linearizability checker for nameserver
//!   metadata histories.
//! * [`oracle`] — the append/read consistency oracle (prefix property,
//!   plus §3.4 real-time freshness in strong mode).
//! * [`scenario`] — the checkable protocols themselves, driving
//!   **real** components (nameserver + KV WAL on disk, dataservers
//!   with real chunk files, the real flow tracker) step-by-step, with
//!   deliberately broken mutants for checker validation.
//! * [`shrink`] — greedy delta-debugging of failing schedules down to
//!   a minimal decision list.
//! * [`explore`] — the budgeted driver tying it together, reporting
//!   `mcheck.schedules_explored_total` / `mcheck.violations_total`
//!   through the telemetry registry.
//!
//! Entry point: build a [`scenario::Scenario`], hand it to
//! [`explore::Explorer::check`] with a strategy, seed and budget; a
//! violation comes back as a minimized [`explore::Counterexample`]
//! whose `render()` output (seed + decision list + trace) reproduces
//! identically on replay.

#![warn(missing_docs)]

pub mod explore;
pub mod history;
pub mod lin;
pub mod oracle;
pub mod scenario;
pub mod shrink;
pub mod strategy;

pub use explore::{Budget, CheckReport, Counterexample, Explorer, StrategyKind};
pub use history::{CallId, History};
pub use scenario::{
    DataScenario, FreezeScenario, Mutant, NsMetaScenario, Scenario, ScheduleOutcome,
    ShardHandoffScenario,
};
pub use strategy::{Chooser, Decision, DecisionList};
