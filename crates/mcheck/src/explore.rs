//! The exploration driver: budgeted schedule search, counterexample
//! minimization, and telemetry.

use mayflower_simcore::FifoSchedule;
use mayflower_telemetry::{Counter, Registry, Scope};
use std::sync::Arc;

use crate::scenario::{Scenario, ScheduleOutcome};
use crate::shrink::{shrink, ShrinkRun};
use crate::strategy::{
    render_decisions, Chooser, Decision, DecisionList, RandomWalk, RoundRobinPerturb,
};

/// Which family of schedules to explore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// The single FIFO schedule (the baseline every other run of the
    /// repo uses) — one run, no perturbation.
    Fifo,
    /// Seeded random walks; schedule `i` uses `seed + i`.
    RandomWalk,
    /// Bounded round-robin perturbations; schedule `i` uses shift `i`.
    RoundRobin,
    /// Bounded-exhaustive depth-first enumeration of the whole
    /// same-timestamp interleaving space, up to the budget.
    Exhaustive,
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrategyKind::Fifo => write!(f, "fifo"),
            StrategyKind::RandomWalk => write!(f, "random-walk"),
            StrategyKind::RoundRobin => write!(f, "round-robin"),
            StrategyKind::Exhaustive => write!(f, "exhaustive"),
        }
    }
}

/// Exploration budget: the maximum number of schedules to execute
/// (shrinking runs are not counted against it).
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Maximum schedules to run.
    pub max_schedules: usize,
}

impl Budget {
    /// A budget of `n` schedules.
    #[must_use]
    pub fn schedules(n: usize) -> Budget {
        Budget { max_schedules: n }
    }
}

/// A minimized failing schedule, with everything needed to reproduce
/// it byte-for-byte.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Scenario name (includes the mutant label).
    pub scenario: String,
    /// Strategy description, e.g. `random-walk seed=7`.
    pub strategy: String,
    /// The seed of the failing schedule, when the strategy is seeded.
    pub seed: Option<u64>,
    /// The minimized decision list; replaying it reproduces the run.
    pub decisions: DecisionList,
    /// The oracle's violation message.
    pub violation: String,
    /// The failing run's history trace.
    pub trace: String,
}

impl Counterexample {
    /// Renders the counterexample in its stable printed form. Two
    /// reproductions of the same minimized schedule render
    /// byte-identically.
    #[must_use]
    pub fn render(&self) -> String {
        let seed = self.seed.map_or_else(|| "-".to_string(), |s| s.to_string());
        format!(
            "mcheck counterexample\n  scenario: {}\n  strategy: {}\n  seed: {}\n  \
             decisions: {}\n  violation: {}\n  trace:\n{}",
            self.scenario,
            self.strategy,
            seed,
            render_decisions(&self.decisions),
            self.violation,
            self.trace
        )
    }
}

/// The result of one exploration.
#[derive(Debug)]
pub struct CheckReport {
    /// Schedules executed during exploration (excludes shrinking).
    pub explored: usize,
    /// For [`StrategyKind::Exhaustive`]: whether the whole space fit
    /// inside the budget.
    pub exhausted: bool,
    /// The first violation found, minimized — `None` if every explored
    /// schedule passed.
    pub counterexample: Option<Counterexample>,
}

struct Metrics {
    schedules: Arc<Counter>,
    violations: Arc<Counter>,
    /// Keeps a detached registry alive when the caller supplied none.
    _own: Option<Registry>,
}

/// Drives scenarios through schedule strategies, checks oracles,
/// minimizes failures.
pub struct Explorer {
    metrics: Metrics,
}

impl Default for Explorer {
    fn default() -> Explorer {
        Explorer::new()
    }
}

impl Explorer {
    /// An explorer with a private telemetry registry.
    #[must_use]
    pub fn new() -> Explorer {
        let registry = Registry::new();
        let scope = registry.scope("mcheck");
        Explorer {
            metrics: Metrics {
                schedules: scope.counter("schedules_explored_total"),
                violations: scope.counter("violations_total"),
                _own: Some(registry),
            },
        }
    }

    /// An explorer reporting `schedules_explored_total` and
    /// `violations_total` under `scope`.
    #[must_use]
    pub fn with_scope(scope: &Scope) -> Explorer {
        Explorer {
            metrics: Metrics {
                schedules: scope.counter("schedules_explored_total"),
                violations: scope.counter("violations_total"),
                _own: None,
            },
        }
    }

    /// Schedules executed so far (exploration, shrinking and
    /// reproduction all count).
    #[must_use]
    pub fn schedules_explored(&self) -> u64 {
        self.metrics.schedules.get()
    }

    /// Violating runs observed so far.
    #[must_use]
    pub fn violations_seen(&self) -> u64 {
        self.metrics.violations.get()
    }

    fn run_once(&self, scenario: &dyn Scenario, chooser: &mut Chooser) -> ScheduleOutcome {
        let out = scenario.run(chooser);
        self.metrics.schedules.inc();
        if out.verdict.is_err() {
            self.metrics.violations.inc();
        }
        out
    }

    /// Explores up to `budget` schedules of `scenario` under `kind`,
    /// returning the first violation minimized to a reproducible
    /// counterexample.
    pub fn check(
        &self,
        scenario: &dyn Scenario,
        kind: StrategyKind,
        seed: u64,
        budget: Budget,
    ) -> CheckReport {
        if kind == StrategyKind::Exhaustive {
            return self.enumerate(scenario, budget);
        }
        let mut explored = 0usize;
        for i in 0..budget.max_schedules {
            let (mut chooser, strategy, run_seed) = match kind {
                StrategyKind::Fifo => (
                    Chooser::recording(Box::new(FifoSchedule)),
                    "fifo".to_string(),
                    None,
                ),
                StrategyKind::RandomWalk => {
                    let s = seed.wrapping_add(i as u64);
                    (
                        Chooser::recording(Box::new(RandomWalk::new(s))),
                        format!("random-walk seed={s}"),
                        Some(s),
                    )
                }
                StrategyKind::RoundRobin => (
                    Chooser::recording(Box::new(RoundRobinPerturb::new(i))),
                    format!("round-robin shift={i}"),
                    None,
                ),
                StrategyKind::Exhaustive => unreachable!("handled above"),
            };
            let out = self.run_once(scenario, &mut chooser);
            explored += 1;
            if out.verdict.is_err() {
                let cx = self.minimize(scenario, chooser.into_decisions(), strategy, run_seed);
                return CheckReport {
                    explored,
                    exhausted: false,
                    counterexample: Some(cx),
                };
            }
            if kind == StrategyKind::Fifo {
                break; // there is exactly one FIFO schedule
            }
        }
        CheckReport {
            explored,
            exhausted: false,
            counterexample: None,
        }
    }

    /// Depth-first bounded-exhaustive enumeration: replay a decision
    /// prefix, record the FIFO extension, then backtrack at the last
    /// decision point with an untried alternative.
    fn enumerate(&self, scenario: &dyn Scenario, budget: Budget) -> CheckReport {
        let mut prefix: Vec<u32> = Vec::new();
        let mut explored = 0usize;
        loop {
            if explored >= budget.max_schedules {
                return CheckReport {
                    explored,
                    exhausted: false,
                    counterexample: None,
                };
            }
            let mut chooser = Chooser::replay_indices(&prefix);
            let out = self.run_once(scenario, &mut chooser);
            explored += 1;
            let log = chooser.into_decisions();
            if out.verdict.is_err() {
                let cx = self.minimize(scenario, log, "exhaustive".to_string(), None);
                return CheckReport {
                    explored,
                    exhausted: false,
                    counterexample: Some(cx),
                };
            }
            // Backtrack: bump the deepest decision with room left.
            let Some(j) = (0..log.len())
                .rev()
                .find(|&j| log[j].chosen + 1 < log[j].ready)
            else {
                return CheckReport {
                    explored,
                    exhausted: true,
                    counterexample: None,
                };
            };
            prefix = log[..j].iter().map(|d| d.chosen).collect();
            prefix.push(log[j].chosen + 1);
        }
    }

    /// Replays a decision list, returning the outcome and canonical
    /// log.
    pub fn reproduce(
        &self,
        scenario: &dyn Scenario,
        decisions: &[Decision],
    ) -> (ScheduleOutcome, DecisionList) {
        let mut chooser = Chooser::replay(decisions);
        let out = self.run_once(scenario, &mut chooser);
        (out, chooser.into_decisions())
    }

    fn minimize(
        &self,
        scenario: &dyn Scenario,
        failing: DecisionList,
        strategy: String,
        seed: Option<u64>,
    ) -> Counterexample {
        let minimized = shrink(failing, |cand| {
            let (out, decisions) = self.reproduce(scenario, cand);
            ShrinkRun {
                failed: out.verdict.is_err(),
                decisions,
            }
        });
        let (out, decisions) = self.reproduce(scenario, &minimized);
        let violation = out
            .verdict
            .err()
            .unwrap_or_else(|| "violation did not reproduce on replay".to_string());
        Counterexample {
            scenario: scenario.name(),
            strategy,
            seed,
            decisions,
            violation,
            trace: out.trace,
        }
    }
}
