//! Append/read scenario: primary-ordered appends, chunked reads,
//! crash/restart faults and re-replication, checked by the §3.4
//! consistency oracle.
//!
//! The scenario runs a real [`Nameserver`] and three real
//! [`Dataserver`]s (real chunk files on disk) and re-issues the append
//! and read protocols step-by-step, one component call per event:
//!
//! * **Append** (§3.3.2): invoke → acquire the per-file ordering lock
//!   → write the primary replica → acknowledge (`record_size` + the
//!   client response) → relay to each secondary → release the lock.
//!   The acknowledgement deliberately precedes the relays: the primary
//!   *orders* appends, secondaries catch up — which is exactly why
//!   §3.4's strong mode must route last-chunk reads through the
//!   primary. Relays carry the primary-assigned offset and apply only
//!   when the secondary is at that offset, so a secondary is always a
//!   byte-prefix of the primary (skipped relays leave it lagging,
//!   never holed).
//! * **Read**: invoke → probe the acknowledged size from the
//!   nameserver → read each chunk piece (strong mode: the last chunk
//!   only from the primary; other chunks from any replica, short
//!   reads patched from the primary, as the production client does).
//! * **Faults**: crash/restart events mapped from a
//!   [`FaultSchedule`], plus a two-phase repair (replica disk loss,
//!   then [`Dataserver::pull_repair`] from the primary) racing the
//!   concurrent appends.
//!
//! The real protocol satisfies the oracle in *every* schedule. The
//! [`Mutant::StaleLastChunkRead`] and [`Mutant::UnlockedAppend`]
//! variants each violate it in *some* schedule — which is the point
//! of exploring.

use std::collections::VecDeque;
use std::sync::Arc;

use mayflower_fs::{Dataserver, FileMeta, FsError, Nameserver, NameserverConfig};
use mayflower_net::{HostId, Topology, TreeParams};
use mayflower_simcore::{EventQueue, FaultEvent, FaultSchedule, SimTime};

use crate::history::{CallId, History};
use crate::oracle::{check_append_read, DataOp, DataRet};
use crate::scenario::{Mutant, RunDir, Scenario, ScheduleOutcome};
use crate::strategy::Chooser;

const FILE: &str = "f";
const CHUNK: u64 = 8;
const REPLICAS: usize = 3;

/// The append/read consistency scenario.
#[derive(Debug, Clone)]
pub struct DataScenario {
    /// Strong (§3.4) vs sequential read checking.
    pub strong: bool,
    /// Which protocol variant to run.
    pub mutant: Mutant,
    /// The fault client's script (crash/restart/repair events).
    pub fault_ops: Vec<DataOp>,
}

impl DataScenario {
    /// The real protocol, no faults.
    #[must_use]
    pub fn new(strong: bool) -> DataScenario {
        DataScenario {
            strong,
            mutant: Mutant::None,
            fault_ops: Vec::new(),
        }
    }

    /// A mutated variant.
    #[must_use]
    pub fn with_mutant(mut self, mutant: Mutant) -> DataScenario {
        self.mutant = mutant;
        self
    }

    /// Adds a crash/restart pair on one secondary replica plus a
    /// two-phase repair — the re-replication-vs-append race.
    #[must_use]
    pub fn with_repair_race(mut self) -> DataScenario {
        self.fault_ops = vec![
            DataOp::Crash { replica: 1 },
            DataOp::Restart { replica: 1 },
            DataOp::Repair,
        ];
        self
    }

    /// Maps a [`FaultSchedule`]'s dataserver crash points onto the
    /// scenario's replicas (raw id modulo the replica count, like the
    /// experiment harness) in schedule order. The checker then
    /// explores where each fault lands relative to the appends and
    /// reads.
    #[must_use]
    pub fn with_fault_schedule(mut self, schedule: &FaultSchedule) -> DataScenario {
        self.fault_ops = schedule
            .entries()
            .iter()
            .filter_map(|(_, e)| match e {
                FaultEvent::DataserverCrash(raw) => Some(DataOp::Crash {
                    replica: raw % REPLICAS as u32,
                }),
                FaultEvent::DataserverRestart(raw) => Some(DataOp::Restart {
                    replica: raw % REPLICAS as u32,
                }),
                _ => None,
            })
            .collect();
        self
    }
}

/// One read piece: chunk `chunk`, byte range `[off, off + want)`.
#[derive(Debug, Clone)]
struct Piece {
    off: u64,
    want: u64,
    /// Replica index serving the raw bytes.
    host: usize,
    is_last: bool,
}

#[derive(Debug)]
enum Phase {
    /// Next event invokes the client's next scripted op.
    Ready,
    /// Invoked; next event starts executing.
    Invoked(CallId),
    /// Append parked on the per-file lock (no event scheduled; the
    /// release wakes it).
    WaitLock(CallId),
    /// Append holds the lock; next event writes the primary.
    Locked(CallId),
    /// Primary written at `off`; next event acknowledges.
    Ack {
        call: CallId,
        off: u64,
        payload: Vec<u8>,
    },
    /// Acknowledged; next events relay to secondary `next`.
    Relay {
        call: CallId,
        off: u64,
        payload: Vec<u8>,
        next: usize,
    },
    /// Read probed size `s`; next events fetch `pieces[next]`.
    Pieces {
        call: CallId,
        pieces: Vec<Piece>,
        next: usize,
        acc: Vec<u8>,
    },
    /// Repair wiped the replica; next event pulls from the primary.
    RepairPull(CallId),
}

struct Run<'a> {
    scenario: &'a DataScenario,
    ns: Nameserver,
    ds: Vec<Arc<Dataserver>>,
    meta: FileMeta,
    scripts: Vec<Vec<DataOp>>,
    cursors: Vec<usize>,
    phases: Vec<Phase>,
    lock: Option<usize>,
    waiters: VecDeque<usize>,
    history: History<DataOp, DataRet>,
    queue: EventQueue<usize>,
}

impl Run<'_> {
    fn finish_op(&mut self, c: usize) {
        self.phases[c] = Phase::Ready;
        self.cursors[c] += 1;
        if self.cursors[c] < self.scripts[c].len() {
            self.queue.schedule(SimTime::ZERO, c);
        }
    }

    fn release_lock(&mut self, c: usize) {
        if self.scenario.mutant == Mutant::UnlockedAppend {
            return; // the mutant never took it
        }
        debug_assert_eq!(self.lock, Some(c));
        self.lock = None;
        if let Some(w) = self.waiters.pop_front() {
            self.lock = Some(w);
            self.queue.schedule(SimTime::ZERO, w);
        }
    }

    /// A secondary applies a relayed append only at its assigned
    /// offset: behind (skipped earlier relay, wiped disk) or ahead
    /// (repair already copied these bytes) both skip, so replicas stay
    /// byte-prefixes of the primary.
    fn relay_to(&self, replica: usize, off: u64, payload: &[u8]) {
        let ds = &self.ds[replica];
        let Ok((_, size)) = ds.read_local(self.meta.id, 0, 0) else {
            return; // down or wiped
        };
        if size == off {
            let _ = ds.append_local(self.meta.id, payload);
        }
    }

    /// Reads one piece with the production client's failover: the
    /// chosen replica first, then the primary, then the rest; short
    /// reads are patched from the primary. Strong-mode last-chunk
    /// pieces allow no failover target but the primary itself.
    fn read_piece(&self, piece: &Piece) -> Result<Vec<u8>, String> {
        let strong_last = self.scenario.strong && piece.is_last;
        let stale_serve = strong_last && self.scenario.mutant == Mutant::StaleLastChunkRead;
        let candidates: Vec<usize> = if stale_serve {
            vec![piece.host]
        } else if strong_last {
            vec![0]
        } else {
            let mut cs = vec![piece.host];
            for r in 0..REPLICAS {
                if !cs.contains(&r) {
                    cs.push(r);
                }
            }
            cs
        };
        for &r in &candidates {
            let Ok((bytes, _)) = self.ds[r].read_local(self.meta.id, piece.off, piece.want) else {
                continue;
            };
            if bytes.len() as u64 == piece.want || stale_serve {
                return Ok(bytes); // the mutant serves the stale short read
            }
            if r == 0 {
                return Err("primary returned a short read".to_string());
            }
            // Patch the lagging tail from the primary.
            let patch_off = piece.off + bytes.len() as u64;
            let patch_want = piece.want - bytes.len() as u64;
            let Ok((patch, _)) = self.ds[0].read_local(self.meta.id, patch_off, patch_want) else {
                continue;
            };
            if patch.len() as u64 == patch_want {
                let mut out = bytes;
                out.extend_from_slice(&patch);
                return Ok(out);
            }
        }
        Err(format!(
            "no replica could serve [{}, {})",
            piece.off,
            piece.off + piece.want
        ))
    }

    fn plan_pieces(&self, size: u64) -> Vec<Piece> {
        let mut pieces = Vec::new();
        if size == 0 {
            return pieces;
        }
        let last_chunk = (size - 1) / CHUNK;
        for chunk in 0..=last_chunk {
            let off = chunk * CHUNK;
            let want = CHUNK.min(size - off);
            let is_last = chunk == last_chunk;
            let host = if self.scenario.strong && is_last {
                if self.scenario.mutant == Mutant::StaleLastChunkRead {
                    1 // served stale from a secondary
                } else {
                    0 // §3.4: the primary
                }
            } else {
                (chunk as usize) % REPLICAS
            };
            pieces.push(Piece {
                off,
                want,
                host,
                is_last,
            });
        }
        pieces
    }

    /// Advances client `c` by one protocol step.
    fn step(&mut self, c: usize) {
        let op = self.scripts[c][self.cursors[c]].clone();
        match std::mem::replace(&mut self.phases[c], Phase::Ready) {
            Phase::Ready => {
                self.phases[c] = Phase::Invoked(self.history.invoke(c as u32, op));
                self.queue.schedule(SimTime::ZERO, c);
            }
            Phase::Invoked(call) => match op {
                DataOp::Append { .. } => {
                    if self.scenario.mutant == Mutant::UnlockedAppend || self.lock.is_none() {
                        if self.scenario.mutant != Mutant::UnlockedAppend {
                            self.lock = Some(c);
                        }
                        self.phases[c] = Phase::Locked(call);
                        self.queue.schedule(SimTime::ZERO, c);
                    } else {
                        self.phases[c] = Phase::WaitLock(call);
                        self.waiters.push_back(c); // woken by the release
                    }
                }
                DataOp::Read { .. } => {
                    let size = self
                        .ns
                        .lookup(FILE)
                        .expect("file exists for the whole run")
                        .size;
                    self.phases[c] = Phase::Pieces {
                        call,
                        pieces: self.plan_pieces(size),
                        next: 0,
                        acc: Vec::new(),
                    };
                    self.queue.schedule(SimTime::ZERO, c);
                }
                DataOp::Crash { replica } => {
                    self.ds[replica as usize].crash();
                    self.history.respond(call, DataRet::Done);
                    self.finish_op(c);
                }
                DataOp::Restart { replica } => {
                    self.ds[replica as usize].restart();
                    self.history.respond(call, DataRet::Done);
                    self.finish_op(c);
                }
                DataOp::Repair => {
                    // Phase one: the replica's disk is lost.
                    let target = &self.ds[1];
                    if target.is_up() {
                        let _ = target.delete_file(self.meta.id);
                    }
                    self.phases[c] = Phase::RepairPull(call);
                    self.queue.schedule(SimTime::ZERO, c);
                }
            },
            Phase::WaitLock(call) => {
                // Woken holding the lock.
                self.phases[c] = Phase::Locked(call);
                self.queue.schedule(SimTime::ZERO, c);
            }
            Phase::Locked(call) => {
                let DataOp::Append { tag, len, .. } = op else {
                    unreachable!("only appends take the lock")
                };
                let payload = vec![tag; len as usize];
                match self.ds[0].append_local(self.meta.id, &payload) {
                    Ok(new_size) => {
                        self.phases[c] = Phase::Ack {
                            call,
                            off: new_size - u64::from(len),
                            payload,
                        };
                        self.queue.schedule(SimTime::ZERO, c);
                    }
                    Err(e) => {
                        self.history.respond(call, DataRet::Failed(short_err(&e)));
                        self.release_lock(c);
                        self.finish_op(c);
                    }
                }
            }
            Phase::Ack { call, off, payload } => {
                let new_size = off + payload.len() as u64;
                self.ns
                    .record_size(FILE, new_size)
                    .expect("file exists for the whole run");
                self.history.respond(call, DataRet::Appended(new_size));
                self.phases[c] = Phase::Relay {
                    call,
                    off,
                    payload,
                    next: 1,
                };
                self.queue.schedule(SimTime::ZERO, c);
            }
            Phase::Relay {
                call,
                off,
                payload,
                next,
            } => {
                self.relay_to(next, off, &payload);
                if next + 1 < REPLICAS {
                    self.phases[c] = Phase::Relay {
                        call,
                        off,
                        payload,
                        next: next + 1,
                    };
                    self.queue.schedule(SimTime::ZERO, c);
                } else {
                    self.release_lock(c);
                    self.finish_op(c);
                }
            }
            Phase::Pieces {
                call,
                pieces,
                next,
                mut acc,
            } => {
                if next == pieces.len() {
                    self.history.respond(call, DataRet::Value(acc));
                    self.finish_op(c);
                    return;
                }
                match self.read_piece(&pieces[next]) {
                    Ok(bytes) => {
                        let short = (bytes.len() as u64) < pieces[next].want;
                        acc.extend_from_slice(&bytes);
                        if short {
                            // Only the stale-read mutant returns short:
                            // its value ends early.
                            self.history.respond(call, DataRet::Value(acc));
                            self.finish_op(c);
                        } else {
                            self.phases[c] = Phase::Pieces {
                                call,
                                pieces,
                                next: next + 1,
                                acc,
                            };
                            self.queue.schedule(SimTime::ZERO, c);
                        }
                    }
                    Err(why) => {
                        self.history.respond(call, DataRet::Failed(why));
                        self.finish_op(c);
                    }
                }
            }
            Phase::RepairPull(call) => {
                let meta = self.ns.lookup(FILE).expect("file exists for the whole run");
                let ret = match self.ds[1].pull_repair(&*self.ds[0], &meta) {
                    Ok(_) => DataRet::Done,
                    Err(e) => DataRet::Failed(short_err(&e)),
                };
                self.history.respond(call, ret);
                self.finish_op(c);
            }
        }
    }
}

fn short_err(e: &FsError) -> String {
    match e {
        FsError::Unavailable(_) => "unavailable".to_string(),
        FsError::NotFound(_) => "not-found".to_string(),
        other => format!("{other}"),
    }
}

fn small_topology() -> Arc<Topology> {
    Arc::new(Topology::three_tier(&TreeParams {
        pods: 2,
        racks_per_pod: 2,
        hosts_per_rack: 2,
        aggs_per_pod: 1,
        cores: 1,
        edge_capacity: 1e9,
        oversubscription: 1.0,
        edge_tier_oversub: 1.0,
    }))
}

impl Scenario for DataScenario {
    fn name(&self) -> String {
        format!(
            "append-read mode={} faults={} mutant={}",
            if self.strong { "strong" } else { "sequential" },
            self.fault_ops.len(),
            self.mutant.label()
        )
    }

    fn run(&self, chooser: &mut Chooser) -> ScheduleOutcome {
        let dir = RunDir::new("data");
        let topo = small_topology();
        let ns = Nameserver::open(
            topo.clone(),
            &dir.path().join("ns"),
            NameserverConfig {
                replication: REPLICAS,
                chunk_size: CHUNK,
                ..NameserverConfig::default()
            },
        )
        .expect("open nameserver");
        let hosts = [HostId(0), HostId(2), HostId(4)];
        let meta = ns
            .create_placed(FILE, hosts.to_vec())
            .expect("create scenario file");
        let mut ds = Vec::new();
        for h in hosts {
            let d = Dataserver::open(h, &dir.path().join(format!("ds-{}", h.0)))
                .expect("open dataserver");
            d.create_file(&meta).expect("create replica");
            ds.push(Arc::new(d));
        }

        let mut scripts: Vec<Vec<DataOp>> = vec![
            vec![
                DataOp::Append {
                    file: FILE.into(),
                    tag: 1,
                    len: 6,
                },
                DataOp::Append {
                    file: FILE.into(),
                    tag: 2,
                    len: 6,
                },
            ],
            vec![DataOp::Append {
                file: FILE.into(),
                tag: 3,
                len: 6,
            }],
            vec![
                DataOp::Read { file: FILE.into() },
                DataOp::Read { file: FILE.into() },
            ],
            vec![DataOp::Read { file: FILE.into() }],
        ];
        if !self.fault_ops.is_empty() {
            scripts.push(self.fault_ops.clone());
        }

        let n = scripts.len();
        let mut run = Run {
            scenario: self,
            ns,
            ds,
            meta,
            scripts,
            cursors: vec![0; n],
            phases: (0..n).map(|_| Phase::Ready).collect(),
            lock: None,
            waiters: VecDeque::new(),
            history: History::new(),
            queue: EventQueue::new(),
        };
        for c in 0..n {
            run.queue.schedule(SimTime::ZERO, c);
        }
        while let Some((_, c)) = run.queue.pop_with(chooser) {
            run.step(c);
        }

        // Ground truth: the primary's final on-disk content.
        for d in &run.ds {
            d.restart();
        }
        let (_, size) = run.ds[0]
            .read_local(run.meta.id, 0, 0)
            .expect("primary survives (disk is never lost)");
        let (primary, _) = run.ds[0]
            .read_local(run.meta.id, 0, size)
            .expect("primary content readable");

        ScheduleOutcome {
            verdict: check_append_read(&run.history, &primary, self.strong),
            trace: run.history.trace(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{Budget, Explorer, StrategyKind};

    #[test]
    fn real_protocol_passes_strong_random_walks() {
        let s = DataScenario::new(true);
        let report = Explorer::new().check(&s, StrategyKind::RandomWalk, 11, Budget::schedules(15));
        assert!(
            report.counterexample.is_none(),
            "{}",
            report.counterexample.unwrap().render()
        );
    }

    #[test]
    fn real_protocol_passes_with_repair_race() {
        let s = DataScenario::new(true).with_repair_race();
        let report = Explorer::new().check(&s, StrategyKind::RandomWalk, 12, Budget::schedules(15));
        assert!(
            report.counterexample.is_none(),
            "{}",
            report.counterexample.unwrap().render()
        );
    }

    #[test]
    fn stale_last_chunk_mutant_is_caught() {
        let s = DataScenario::new(true).with_mutant(Mutant::StaleLastChunkRead);
        let report = Explorer::new().check(&s, StrategyKind::RandomWalk, 1, Budget::schedules(80));
        let cx = report.counterexample.expect("mutant must be caught");
        assert!(cx.violation.contains("strong read"), "{}", cx.violation);
    }

    #[test]
    fn unlocked_append_mutant_is_caught() {
        let s = DataScenario::new(true).with_mutant(Mutant::UnlockedAppend);
        let report = Explorer::new().check(&s, StrategyKind::RandomWalk, 1, Budget::schedules(80));
        assert!(report.counterexample.is_some(), "mutant must be caught");
    }
}
