//! Sharded-metadata handoff scenario: concurrent namespace operations
//! racing a live shard migration, checked by the Wing–Gong
//! linearizability oracle.
//!
//! Two logical clients run fixed scripts of create/record-size/lookup/
//! delete against a **real** two-shard [`ShardedNameserver`], each
//! through its own [`ShardRouter`] with an effectively infinite lease —
//! so the routers' cached maps go stale the moment the migration
//! client's flip lands, and correctness rests entirely on the plane's
//! epoch/ownership fences. A third (non-history) migration client
//! drives [`Handoff`] phase by phase — begin, bulk copy, flip, gc — so
//! the scheduler chooses where every metadata operation lands relative
//! to the handoff.
//!
//! The file names are picked deterministically so the grown ring
//! re-homes some of them onto the joining shard: those are exactly the
//! keys the handoff must not lose, duplicate, or serve stale.
//!
//! The real protocol is linearizable by construction (every fenced
//! operation re-checks epoch and ownership under the same lock the
//! flip takes). The [`Mutant::ServeStaleAfterHandoff`] variant
//! disables both fences at flip time — the classic resharding bug
//! where an old owner keeps answering for a moved key — so once gc
//! reclaims the source copies, a stale router observes a spurious
//! not-found (or a frozen size) with no linearization point.

use std::sync::Arc;

use mayflower_fs::{FsError, MetadataService, Redundancy};
use mayflower_net::{Topology, TreeParams};
use mayflower_shard::{Handoff, ShardMap, ShardPlaneConfig, ShardRouter, ShardedNameserver};
use mayflower_simcore::{EventQueue, SimTime};
use mayflower_telemetry::Registry;

use crate::history::{CallId, History};
use crate::lin::{check_linearizable, MetaOp, MetaRet};
use crate::scenario::{Mutant, RunDir, Scenario, ScheduleOutcome};
use crate::strategy::Chooser;

/// The shard-handoff scenario.
#[derive(Debug, Clone)]
pub struct ShardHandoffScenario {
    /// Which protocol variant to run.
    pub mutant: Mutant,
}

impl Default for ShardHandoffScenario {
    fn default() -> ShardHandoffScenario {
        ShardHandoffScenario::new()
    }
}

impl ShardHandoffScenario {
    /// The real protocol.
    #[must_use]
    pub fn new() -> ShardHandoffScenario {
        ShardHandoffScenario {
            mutant: Mutant::None,
        }
    }

    /// A mutated variant.
    #[must_use]
    pub fn with_mutant(mut self, mutant: Mutant) -> ShardHandoffScenario {
        self.mutant = mutant;
        self
    }
}

const VNODES: u32 = 8;

/// Deterministically picks script names: two that the 2→3 shard growth
/// re-homes onto the joiner, one that stays put.
fn pick_names() -> (String, String, String) {
    let old = ShardMap::initial(2, VNODES);
    let grown = old.with_shard_added(old.next_shard_id());
    let (old_ring, new_ring) = (old.ring(), grown.ring());
    let mut moving = Vec::new();
    let mut stable = None;
    for i in 0.. {
        let name = format!("h/f{i}");
        if new_ring.owner(&name) == old_ring.owner(&name) {
            stable.get_or_insert(name);
        } else {
            moving.push(name);
        }
        if moving.len() >= 2 && stable.is_some() {
            break;
        }
    }
    let m1 = moving.pop().expect("two moving names");
    let m0 = moving.pop().expect("two moving names");
    (m0, m1, stable.expect("a stable name"))
}

fn scripts() -> Vec<Vec<MetaOp>> {
    let (m0, m1, s0) = pick_names();
    vec![
        vec![
            MetaOp::Create(m0.clone()),
            MetaOp::RecordSize {
                name: m0.clone(),
                size: 10,
            },
            MetaOp::Lookup(m0.clone()),
            MetaOp::Lookup(m0.clone()),
        ],
        vec![
            MetaOp::Create(m1.clone()),
            MetaOp::Lookup(s0.clone()),
            MetaOp::Delete(m1.clone()),
            MetaOp::Lookup(m1),
            MetaOp::Create(s0.clone()),
            MetaOp::Lookup(m0),
        ],
    ]
}

fn small_topology() -> Arc<Topology> {
    Arc::new(Topology::three_tier(&TreeParams {
        pods: 2,
        racks_per_pod: 2,
        hosts_per_rack: 2,
        aggs_per_pod: 1,
        cores: 1,
        edge_capacity: 1e9,
        oversubscription: 1.0,
        edge_tier_oversub: 1.0,
    }))
}

fn exec(router: &ShardRouter, op: &MetaOp) -> MetaRet {
    let map_err = |e: FsError| match e {
        FsError::NotFound(_) => MetaRet::ErrNotFound,
        FsError::AlreadyExists(_) => MetaRet::ErrAlreadyExists,
        other => panic!("unexpected shard-router error in scenario: {other}"),
    };
    match op {
        MetaOp::Create(n) => router
            .create_with(n, Redundancy::default())
            .map(|_| MetaRet::Created)
            .unwrap_or_else(map_err),
        MetaOp::Delete(n) => router
            .delete(n)
            .map(|_| MetaRet::Deleted)
            .unwrap_or_else(map_err),
        MetaOp::Rename { from, to } => router
            .rename(from, to, true)
            .map(|_| MetaRet::Renamed)
            .unwrap_or_else(map_err),
        MetaOp::RecordSize { name, size } => router
            .record_size(name, *size)
            .map(|()| MetaRet::Recorded)
            .unwrap_or_else(map_err),
        MetaOp::Lookup(n) => router
            .lookup(n)
            .map(|m| MetaRet::Found(m.size))
            .unwrap_or_else(map_err),
        MetaOp::Crash => unreachable!("this scenario injects no crashes"),
    }
}

/// One event: advance client `usize` by one phase. The last index is
/// the migration client.
type Ev = usize;

/// Migration phases, in order: begin, bulk copy (all batches), flip,
/// gc.
const MIGRATION_PHASES: usize = 4;

impl Scenario for ShardHandoffScenario {
    fn name(&self) -> String {
        format!("shard-handoff mutant={}", self.mutant.label())
    }

    fn run(&self, chooser: &mut Chooser) -> ScheduleOutcome {
        let dir = RunDir::new("shard");
        let registry = Registry::new();
        let plane = Arc::new(
            ShardedNameserver::open(
                dir.path(),
                small_topology(),
                ShardPlaneConfig {
                    shards: 2,
                    vnodes: VNODES,
                    ..ShardPlaneConfig::default()
                },
                &registry,
            )
            .expect("open sharded plane"),
        );

        let scripts = scripts();
        let routers: Vec<ShardRouter> = (0..scripts.len())
            .map(|_| {
                let r = ShardRouter::new(plane.clone(), &registry.scope("shard_router"));
                // An effectively infinite lease: the routers refresh
                // only when the plane's fences force them to, which is
                // exactly the window the checker explores. (It also
                // keeps runs independent of wall-clock time.)
                r.set_lease(std::time::Duration::from_secs(1 << 30));
                r
            })
            .collect();

        let mut cursors = vec![0usize; scripts.len()];
        let mut in_flight: Vec<Option<CallId>> = vec![None; scripts.len()];
        let mut history: History<MetaOp, MetaRet> = History::new();

        let migration_client = scripts.len();
        let mut migration_phase = 0usize;
        let mut handoff: Option<Handoff<'_>> = None;
        let grown = {
            let map = plane.shard_map();
            map.with_shard_added(map.next_shard_id())
        };

        let mut queue: EventQueue<Ev> = EventQueue::new();
        for (c, script) in scripts.iter().enumerate() {
            if !script.is_empty() {
                queue.schedule(SimTime::ZERO, c);
            }
        }
        queue.schedule(SimTime::ZERO, migration_client);

        while let Some((_, c)) = queue.pop_with(chooser) {
            if c == migration_client {
                match migration_phase {
                    0 => {
                        handoff =
                            Some(Handoff::begin(&plane, grown.clone(), 2).expect("begin handoff"));
                    }
                    1 => {
                        let h = handoff.as_mut().expect("handoff begun");
                        while h.remaining() > 0 {
                            h.copy_batch().expect("bulk copy");
                        }
                    }
                    2 => {
                        if self.mutant == Mutant::ServeStaleAfterHandoff {
                            plane.inject_serve_stale_after_handoff(true);
                        }
                        handoff
                            .as_mut()
                            .expect("handoff begun")
                            .flip()
                            .expect("flip");
                    }
                    3 => {
                        handoff.as_mut().expect("handoff begun").gc().expect("gc");
                    }
                    _ => unreachable!("migration has {MIGRATION_PHASES} phases"),
                }
                migration_phase += 1;
                if migration_phase < MIGRATION_PHASES {
                    queue.schedule(SimTime::ZERO, migration_client);
                }
                continue;
            }
            let op = scripts[c][cursors[c]].clone();
            match in_flight[c].take() {
                None => {
                    // Phase 1: invoke — opens the concurrency window.
                    in_flight[c] = Some(history.invoke(c as u32, op));
                    queue.schedule(SimTime::ZERO, c);
                }
                Some(call) => {
                    // Phase 2: the real routed call, plus the response
                    // record.
                    let ret = exec(&routers[c], &op);
                    history.respond(call, ret);
                    cursors[c] += 1;
                    if cursors[c] < scripts[c].len() {
                        queue.schedule(SimTime::ZERO, c);
                    }
                }
            }
        }

        ScheduleOutcome {
            verdict: check_linearizable(&history),
            trace: history.trace(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{Budget, Explorer, StrategyKind};
    use mayflower_simcore::FifoSchedule;

    #[test]
    fn picked_names_actually_move() {
        let (m0, m1, s0) = pick_names();
        let old = ShardMap::initial(2, VNODES);
        let grown = old.with_shard_added(old.next_shard_id());
        assert_ne!(old.ring().owner(&m0), grown.ring().owner(&m0));
        assert_ne!(old.ring().owner(&m1), grown.ring().owner(&m1));
        assert_eq!(old.ring().owner(&s0), grown.ring().owner(&s0));
    }

    #[test]
    fn real_protocol_is_linearizable_under_fifo() {
        let s = ShardHandoffScenario::new();
        let mut chooser = Chooser::recording(Box::new(FifoSchedule));
        let out = s.run(&mut chooser);
        assert!(out.verdict.is_ok(), "{:?}", out.verdict);
        assert!(!chooser.decisions().is_empty(), "ready sets did overlap");
    }

    #[test]
    fn real_protocol_survives_random_walks() {
        let s = ShardHandoffScenario::new();
        let explorer = Explorer::new();
        let report = explorer.check(&s, StrategyKind::RandomWalk, 0x51AD, Budget::schedules(16));
        assert!(
            report.counterexample.is_none(),
            "{}",
            report.counterexample.unwrap().render()
        );
        assert_eq!(report.explored, 16);
    }

    #[test]
    fn serve_stale_mutant_is_caught_and_minimized() {
        let s = ShardHandoffScenario::new().with_mutant(Mutant::ServeStaleAfterHandoff);
        let explorer = Explorer::new();
        let report = explorer.check(&s, StrategyKind::RandomWalk, 1, Budget::schedules(80));
        let cx = report.counterexample.expect("mutant must be caught");
        assert!(
            cx.violation.contains("not linearizable"),
            "{}",
            cx.violation
        );
        let (again, decisions) = explorer.reproduce(&s, &cx.decisions);
        assert_eq!(again.verdict.unwrap_err(), cx.violation);
        assert_eq!(again.trace, cx.trace);
        assert_eq!(decisions, cx.decisions);
    }
}
