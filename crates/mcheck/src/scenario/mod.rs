//! Model-checking scenarios: the consistency-critical protocols
//! driven step-by-step through the controlled scheduler.
//!
//! Each scenario runs **real components** — the real [`mayflower_fs::
//! Nameserver`] over the real [`mayflower_kvstore::KvStore`], real
//! [`mayflower_fs::Dataserver`]s with real bytes on disk, the real
//! [`mayflower_flowserver`] flow tracker — but drives them through a
//! `simcore` event queue so that the scheduler hook decides the order
//! of same-timestamp steps. The production `Client` methods are
//! monolithic (one call performs the whole protocol), so the scenarios
//! re-issue the same component-level calls the client makes as
//! *separate events*: that is what opens the interleaving space the
//! checker explores, while the state every step touches stays the real
//! implementation.
//!
//! Each scenario also supports **mutants**: deliberately broken
//! harness-level variants of the protocol (a stale last-chunk read, a
//! dropped append lock, an off-by-one freeze expiry, an over-eager WAL
//! truncation) used to prove the checker catches real bug classes
//! within the CI budget.

mod data;
mod freeze;
mod ns;
mod shard;

pub use data::DataScenario;
pub use freeze::FreezeScenario;
pub use ns::NsMetaScenario;
pub use shard::ShardHandoffScenario;

use crate::strategy::Chooser;

/// A deliberately broken protocol variant for checker validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mutant {
    /// The real protocol.
    #[default]
    None,
    /// Nameserver crash recovery truncates the last *valid* WAL record
    /// (over-truncation: torn-tail scanning that drops one record too
    /// many), losing a committed metadata update.
    WalTornTail,
    /// Strong-consistency read serves the last chunk from a secondary
    /// replica without patching short reads from the primary (§3.4
    /// requires the primary).
    StaleLastChunkRead,
    /// Appends skip the per-file primary-ordering lock, so replica
    /// relay order can diverge (§3.3.2 requires primary ordering).
    UnlockedAppend,
    /// The clock-side freeze-expiry sweep uses `now >= freeze_until`
    /// instead of the strict `now > freeze_until`, so a stats poll
    /// landing exactly on the boundary can clobber a frozen estimate
    /// (Pseudocode 2).
    FreezeExpiryBeforePoll,
    /// The sharded metadata plane skips its epoch and ownership fences
    /// after a shard handoff, so an old owner keeps answering for a
    /// moved key — once GC reclaims the source copies, a stale router
    /// observes a spurious not-found for a file that exists.
    ServeStaleAfterHandoff,
}

impl Mutant {
    /// Short stable label, used in scenario names and CI output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Mutant::None => "none",
            Mutant::WalTornTail => "wal-torn-tail",
            Mutant::StaleLastChunkRead => "stale-last-chunk-read",
            Mutant::UnlockedAppend => "unlocked-append",
            Mutant::FreezeExpiryBeforePoll => "freeze-expiry-before-poll",
            Mutant::ServeStaleAfterHandoff => "serve-stale-after-handoff",
        }
    }
}

/// The verdict and trace of one fully executed schedule.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// `Ok` if the oracle accepted the history, else the violation.
    pub verdict: Result<(), String>,
    /// The run's history trace (the counterexample body).
    pub trace: String,
}

/// A checkable protocol: executes one complete schedule under the
/// given chooser and reports the oracle's verdict.
///
/// Runs must be deterministic functions of the decision sequence:
/// same decisions, same verdict, byte-identical trace.
pub trait Scenario {
    /// Stable name, including the mutant label.
    fn name(&self) -> String;
    /// Executes one schedule to completion.
    fn run(&self, chooser: &mut Chooser) -> ScheduleOutcome;
}

/// A fresh per-run scratch directory, removed on drop. Scenario runs
/// number in the thousands per checker invocation, so cleanup is not
/// optional; the name is process- and counter-unique so parallel test
/// binaries never collide.
pub(crate) struct RunDir {
    path: std::path::PathBuf,
}

impl RunDir {
    pub(crate) fn new(tag: &str) -> RunDir {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("mayflower-mcheck-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create scenario scratch dir");
        RunDir { path }
    }

    pub(crate) fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl Drop for RunDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
