//! Nameserver metadata scenario: concurrent namespace operations with
//! crash-recovery points, checked by the Wing–Gong linearizability
//! oracle.
//!
//! Three logical clients run fixed operation scripts against one
//! **real** [`Nameserver`] (backed by the real [`mayflower_kvstore`]
//! WAL on disk); a fourth fault client injects nameserver
//! crash-reopen points sourced from a [`FaultSchedule`]. Every
//! operation is two events at the same timestamp — *invoke* (recorded
//! in the history, widening the concurrency window) and *execute*
//! (the real call, response recorded) — so the scheduler's choices
//! decide which operations overlap and where the crash lands.
//!
//! The real protocol is linearizable by construction (each nameserver
//! call takes effect atomically inside its invocation window, and the
//! KV store's recovery replays the complete WAL). The
//! [`Mutant::WalTornTail`] variant truncates the last *valid* WAL
//! record at each crash — the classic over-eager torn-tail scan — so
//! a committed update silently vanishes and some later observation
//! has no linearization point.

use std::sync::Arc;

use mayflower_fs::{FsError, Nameserver, NameserverConfig};
use mayflower_net::{Topology, TreeParams};
use mayflower_simcore::{EventQueue, FaultSchedule, SimTime};

use crate::history::{CallId, History};
use crate::lin::{check_linearizable, MetaOp, MetaRet};
use crate::scenario::{Mutant, RunDir, Scenario, ScheduleOutcome};
use crate::strategy::Chooser;

/// The nameserver metadata scenario.
#[derive(Debug, Clone)]
pub struct NsMetaScenario {
    /// Which protocol variant to run.
    pub mutant: Mutant,
    /// How many crash-reopen points the fault client injects.
    pub crashes: usize,
}

impl NsMetaScenario {
    /// The real protocol with `crashes` crash points.
    #[must_use]
    pub fn new(crashes: usize) -> NsMetaScenario {
        NsMetaScenario {
            mutant: Mutant::None,
            crashes,
        }
    }

    /// A mutated variant.
    #[must_use]
    pub fn with_mutant(mut self, mutant: Mutant) -> NsMetaScenario {
        self.mutant = mutant;
        self
    }

    /// Derives the scenario's crash points from a fault schedule: each
    /// `DataserverCrash` entry (the schedule's only fail-stop storage
    /// fault) becomes one nameserver crash-reopen point, preserving
    /// the schedule's order. The checker then explores where those
    /// points land relative to the metadata operations.
    #[must_use]
    pub fn from_fault_schedule(schedule: &FaultSchedule) -> NsMetaScenario {
        let crashes = schedule
            .entries()
            .iter()
            .filter(|(_, e)| matches!(e, mayflower_simcore::FaultEvent::DataserverCrash(_)))
            .count();
        NsMetaScenario::new(crashes.max(1))
    }

    fn scripts(&self) -> Vec<Vec<MetaOp>> {
        let mut scripts = vec![
            vec![
                MetaOp::Create("a".into()),
                MetaOp::RecordSize {
                    name: "a".into(),
                    size: 10,
                },
                MetaOp::Rename {
                    from: "a".into(),
                    to: "b".into(),
                },
                MetaOp::Lookup("b".into()),
            ],
            vec![
                MetaOp::Create("b".into()),
                MetaOp::Lookup("a".into()),
                MetaOp::Delete("b".into()),
                MetaOp::Lookup("b".into()),
            ],
            vec![
                MetaOp::Create("c".into()),
                MetaOp::RecordSize {
                    name: "c".into(),
                    size: 5,
                },
                MetaOp::Lookup("c".into()),
            ],
        ];
        if self.crashes > 0 {
            scripts.push(vec![MetaOp::Crash; self.crashes]);
        }
        scripts
    }
}

fn small_topology() -> Arc<Topology> {
    Arc::new(Topology::three_tier(&TreeParams {
        pods: 2,
        racks_per_pod: 2,
        hosts_per_rack: 2,
        aggs_per_pod: 1,
        cores: 1,
        edge_capacity: 1e9,
        oversubscription: 1.0,
        edge_tier_oversub: 1.0,
    }))
}

/// Truncates the last **valid** record of the KV store's WAL — the
/// over-truncation torn-tail mutant. (The real replay truncates only
/// *invalid* tails; dropping a valid record loses a committed update.)
fn drop_last_wal_record(db_dir: &std::path::Path) {
    let wal = db_dir.join("wal.log");
    let Ok(bytes) = std::fs::read(&wal) else {
        return;
    };
    let mut pos = 0usize;
    let mut last_start = None;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]) as usize;
        let end = pos + 8 + len;
        if end > bytes.len() {
            break;
        }
        last_start = Some(pos);
        pos = end;
    }
    if let Some(start) = last_start {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(&wal)
            .expect("reopen wal for truncation");
        f.set_len(start as u64).expect("truncate wal");
    }
}

fn exec(ns: &Nameserver, op: &MetaOp) -> MetaRet {
    let map_err = |e: FsError| match e {
        FsError::NotFound(_) => MetaRet::ErrNotFound,
        FsError::AlreadyExists(_) => MetaRet::ErrAlreadyExists,
        other => panic!("unexpected nameserver error in scenario: {other}"),
    };
    match op {
        MetaOp::Create(n) => ns
            .create(n)
            .map(|_| MetaRet::Created)
            .unwrap_or_else(map_err),
        MetaOp::Delete(n) => ns
            .delete(n)
            .map(|_| MetaRet::Deleted)
            .unwrap_or_else(map_err),
        MetaOp::Rename { from, to } => ns
            .rename(from, to, true)
            .map(|_| MetaRet::Renamed)
            .unwrap_or_else(map_err),
        MetaOp::RecordSize { name, size } => ns
            .record_size(name, *size)
            .map(|()| MetaRet::Recorded)
            .unwrap_or_else(map_err),
        MetaOp::Lookup(n) => ns
            .lookup(n)
            .map(|m| MetaRet::Found(m.size))
            .unwrap_or_else(map_err),
        MetaOp::Crash => unreachable!("crash handled by the run loop"),
    }
}

/// One event: advance client `usize` by one phase.
type Ev = usize;

impl Scenario for NsMetaScenario {
    fn name(&self) -> String {
        format!(
            "ns-meta crashes={} mutant={}",
            self.crashes,
            self.mutant.label()
        )
    }

    fn run(&self, chooser: &mut Chooser) -> ScheduleOutcome {
        let dir = RunDir::new("ns");
        let db_dir = dir.path().join("db");
        let topo = small_topology();
        let config = NameserverConfig::default();
        let mut ns =
            Some(Nameserver::open(topo.clone(), &db_dir, config.clone()).expect("open nameserver"));

        let scripts = self.scripts();
        let mut cursors = vec![0usize; scripts.len()];
        let mut in_flight: Vec<Option<CallId>> = vec![None; scripts.len()];
        let mut history: History<MetaOp, MetaRet> = History::new();

        let mut queue: EventQueue<Ev> = EventQueue::new();
        for (c, script) in scripts.iter().enumerate() {
            if !script.is_empty() {
                queue.schedule(SimTime::ZERO, c);
            }
        }
        while let Some((_, c)) = queue.pop_with(chooser) {
            let op = scripts[c][cursors[c]].clone();
            match in_flight[c].take() {
                None => {
                    // Phase 1: invoke — opens the concurrency window.
                    in_flight[c] = Some(history.invoke(c as u32, op));
                    queue.schedule(SimTime::ZERO, c);
                }
                Some(call) => {
                    // Phase 2: the real call, atomically, plus the
                    // response record.
                    let ret = if matches!(op, MetaOp::Crash) {
                        drop(ns.take());
                        if self.mutant == Mutant::WalTornTail {
                            drop_last_wal_record(&db_dir);
                        }
                        ns = Some(
                            Nameserver::open(topo.clone(), &db_dir, config.clone())
                                .expect("reopen nameserver after crash"),
                        );
                        MetaRet::Recovered
                    } else {
                        exec(ns.as_ref().expect("nameserver is open"), &op)
                    };
                    history.respond(call, ret);
                    cursors[c] += 1;
                    if cursors[c] < scripts[c].len() {
                        queue.schedule(SimTime::ZERO, c);
                    }
                }
            }
        }

        ScheduleOutcome {
            verdict: check_linearizable(&history),
            trace: history.trace(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{Budget, Explorer, StrategyKind};
    use mayflower_simcore::FifoSchedule;

    #[test]
    fn real_protocol_is_linearizable_under_fifo() {
        let s = NsMetaScenario::new(1);
        let mut chooser = Chooser::recording(Box::new(FifoSchedule));
        let out = s.run(&mut chooser);
        assert!(out.verdict.is_ok(), "{:?}", out.verdict);
        assert!(!chooser.decisions().is_empty(), "ready sets did overlap");
    }

    #[test]
    fn real_protocol_survives_random_walks() {
        let s = NsMetaScenario::new(2);
        let explorer = Explorer::new();
        let report = explorer.check(&s, StrategyKind::RandomWalk, 0x4E53, Budget::schedules(12));
        assert!(report.counterexample.is_none());
        assert_eq!(report.explored, 12);
    }

    #[test]
    fn torn_tail_mutant_is_caught_and_minimized() {
        let s = NsMetaScenario::new(1).with_mutant(Mutant::WalTornTail);
        let explorer = Explorer::new();
        let report = explorer.check(&s, StrategyKind::RandomWalk, 1, Budget::schedules(40));
        let cx = report.counterexample.expect("mutant must be caught");
        assert!(
            cx.violation.contains("not linearizable"),
            "{}",
            cx.violation
        );
        // Replaying the minimized schedule reproduces it byte-for-byte.
        let (again, decisions) = explorer.reproduce(&s, &cx.decisions);
        assert_eq!(again.verdict.unwrap_err(), cx.violation);
        assert_eq!(again.trace, cx.trace);
        assert_eq!(decisions, cx.decisions);
    }
}
