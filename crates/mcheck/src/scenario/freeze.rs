//! Update-freeze scenario: the real [`FlowTracker`] raced against an
//! independent re-implementation of Pseudocode 2.
//!
//! One controller admits two flows and issues a `SETBW` that freezes
//! flow 1 until **exactly** t = 2.0 s; a stats poller and the
//! freeze-expiry sweep then both fire at t = 2.0, 3.0 and 5.0. Within
//! each timestamp the scheduler decides whether the poll or the sweep
//! runs first — the boundary race Pseudocode 2's freeze window exists
//! to win: with the real strict `now > freeze_until` expiry, a poll
//! landing exactly on the boundary is refused in *either* order, so
//! the frozen estimate survives; with the mutant's `now >=` sweep, the
//! sweep-before-poll order clears the freeze a tick early and the poll
//! clobbers the estimate the controller just installed.
//!
//! After every event the tracker's bandwidth estimates are compared
//! against the naive model's. The interleaving space is tiny (16
//! schedules), which makes this the bounded-exhaustive demonstration:
//! FIFO happens to run every poll before its sweep and never sees the
//! mutant misbehave — only exploration finds the failing order.

use mayflower_flowserver::{FlowTracker, TrackedFlow};
use mayflower_net::{HostId, LinkId, Path};
use mayflower_sdn::FlowCookie;
use mayflower_simcore::{EventQueue, SimTime};

use crate::history::History;
use crate::scenario::{Mutant, Scenario, ScheduleOutcome};
use crate::strategy::Chooser;

const F1: FlowCookie = FlowCookie(1);
const F2: FlowCookie = FlowCookie(2);

/// The update-freeze boundary-race scenario.
#[derive(Debug, Clone)]
pub struct FreezeScenario {
    /// Which protocol variant to run.
    pub mutant: Mutant,
}

impl FreezeScenario {
    /// The real protocol.
    #[must_use]
    pub fn new() -> FreezeScenario {
        FreezeScenario {
            mutant: Mutant::None,
        }
    }

    /// A mutated variant.
    #[must_use]
    pub fn with_mutant(mut self, mutant: Mutant) -> FreezeScenario {
        self.mutant = mutant;
        self
    }
}

impl Default for FreezeScenario {
    fn default() -> FreezeScenario {
        FreezeScenario::new()
    }
}

/// One scripted tracker event.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Admit a flow with an initial estimate.
    Admit {
        cookie: FlowCookie,
        bw: f64,
        size: f64,
    },
    /// Controller `SETBW` (freezes the flow).
    SetBw { cookie: FlowCookie, bw: f64 },
    /// Stats poll for both flows (measured values from a fixed table).
    Poll,
    /// The clock-side freeze-expiry sweep.
    Sweep,
}

/// Measured (bw, total_bits) per flow for the poll at `now`.
fn poll_table(now: SimTime) -> [(f64, f64); 2] {
    let t = now.secs_since(SimTime::ZERO);
    if t < 2.5 {
        [(1.5e9, 1.0e9), (2.5e9, 4.0e9)]
    } else if t < 4.0 {
        [(1.2e9, 1.4e9), (2.2e9, 6.0e9)]
    } else {
        [(0.8e9, 1.8e9), (1.8e9, 7.5e9)]
    }
}

/// An independent, deliberately naive implementation of Pseudocode 2 —
/// the oracle the real tracker is compared against.
#[derive(Debug, Clone, Copy, Default)]
struct ModelFlow {
    size: f64,
    remaining: f64,
    bw: f64,
    updated_at: f64,
    frozen: bool,
    freeze_until: f64,
}

impl ModelFlow {
    fn admit(bw: f64, size: f64) -> ModelFlow {
        ModelFlow {
            size,
            remaining: size,
            bw,
            ..ModelFlow::default()
        }
    }

    fn set_bw(&mut self, bw: f64, now: f64) {
        self.remaining = (self.remaining - self.bw * (now - self.updated_at)).max(0.0);
        self.updated_at = now;
        self.bw = bw;
        self.freeze_until = now + self.remaining / bw;
        self.frozen = true;
    }

    fn poll(&mut self, measured_bw: f64, total: f64, now: f64) {
        if self.frozen && now <= self.freeze_until {
            return; // Pseudocode 2: the freeze window wins
        }
        self.bw = measured_bw;
        self.remaining = (self.size - total).max(0.0);
        self.updated_at = now;
        self.frozen = false;
    }

    fn sweep(&mut self, now: f64) {
        if self.frozen && now > self.freeze_until {
            self.frozen = false;
        }
    }
}

fn mbps(bw: f64) -> u64 {
    (bw / 1e6).round() as u64
}

impl Scenario for FreezeScenario {
    fn name(&self) -> String {
        format!("update-freeze mutant={}", self.mutant.label())
    }

    fn run(&self, chooser: &mut Chooser) -> ScheduleOutcome {
        let mut tracker = FlowTracker::new();
        let mut model: [ModelFlow; 2] = [ModelFlow::default(); 2];
        let mut history: History<String, String> = History::new();
        let mut violation: Option<String> = None;

        let mut queue: EventQueue<(u32, Ev)> = EventQueue::new();
        // Controller (client 0): admits at t=0, SETBW at t=1 so flow 1's
        // freeze expires at exactly t = 2.0 (remaining 1e9 bits / 1e9
        // bits per sec).
        queue.schedule(
            SimTime::ZERO,
            (
                0,
                Ev::Admit {
                    cookie: F1,
                    bw: 1.0e9,
                    size: 2.0e9,
                },
            ),
        );
        queue.schedule(
            SimTime::ZERO,
            (
                0,
                Ev::Admit {
                    cookie: F2,
                    bw: 2.0e9,
                    size: 8.0e9,
                },
            ),
        );
        queue.schedule(
            SimTime::from_secs(1.0),
            (
                0,
                Ev::SetBw {
                    cookie: F1,
                    bw: 1.0e9,
                },
            ),
        );
        // Poller (client 1) and sweeper (client 2) race at each tick.
        for t in [2.0, 3.0, 5.0] {
            queue.schedule(SimTime::from_secs(t), (1, Ev::Poll));
            queue.schedule(SimTime::from_secs(t), (2, Ev::Sweep));
        }

        while let Some((now, (client, ev))) = queue.pop_with(chooser) {
            let t = now.secs_since(SimTime::ZERO);
            let label = match ev {
                Ev::Admit { cookie, bw, size } => {
                    tracker.insert(TrackedFlow {
                        cookie,
                        path: Path::new(HostId(0), HostId(1), vec![LinkId(cookie.0 as u32 - 1)]),
                        size_bits: size,
                        remaining_bits: size,
                        bw,
                        updated_at: now,
                        frozen: false,
                        freeze_until: SimTime::ZERO,
                    });
                    model[cookie.0 as usize - 1] = ModelFlow::admit(bw, size);
                    format!(
                        "admit(f{}, bw={}M, size={}Mb)",
                        cookie.0,
                        mbps(bw),
                        mbps(size)
                    )
                }
                Ev::SetBw { cookie, bw } => {
                    tracker.set_flow_bw(cookie, bw, now);
                    model[cookie.0 as usize - 1].set_bw(bw, t);
                    format!("setbw(f{}, {}M, t={t})", cookie.0, mbps(bw))
                }
                Ev::Poll => {
                    let table = poll_table(now);
                    for (i, cookie) in [F1, F2].into_iter().enumerate() {
                        let (m_bw, total) = table[i];
                        tracker.apply_stats(cookie, m_bw, total, now, false);
                        model[i].poll(m_bw, total, t);
                    }
                    format!("poll(t={t})")
                }
                Ev::Sweep => {
                    if self.mutant == Mutant::FreezeExpiryBeforePoll {
                        // The off-by-one sweep: `>=` where Pseudocode 2
                        // requires strictly after.
                        for f in tracker.iter_mut() {
                            if f.frozen && now >= f.freeze_until {
                                f.frozen = false;
                            }
                        }
                    } else {
                        tracker.expire_frozen(now);
                    }
                    for f in &mut model {
                        f.sweep(t);
                    }
                    format!("sweep(t={t})")
                }
            };

            let b1 = tracker.get(F1).map_or(0, |f| mbps(f.bw));
            let b2 = tracker.get(F2).map_or(0, |f| mbps(f.bw));
            let call = history.invoke(client, label.clone());
            history.respond(call, format!("f1.bw={b1}M f2.bw={b2}M"));

            if violation.is_none() {
                for (i, cookie) in [F1, F2].into_iter().enumerate() {
                    let Some(f) = tracker.get(cookie) else {
                        continue;
                    };
                    let want = model[i].bw;
                    if (f.bw - want).abs() > 1e-3 {
                        violation = Some(format!(
                            "frozen estimate diverged after {label}: flow f{} has \
                             bw={}M but Pseudocode 2 requires {}M",
                            cookie.0,
                            mbps(f.bw),
                            mbps(want)
                        ));
                    }
                }
            }
        }

        ScheduleOutcome {
            verdict: violation.map_or(Ok(()), Err),
            trace: history.trace(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{Budget, Explorer, StrategyKind};

    #[test]
    fn real_tracker_matches_pseudocode_two_exhaustively() {
        let s = FreezeScenario::new();
        let report = Explorer::new().check(&s, StrategyKind::Exhaustive, 0, Budget::schedules(64));
        assert!(report.exhausted, "16-schedule space fits the budget");
        assert!(
            report.counterexample.is_none(),
            "{}",
            report.counterexample.unwrap().render()
        );
    }

    #[test]
    fn fifo_misses_the_expiry_mutant() {
        // The poll is scheduled before the sweep at each tick, so the
        // FIFO order never exercises the `>=` off-by-one: this is why
        // the checker explores.
        let s = FreezeScenario::new().with_mutant(Mutant::FreezeExpiryBeforePoll);
        let report = Explorer::new().check(&s, StrategyKind::Fifo, 0, Budget::schedules(1));
        assert!(report.counterexample.is_none());
    }

    #[test]
    fn exhaustive_catches_the_expiry_mutant() {
        let s = FreezeScenario::new().with_mutant(Mutant::FreezeExpiryBeforePoll);
        let explorer = Explorer::new();
        let report = explorer.check(&s, StrategyKind::Exhaustive, 0, Budget::schedules(64));
        let cx = report.counterexample.expect("mutant must be caught");
        assert!(cx.violation.contains("diverged"), "{}", cx.violation);
        // The minimized schedule replays byte-for-byte.
        let (again, decisions) = explorer.reproduce(&s, &cx.decisions);
        assert_eq!(again.verdict.unwrap_err(), cx.violation);
        assert_eq!(again.trace, cx.trace);
        assert_eq!(decisions, cx.decisions);
    }
}
