//! Wing–Gong linearizability checker for nameserver metadata
//! histories.
//!
//! The nameserver's namespace operations (`create`, `delete`,
//! `rename`, `record_size`, `lookup`) claim to be linearizable: every
//! completed operation appears to take effect atomically at some
//! instant between its invocation and its response. The checker
//! searches for such a witness order with the classic Wing–Gong
//! algorithm: repeatedly pick a *minimal* operation (one not
//! real-time-preceded by any other unlinearized operation), apply it
//! to a sequential model of the namespace, and require the model's
//! answer to match the recorded response. Operations still pending at
//! the end of the history may have taken effect or not — both branches
//! are explored. The search is memoized on (linearized-set, model
//! state), which keeps the worst case well inside the model checker's
//! budget for the history sizes the scenarios produce.

use std::collections::{BTreeMap, HashSet};

use crate::history::{Event, History};

/// A nameserver metadata operation, as driven by the model-checking
/// scenarios.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaOp {
    /// `Nameserver::create(name)`.
    Create(String),
    /// `Nameserver::delete(name)`.
    Delete(String),
    /// `Nameserver::rename(from, to, overwrite = true)`.
    Rename {
        /// Source name.
        from: String,
        /// Destination name (overwritten if present).
        to: String,
    },
    /// `Nameserver::record_size(name, size)`.
    RecordSize {
        /// File name.
        name: String,
        /// New size to record.
        size: u64,
    },
    /// `Nameserver::lookup(name)`.
    Lookup(String),
    /// A nameserver crash + reopen (WAL replay). Not a client
    /// operation: it must behave as a no-op on committed state, which
    /// is exactly what modelling it as an identity operation asserts —
    /// any state lost (or resurrected) across the crash shows up as
    /// some *other* operation with no valid linearization point.
    Crash,
}

impl std::fmt::Display for MetaOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetaOp::Create(n) => write!(f, "create({n})"),
            MetaOp::Delete(n) => write!(f, "delete({n})"),
            MetaOp::Rename { from, to } => write!(f, "rename({from}->{to})"),
            MetaOp::RecordSize { name, size } => write!(f, "record_size({name},{size})"),
            MetaOp::Lookup(n) => write!(f, "lookup({n})"),
            MetaOp::Crash => write!(f, "crash-recover"),
        }
    }
}

/// The response of a [`MetaOp`], reduced to what the sequential model
/// can predict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaRet {
    /// Create succeeded.
    Created,
    /// Delete succeeded.
    Deleted,
    /// Rename succeeded.
    Renamed,
    /// Record-size succeeded.
    Recorded,
    /// Lookup found the file with this recorded size.
    Found(u64),
    /// The named file does not exist.
    ErrNotFound,
    /// A file with that name already exists.
    ErrAlreadyExists,
    /// The nameserver reopened after a crash.
    Recovered,
}

impl std::fmt::Display for MetaRet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetaRet::Created => write!(f, "created"),
            MetaRet::Deleted => write!(f, "deleted"),
            MetaRet::Renamed => write!(f, "renamed"),
            MetaRet::Recorded => write!(f, "recorded"),
            MetaRet::Found(s) => write!(f, "found(size={s})"),
            MetaRet::ErrNotFound => write!(f, "err(not-found)"),
            MetaRet::ErrAlreadyExists => write!(f, "err(already-exists)"),
            MetaRet::Recovered => write!(f, "recovered"),
        }
    }
}

/// The sequential specification: name → recorded size.
type Model = BTreeMap<String, u64>;

/// Applies `op` to the sequential model, returning the specified
/// response.
fn apply(op: &MetaOp, state: &mut Model) -> MetaRet {
    match op {
        MetaOp::Create(n) => {
            if state.contains_key(n) {
                MetaRet::ErrAlreadyExists
            } else {
                state.insert(n.clone(), 0);
                MetaRet::Created
            }
        }
        MetaOp::Delete(n) => {
            if state.remove(n).is_some() {
                MetaRet::Deleted
            } else {
                MetaRet::ErrNotFound
            }
        }
        MetaOp::Rename { from, to } => match state.remove(from) {
            None => MetaRet::ErrNotFound,
            Some(size) => {
                state.insert(to.clone(), size);
                MetaRet::Renamed
            }
        },
        MetaOp::RecordSize { name, size } => match state.get_mut(name) {
            None => MetaRet::ErrNotFound,
            Some(s) => {
                *s = *size;
                MetaRet::Recorded
            }
        },
        MetaOp::Lookup(n) => match state.get(n) {
            Some(s) => MetaRet::Found(*s),
            None => MetaRet::ErrNotFound,
        },
        MetaOp::Crash => MetaRet::Recovered,
    }
}

/// One call flattened for the search.
struct CallRec {
    op: MetaOp,
    /// `None` for pending calls.
    ret: Option<MetaRet>,
    invoke: usize,
    /// `usize::MAX` for pending calls (they real-time-precede
    /// nothing).
    resp: usize,
}

/// Checks a metadata history for linearizability against the
/// sequential namespace model.
///
/// # Errors
///
/// Returns a violation message when no linearization exists.
///
/// # Panics
///
/// Panics on histories of more than 64 calls (the scenarios stay far
/// below).
pub fn check_linearizable(history: &History<MetaOp, MetaRet>) -> Result<(), String> {
    let mut recs: Vec<CallRec> = Vec::new();
    for (i, e) in history.events().iter().enumerate() {
        match e {
            Event::Invoke { call, op, .. } => {
                assert_eq!(call.0 as usize, recs.len(), "calls are numbered in order");
                recs.push(CallRec {
                    op: op.clone(),
                    ret: None,
                    invoke: i,
                    resp: usize::MAX,
                });
            }
            Event::Response { call, ret } => {
                let rec = &mut recs[call.0 as usize];
                rec.ret = Some(*ret);
                rec.resp = i;
            }
        }
    }
    assert!(recs.len() <= 64, "history too large for the bitmask search");
    let completed: u64 = recs
        .iter()
        .enumerate()
        .filter(|(_, r)| r.ret.is_some())
        .map(|(i, _)| 1u64 << i)
        .sum();

    let mut memo: HashSet<(u64, String)> = HashSet::new();
    let mut state = Model::new();
    if search(&recs, completed, 0, &mut state, &mut memo) {
        Ok(())
    } else {
        let done = completed.count_ones();
        let pending = recs.len() as u32 - done;
        Err(format!(
            "not linearizable: no witness order exists for {done} completed \
             metadata ops ({pending} pending) under the sequential namespace model"
        ))
    }
}

fn encode(state: &Model) -> String {
    let mut s = String::new();
    for (k, v) in state {
        s.push_str(k);
        s.push('=');
        s.push_str(&v.to_string());
        s.push(';');
    }
    s
}

fn search(
    recs: &[CallRec],
    completed: u64,
    mask: u64,
    state: &mut Model,
    memo: &mut HashSet<(u64, String)>,
) -> bool {
    if mask & completed == completed {
        return true;
    }
    if !memo.insert((mask, encode(state))) {
        return false;
    }
    for i in 0..recs.len() {
        let bit = 1u64 << i;
        if mask & bit != 0 {
            continue;
        }
        // Minimality: no other unlinearized call returned before this
        // one was invoked.
        let blocked = recs.iter().enumerate().any(|(j, r)| {
            j != i && mask & (1u64 << j) == 0 && r.resp != usize::MAX && r.resp < recs[i].invoke
        });
        if blocked {
            continue;
        }
        let mut next = state.clone();
        let got = apply(&recs[i].op, &mut next);
        match recs[i].ret {
            // Completed call: the model must reproduce its response.
            Some(expect) if got != expect => continue,
            // Pending call: it *may* have taken effect (this branch);
            // the "never took effect" branch is implicit, since the
            // success condition only requires completed calls.
            Some(_) | None => {}
        }
        if search(recs, completed, mask | bit, &mut next, memo) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(ops: &[(u32, MetaOp, MetaRet)]) -> History<MetaOp, MetaRet> {
        let mut h = History::new();
        for (client, op, ret) in ops {
            let c = h.invoke(*client, op.clone());
            h.respond(c, *ret);
        }
        h
    }

    #[test]
    fn sequential_valid_history_passes() {
        let h = seq(&[
            (0, MetaOp::Create("a".into()), MetaRet::Created),
            (
                0,
                MetaOp::RecordSize {
                    name: "a".into(),
                    size: 7,
                },
                MetaRet::Recorded,
            ),
            (1, MetaOp::Lookup("a".into()), MetaRet::Found(7)),
            (1, MetaOp::Delete("a".into()), MetaRet::Deleted),
            (0, MetaOp::Lookup("a".into()), MetaRet::ErrNotFound),
        ]);
        assert!(check_linearizable(&h).is_ok());
    }

    #[test]
    fn overlapping_ops_may_reorder() {
        // lookup(a) -> not-found overlaps create(a) -> created: the
        // lookup may linearize first.
        let mut h = History::new();
        let c = h.invoke(0, MetaOp::Create("a".into()));
        let l = h.invoke(1, MetaOp::Lookup("a".into()));
        h.respond(c, MetaRet::Created);
        h.respond(l, MetaRet::ErrNotFound);
        assert!(check_linearizable(&h).is_ok());
    }

    #[test]
    fn stale_read_after_response_is_a_violation() {
        // create(a) completed strictly before lookup(a) began, so
        // not-found has no linearization point.
        let h = seq(&[
            (0, MetaOp::Create("a".into()), MetaRet::Created),
            (1, MetaOp::Lookup("a".into()), MetaRet::ErrNotFound),
        ]);
        let err = check_linearizable(&h).unwrap_err();
        assert!(err.contains("not linearizable"), "{err}");
    }

    #[test]
    fn double_create_is_a_violation() {
        let h = seq(&[
            (0, MetaOp::Create("a".into()), MetaRet::Created),
            (1, MetaOp::Create("a".into()), MetaRet::Created),
        ]);
        assert!(check_linearizable(&h).is_err());
    }

    #[test]
    fn pending_op_may_explain_an_observation() {
        // A delete that never returned may still have taken effect,
        // which is the only way the final not-found is legal.
        let mut h = History::new();
        let d = h.invoke(2, MetaOp::Delete("a".into()));
        let c = h.invoke(0, MetaOp::Create("a".into()));
        h.respond(c, MetaRet::Created);
        let l = h.invoke(1, MetaOp::Lookup("a".into()));
        h.respond(l, MetaRet::ErrNotFound);
        let _ = d; // never responds
        assert!(check_linearizable(&h).is_ok());
    }

    #[test]
    fn crash_is_an_identity_operation() {
        let h = seq(&[
            (0, MetaOp::Create("a".into()), MetaRet::Created),
            (3, MetaOp::Crash, MetaRet::Recovered),
            (1, MetaOp::Lookup("a".into()), MetaRet::Found(0)),
        ]);
        assert!(check_linearizable(&h).is_ok());
        // Losing the create across the crash is a violation.
        let lost = seq(&[
            (0, MetaOp::Create("a".into()), MetaRet::Created),
            (3, MetaOp::Crash, MetaRet::Recovered),
            (1, MetaOp::Lookup("a".into()), MetaRet::ErrNotFound),
        ]);
        assert!(check_linearizable(&lost).is_err());
    }

    #[test]
    fn rename_moves_size() {
        let h = seq(&[
            (0, MetaOp::Create("a".into()), MetaRet::Created),
            (
                0,
                MetaOp::RecordSize {
                    name: "a".into(),
                    size: 9,
                },
                MetaRet::Recorded,
            ),
            (
                0,
                MetaOp::Rename {
                    from: "a".into(),
                    to: "b".into(),
                },
                MetaRet::Renamed,
            ),
            (1, MetaOp::Lookup("b".into()), MetaRet::Found(9)),
            (1, MetaOp::Lookup("a".into()), MetaRet::ErrNotFound),
        ]);
        assert!(check_linearizable(&h).is_ok());
    }

    #[test]
    fn half_applied_rename_is_a_violation() {
        // Both the old and the new name visible after a completed
        // rename — the torn-tail WAL mutant's signature.
        let h = seq(&[
            (0, MetaOp::Create("a".into()), MetaRet::Created),
            (
                0,
                MetaOp::Rename {
                    from: "a".into(),
                    to: "b".into(),
                },
                MetaRet::Renamed,
            ),
            (3, MetaOp::Crash, MetaRet::Recovered),
            (1, MetaOp::Lookup("b".into()), MetaRet::Found(0)),
            (1, MetaOp::Lookup("a".into()), MetaRet::Found(0)),
        ]);
        assert!(check_linearizable(&h).is_err());
    }
}
