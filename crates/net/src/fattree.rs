//! k-ary fat-tree topologies (Al-Fares et al., SIGCOMM '08 — the
//! paper's reference [5]).
//!
//! The paper positions Mayflower for **oversubscribed** hierarchies,
//! noting that full-bisection designs like the fat-tree "increase the
//! bisection bandwidth" but that "oversubscribed multi-tier
//! hierarchical topologies are still prevalent" (§2.2). Building the
//! fat-tree lets experiments measure how much of the co-design benefit
//! survives when the network stops being the bottleneck.
//!
//! A k-ary fat-tree (k even) has `k` pods; each pod has `k/2` edge
//! switches and `k/2` aggregation switches; each edge switch serves
//! `k/2` hosts and links to every aggregation switch in its pod; there
//! are `(k/2)²` core switches, with aggregation switch `a` of every
//! pod linking to cores `a·k/2 .. (a+1)·k/2`. All links share one
//! capacity, giving full bisection bandwidth: `k³/4` hosts.

use crate::ids::{NodeKind, PodId, RackId};
use crate::topology::Topology;
use crate::Bps;

/// Parameters of a k-ary fat-tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FatTreeParams {
    /// The switch radix `k` (even, ≥ 2).
    pub k: usize,
    /// Capacity of every link, bits/sec.
    pub link_capacity: Bps,
}

impl FatTreeParams {
    /// Number of hosts: `k³/4`.
    #[must_use]
    pub fn host_count(&self) -> usize {
        self.k * self.k * self.k / 4
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.k < 2 || !self.k.is_multiple_of(2) {
            return Err("fat-tree radix k must be even and >= 2".into());
        }
        if !(self.link_capacity.is_finite() && self.link_capacity > 0.0) {
            return Err("link capacity must be positive and finite".into());
        }
        Ok(())
    }
}

impl Topology {
    /// Builds a k-ary fat-tree. Each edge switch's hosts form a "rack"
    /// for locality/fault-domain purposes.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters.
    #[must_use]
    pub fn fat_tree(params: &FatTreeParams) -> Topology {
        params
            .validate()
            .unwrap_or_else(|e| panic!("invalid FatTreeParams: {e}"));
        let k = params.k;
        let half = k / 2;
        let cap = params.link_capacity;
        let mut topo = Topology::new();

        // Core switches: (k/2)² of them, grouped by the aggregation
        // position they connect to.
        let cores: Vec<Vec<_>> = (0..half)
            .map(|_| {
                (0..half)
                    .map(|_| topo.add_node(NodeKind::CoreSwitch, None, None))
                    .collect()
            })
            .collect();

        let mut rack_no = 0u32;
        for p in 0..k {
            let pod = PodId(p as u32);
            let aggs: Vec<_> = (0..half)
                .map(|_| topo.add_node(NodeKind::AggSwitch, None, Some(pod)))
                .collect();
            // Aggregation position a connects to core group a.
            for (a, &agg) in aggs.iter().enumerate() {
                for &core in &cores[a] {
                    topo.add_duplex_link(agg, core, cap);
                }
            }
            for _ in 0..half {
                let rack = RackId(rack_no);
                rack_no += 1;
                let edge = topo.add_node(NodeKind::EdgeSwitch, Some(rack), Some(pod));
                topo.set_rack_edge(rack, edge);
                for &agg in &aggs {
                    topo.add_duplex_link(edge, agg, cap);
                }
                for _ in 0..half {
                    let host = topo.add_node(NodeKind::Host, Some(rack), Some(pod));
                    topo.register_host(host, rack, pod);
                    topo.add_duplex_link(host, edge, cap);
                }
            }
        }
        topo.freeze();
        topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::HostId;
    use crate::GBPS;

    fn ft(k: usize) -> Topology {
        Topology::fat_tree(&FatTreeParams {
            k,
            link_capacity: GBPS,
        })
    }

    #[test]
    fn k4_shape() {
        let t = ft(4);
        assert_eq!(t.host_count(), 16);
        assert_eq!(t.rack_count(), 8); // k·k/2 edge switches
        assert_eq!(t.pod_count(), 4);
        let cores = t
            .nodes()
            .iter()
            .filter(|n| n.kind() == NodeKind::CoreSwitch)
            .count();
        assert_eq!(cores, 4); // (k/2)²
        let aggs = t
            .nodes()
            .iter()
            .filter(|n| n.kind() == NodeKind::AggSwitch)
            .count();
        assert_eq!(aggs, 8); // k·k/2
    }

    #[test]
    fn k8_host_count() {
        assert_eq!(ft(8).host_count(), 128);
    }

    #[test]
    fn path_lengths_match_tiers() {
        let t = ft(4);
        // Same rack (same edge switch): 2 hops.
        assert!(t
            .shortest_paths(HostId(0), HostId(1))
            .iter()
            .all(|p| p.len() == 2));
        // Same pod, different edge: 4 hops, k/2 = 2 choices.
        let same_pod = t.shortest_paths(HostId(0), HostId(2));
        assert!(same_pod.iter().all(|p| p.len() == 4));
        assert_eq!(same_pod.len(), 2);
        // Cross pod: 6 hops, (k/2)² = 4 distinct core paths.
        let cross = t.shortest_paths(HostId(0), HostId(15));
        assert!(cross.iter().all(|p| p.len() == 6));
        assert_eq!(cross.len(), 4);
        for p in cross {
            assert!(p.validate(&t));
        }
    }

    #[test]
    fn full_bisection_supports_pairwise_line_rate() {
        // In a k=4 fat-tree, 8 simultaneous cross-pod flows on disjoint
        // core paths can all run at line rate. Verify the capacity
        // exists: each host's uplink is the only 1-flow link if core
        // paths are spread.
        let t = ft(4);
        // Aggregate core capacity equals aggregate host capacity per
        // direction: 16 core links × 1 Gbps vs 16 hosts × 1 Gbps.
        let core_links = t
            .links()
            .iter()
            .filter(|l| {
                t.node(l.src()).kind() == NodeKind::CoreSwitch
                    || t.node(l.dst()).kind() == NodeKind::CoreSwitch
            })
            .count();
        assert_eq!(core_links, 32); // 16 cables × 2 directions
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_radix_rejected() {
        let _ = Topology::fat_tree(&FatTreeParams {
            k: 3,
            link_capacity: GBPS,
        });
    }

    #[test]
    fn locality_classification_works() {
        use crate::locality::Locality;
        let t = ft(4);
        assert_eq!(
            Locality::classify(&t, HostId(0), HostId(1)),
            Locality::SameRack
        );
        assert_eq!(
            Locality::classify(&t, HostId(0), HostId(2)),
            Locality::SamePod
        );
        assert_eq!(
            Locality::classify(&t, HostId(0), HostId(15)),
            Locality::CrossPod
        );
    }
}
