//! Equal-cost multipath (ECMP) path selection.
//!
//! ECMP (RFC 2992) hashes flow-identifying packet-header fields onto
//! one of the equal-length shortest paths. It is oblivious to load,
//! which is exactly the weakness the paper exploits: elephant flows
//! that hash onto the same link congest it persistently (§2.4).

use serde::{Deserialize, Serialize};

use crate::ids::HostId;
use crate::path::Path;
use crate::topology::Topology;

/// The header fields ECMP hashes: the flow five-tuple, reduced here to
/// source host, destination host and a per-flow discriminator standing
/// in for the ephemeral port pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowKey {
    /// Source host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Per-flow discriminator (e.g. a flow id or port pair hash).
    pub flow_discriminator: u64,
}

impl FlowKey {
    /// Creates a flow key.
    #[must_use]
    pub fn new(src: HostId, dst: HostId, flow_discriminator: u64) -> FlowKey {
        FlowKey {
            src,
            dst,
            flow_discriminator,
        }
    }

    /// A deterministic 64-bit hash of the key (FNV-1a). Stable across
    /// runs and platforms so simulations are reproducible.
    #[must_use]
    pub fn stable_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for b in self
            .src
            .0
            .to_le_bytes()
            .into_iter()
            .chain(self.dst.0.to_le_bytes())
            .chain(self.flow_discriminator.to_le_bytes())
        {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        h
    }
}

/// Selects the ECMP path for a flow: a stable hash of the flow key over
/// the equal-length shortest paths between its endpoints.
///
/// Returns `None` when the endpoints coincide (no network path).
///
/// # Example
///
/// ```
/// use mayflower_net::{ecmp_path, FlowKey, HostId, Topology, TreeParams};
///
/// let topo = Topology::three_tier(&TreeParams::paper_testbed());
/// let key = FlowKey::new(HostId(0), HostId(20), 7);
/// let path = ecmp_path(&topo, key).expect("distinct hosts have a path");
/// assert_eq!(path.len(), 6); // cross-pod
/// // Same key, same path — ECMP is deterministic per flow.
/// assert_eq!(ecmp_path(&topo, key), Some(path));
/// ```
#[must_use]
pub fn ecmp_path(topo: &Topology, key: FlowKey) -> Option<Path> {
    let paths = topo.shortest_paths(key.src, key.dst);
    if paths.is_empty() {
        return None;
    }
    let idx = (key.stable_hash() % paths.len() as u64) as usize;
    Some(paths[idx].clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeParams;

    #[test]
    fn deterministic_per_key() {
        let t = Topology::three_tier(&TreeParams::paper_testbed());
        let k = FlowKey::new(HostId(1), HostId(33), 42);
        assert_eq!(ecmp_path(&t, k), ecmp_path(&t, k));
    }

    #[test]
    fn different_flows_spread_over_paths() {
        let t = Topology::three_tier(&TreeParams::paper_testbed());
        let mut seen = std::collections::HashSet::new();
        for d in 0..64 {
            let k = FlowKey::new(HostId(0), HostId(20), d);
            seen.insert(ecmp_path(&t, k).unwrap());
        }
        // 8 cross-pod paths exist; hashing should hit several.
        assert!(seen.len() >= 4, "only {} distinct paths used", seen.len());
    }

    #[test]
    fn same_host_has_no_path() {
        let t = Topology::three_tier(&TreeParams::paper_testbed());
        assert!(ecmp_path(&t, FlowKey::new(HostId(3), HostId(3), 0)).is_none());
    }

    #[test]
    fn selected_path_is_valid_shortest() {
        let t = Topology::three_tier(&TreeParams::paper_testbed());
        for d in 0..16 {
            let k = FlowKey::new(HostId(2), HostId(45), d);
            let p = ecmp_path(&t, k).unwrap();
            assert!(p.validate(&t));
            assert_eq!(p.len(), 6);
        }
    }

    #[test]
    fn stable_hash_differs_on_discriminator() {
        let a = FlowKey::new(HostId(0), HostId(1), 1).stable_hash();
        let b = FlowKey::new(HostId(0), HostId(1), 2).stable_hash();
        assert_ne!(a, b);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::tree::TreeParams;
    use proptest::prelude::*;

    proptest! {
        /// Every ECMP selection is one of the shortest paths and is
        /// stable under repetition.
        #[test]
        fn ecmp_always_picks_a_shortest_path(
            src in 0u32..64, dst in 0u32..64, disc in any::<u64>()
        ) {
            let t = Topology::three_tier(&TreeParams::paper_testbed());
            let key = FlowKey::new(HostId(src), HostId(dst), disc);
            let choice = ecmp_path(&t, key);
            let all = t.shortest_paths(HostId(src), HostId(dst));
            match choice {
                None => prop_assert!(all.is_empty()),
                Some(p) => {
                    prop_assert!(all.contains(&p));
                    prop_assert_eq!(ecmp_path(&t, key), Some(p));
                }
            }
        }
    }
}
