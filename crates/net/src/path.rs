//! Network paths: ordered sequences of directed links between hosts.

use serde::{Deserialize, Serialize};

use crate::ids::{HostId, LinkId};
use crate::topology::Topology;

/// An ordered sequence of directed links from a source host to a
/// destination host.
///
/// Produced by [`Topology::shortest_paths`]; consumed by the flow
/// simulator, the SDN controller (to install flow rules at each hop)
/// and the Flowserver's cost function.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Path {
    src: HostId,
    dst: HostId,
    links: Vec<LinkId>,
}

impl Path {
    /// Creates a path. The link sequence is trusted here; use
    /// [`Path::validate`] to check connectivity against a topology.
    #[must_use]
    pub fn new(src: HostId, dst: HostId, links: Vec<LinkId>) -> Path {
        Path { src, dst, links }
    }

    /// Source host.
    #[must_use]
    pub fn src(&self) -> HostId {
        self.src
    }

    /// Destination host.
    #[must_use]
    pub fn dst(&self) -> HostId {
        self.dst
    }

    /// The links, in order from source to destination.
    #[must_use]
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// Number of links (hops).
    #[must_use]
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the path has no links (a degenerate same-host path).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Whether this path shares any link with `other`. Subflows of a
    /// split read are steered to disjoint paths to avoid sharing a
    /// bottleneck (§4.3).
    #[must_use]
    pub fn shares_link_with(&self, other: &Path) -> bool {
        self.links.iter().any(|l| other.links.contains(l))
    }

    /// Checks that the path is connected in `topo`: starts at `src`'s
    /// node, ends at `dst`'s node, and each link starts where the
    /// previous one ended.
    #[must_use]
    pub fn validate(&self, topo: &Topology) -> bool {
        if self.links.is_empty() {
            return self.src == self.dst;
        }
        let mut cur = topo.host_node(self.src);
        for &l in &self.links {
            let link = topo.link(l);
            if link.src() != cur {
                return false;
            }
            cur = link.dst();
        }
        cur == topo.host_node(self.dst)
    }

    /// The minimum link capacity along the path — an upper bound on any
    /// flow's achievable rate.
    ///
    /// # Panics
    ///
    /// Panics if the path is empty.
    #[must_use]
    pub fn min_capacity(&self, topo: &Topology) -> f64 {
        self.links
            .iter()
            .map(|&l| topo.link(l).capacity())
            .fold(f64::INFINITY, f64::min)
    }
}

impl std::fmt::Display for Path {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}→{} via [", self.src, self.dst)?;
        for (i, l) in self.links.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{NodeKind, PodId, RackId};
    use crate::GBPS;

    fn line_topo() -> (Topology, HostId, HostId) {
        let mut t = Topology::new();
        let sw = t.add_node(NodeKind::EdgeSwitch, Some(RackId(0)), Some(PodId(0)));
        let h0 = t.add_node(NodeKind::Host, Some(RackId(0)), Some(PodId(0)));
        let h1 = t.add_node(NodeKind::Host, Some(RackId(0)), Some(PodId(0)));
        let a = t.register_host(h0, RackId(0), PodId(0));
        let b = t.register_host(h1, RackId(0), PodId(0));
        t.set_rack_edge(RackId(0), sw);
        t.add_duplex_link(h0, sw, GBPS);
        t.add_duplex_link(h1, sw, 2.0 * GBPS);
        t.freeze();
        (t, a, b)
    }

    #[test]
    fn validate_accepts_real_path() {
        let (t, a, b) = line_topo();
        let p = &t.shortest_paths(a, b)[0];
        assert!(p.validate(&t));
    }

    #[test]
    fn validate_rejects_disconnected() {
        let (t, a, b) = line_topo();
        let real = &t.shortest_paths(a, b)[0];
        // Reverse the link order: no longer connected.
        let links: Vec<LinkId> = real.links().iter().rev().copied().collect();
        let bogus = Path::new(a, b, links);
        assert!(!bogus.validate(&t));
    }

    #[test]
    fn validate_rejects_wrong_endpoints() {
        let (t, a, b) = line_topo();
        let real = t.shortest_paths(a, b)[0].clone();
        let swapped = Path::new(b, a, real.links().to_vec());
        assert!(!swapped.validate(&t));
    }

    #[test]
    fn empty_path_is_same_host_only() {
        let (t, a, b) = line_topo();
        assert!(Path::new(a, a, vec![]).validate(&t));
        assert!(!Path::new(a, b, vec![]).validate(&t));
    }

    #[test]
    fn min_capacity_is_bottleneck() {
        let (t, a, b) = line_topo();
        let p = &t.shortest_paths(a, b)[0];
        // host a uplink is 1 Gbps, host b downlink is 2 Gbps.
        assert_eq!(p.min_capacity(&t), GBPS);
    }

    #[test]
    fn shares_link_with_detects_overlap() {
        let (t, a, b) = line_topo();
        let p = t.shortest_paths(a, b)[0].clone();
        let q = p.clone();
        assert!(p.shares_link_with(&q));
        let disjoint = Path::new(a, b, vec![]);
        assert!(!p.shares_link_with(&disjoint));
    }

    #[test]
    fn display_is_informative() {
        let (t, a, b) = line_topo();
        let p = &t.shortest_paths(a, b)[0];
        let s = p.to_string();
        assert!(s.contains("h0"));
        assert!(s.contains("via"));
    }
}
