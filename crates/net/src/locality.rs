//! Client/replica locality classification.

use serde::{Deserialize, Serialize};

use crate::ids::HostId;
use crate::topology::Topology;

/// Where a client sits relative to a replica host (§6.1.1's staggered
/// placement distribution `(R, P, O)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Locality {
    /// Same physical machine (no network traffic; the paper excludes
    /// this case from its experiments).
    SameHost,
    /// Same rack — 2-hop paths.
    SameRack,
    /// Same pod, different rack — 4-hop paths.
    SamePod,
    /// Different pod — 6-hop paths crossing the core tier.
    CrossPod,
}

impl Locality {
    /// Classifies the relationship between two hosts in `topo`.
    #[must_use]
    pub fn classify(topo: &Topology, a: HostId, b: HostId) -> Locality {
        if a == b {
            Locality::SameHost
        } else if topo.rack_of(a) == topo.rack_of(b) {
            Locality::SameRack
        } else if topo.pod_of(a) == topo.pod_of(b) {
            Locality::SamePod
        } else {
            Locality::CrossPod
        }
    }

    /// The shortest-path length between hosts with this relationship in
    /// a 3-tier tree (§4.2: "2, 4 or 6").
    #[must_use]
    pub fn hop_count(self) -> usize {
        match self {
            Locality::SameHost => 0,
            Locality::SameRack => 2,
            Locality::SamePod => 4,
            Locality::CrossPod => 6,
        }
    }
}

impl std::fmt::Display for Locality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Locality::SameHost => "same-host",
            Locality::SameRack => "same-rack",
            Locality::SamePod => "same-pod",
            Locality::CrossPod => "cross-pod",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeParams;

    #[test]
    fn classification_matches_tree_layout() {
        let t = Topology::three_tier(&TreeParams::paper_testbed());
        assert_eq!(
            Locality::classify(&t, HostId(0), HostId(0)),
            Locality::SameHost
        );
        assert_eq!(
            Locality::classify(&t, HostId(0), HostId(1)),
            Locality::SameRack
        );
        assert_eq!(
            Locality::classify(&t, HostId(0), HostId(5)),
            Locality::SamePod
        );
        assert_eq!(
            Locality::classify(&t, HostId(0), HostId(20)),
            Locality::CrossPod
        );
    }

    #[test]
    fn hop_counts_match_shortest_paths() {
        let t = Topology::three_tier(&TreeParams::paper_testbed());
        for (a, b) in [(0u32, 1u32), (0, 5), (0, 20)] {
            let loc = Locality::classify(&t, HostId(a), HostId(b));
            let paths = t.shortest_paths(HostId(a), HostId(b));
            assert!(paths.iter().all(|p| p.len() == loc.hop_count()));
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Locality::SameRack.to_string(), "same-rack");
        assert_eq!(Locality::CrossPod.to_string(), "cross-pod");
    }

    #[test]
    fn ordering_reflects_distance() {
        assert!(Locality::SameHost < Locality::SameRack);
        assert!(Locality::SameRack < Locality::SamePod);
        assert!(Locality::SamePod < Locality::CrossPod);
    }
}
