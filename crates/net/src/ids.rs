//! Typed identifiers for topology entities.
//!
//! Newtypes keep host, rack, pod, node and link identifiers statically
//! distinct (C-NEWTYPE): a `HostId` can never be passed where a
//! `LinkId` is expected, which matters in a codebase that juggles all
//! of them in the same algorithms.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index. Useful for dense `Vec` indexing.
            #[must_use]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// Identifies a node (host or switch) in a [`crate::Topology`].
    NodeId,
    "n"
);
id_type!(
    /// Identifies a host (server) — an index into [`crate::Topology::hosts`].
    HostId,
    "h"
);
id_type!(
    /// Identifies a directed link in a [`crate::Topology`].
    LinkId,
    "l"
);
id_type!(
    /// Identifies a rack (the set of hosts under one edge switch).
    RackId,
    "r"
);
id_type!(
    /// Identifies a pod (the racks sharing a set of aggregation
    /// switches; §3.1 of the paper).
    PodId,
    "p"
);

/// The role of a node in the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A server that can run dataservers and clients.
    Host,
    /// A top-of-rack (edge) switch.
    EdgeSwitch,
    /// A pod-level aggregation switch.
    AggSwitch,
    /// A core switch joining pods.
    CoreSwitch,
}

impl NodeKind {
    /// Whether this node is a switch of any tier.
    #[must_use]
    pub fn is_switch(self) -> bool {
        !matches!(self, NodeKind::Host)
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeKind::Host => "host",
            NodeKind::EdgeSwitch => "edge",
            NodeKind::AggSwitch => "agg",
            NodeKind::CoreSwitch => "core",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefixes() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(HostId(0).to_string(), "h0");
        assert_eq!(LinkId(12).to_string(), "l12");
        assert_eq!(RackId(1).to_string(), "r1");
        assert_eq!(PodId(2).to_string(), "p2");
    }

    #[test]
    fn ids_index() {
        assert_eq!(HostId(7).index(), 7);
        let u: usize = LinkId(9).into();
        assert_eq!(u, 9);
    }

    #[test]
    fn node_kind_switch_classification() {
        assert!(!NodeKind::Host.is_switch());
        assert!(NodeKind::EdgeSwitch.is_switch());
        assert!(NodeKind::AggSwitch.is_switch());
        assert!(NodeKind::CoreSwitch.is_switch());
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(HostId(1));
        set.insert(HostId(1));
        assert_eq!(set.len(), 1);
        assert!(HostId(1) < HostId(2));
    }
}
