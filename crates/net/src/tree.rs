//! Builder for the paper's 3-tier tree topologies.

use serde::{Deserialize, Serialize};

use crate::ids::{NodeKind, PodId, RackId};
use crate::topology::Topology;
use crate::{Bps, GBPS};

/// Parameters of a 3-tier (edge/aggregation/core) tree network.
///
/// The paper's Mininet testbed (§6.1) is 64 hosts in 4 pods, each pod
/// being 4 racks of 4 hosts joined by 2 aggregation switches, with 2
/// core switches, 1 Gbps edge links and 8:1 core-to-rack
/// oversubscription — [`TreeParams::paper_testbed`] builds exactly
/// that. Figure 7 varies only [`TreeParams::oversubscription`].
///
/// # Oversubscription model
///
/// The total core-to-rack ratio is split across the two switch tiers:
/// the edge→aggregation tier is oversubscribed by
/// [`TreeParams::edge_tier_oversub`] (2:1 by default) and the
/// aggregation→core tier absorbs the rest
/// (`oversubscription / edge_tier_oversub`). Uplink capacities are
/// derived so that each tier's ingress/egress ratio matches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Number of pods.
    pub pods: usize,
    /// Racks per pod.
    pub racks_per_pod: usize,
    /// Hosts per rack.
    pub hosts_per_rack: usize,
    /// Aggregation switches per pod; every rack's edge switch connects
    /// to each of them.
    pub aggs_per_pod: usize,
    /// Core switches; every aggregation switch connects to each.
    pub cores: usize,
    /// Capacity of host↔edge-switch links, bits/sec.
    pub edge_capacity: Bps,
    /// Total core-to-rack oversubscription ratio (e.g. `8.0` for 8:1).
    pub oversubscription: f64,
    /// How much of the total ratio the edge→aggregation tier takes.
    pub edge_tier_oversub: f64,
}

impl TreeParams {
    /// The topology of the paper's testbed: 4 pods × 4 racks × 4 hosts,
    /// 2 aggregation switches per pod, 2 cores, 1 Gbps edge links,
    /// 8:1 oversubscription.
    #[must_use]
    pub fn paper_testbed() -> TreeParams {
        TreeParams {
            pods: 4,
            racks_per_pod: 4,
            hosts_per_rack: 4,
            aggs_per_pod: 2,
            cores: 2,
            edge_capacity: GBPS,
            oversubscription: 8.0,
            edge_tier_oversub: 2.0,
        }
    }

    /// Returns a copy with a different total oversubscription ratio
    /// (the Figure 7 sweep: 8:1, 16:1, 24:1).
    #[must_use]
    pub fn with_oversubscription(mut self, ratio: f64) -> TreeParams {
        self.oversubscription = ratio;
        self
    }

    /// Total number of hosts.
    #[must_use]
    pub fn host_count(&self) -> usize {
        self.pods * self.racks_per_pod * self.hosts_per_rack
    }

    /// Capacity of each edge-switch→aggregation-switch link.
    #[must_use]
    pub fn edge_uplink_capacity(&self) -> Bps {
        let rack_ingress = self.hosts_per_rack as f64 * self.edge_capacity;
        rack_ingress / (self.edge_tier_oversub * self.aggs_per_pod as f64)
    }

    /// Capacity of each aggregation-switch→core-switch link.
    #[must_use]
    pub fn agg_uplink_capacity(&self) -> Bps {
        let agg_tier = (self.oversubscription / self.edge_tier_oversub).max(1.0);
        let agg_ingress = self.racks_per_pod as f64 * self.edge_uplink_capacity();
        agg_ingress / (agg_tier * self.cores as f64)
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.pods == 0 || self.racks_per_pod == 0 || self.hosts_per_rack == 0 {
            return Err("pods, racks_per_pod and hosts_per_rack must be positive".into());
        }
        if self.aggs_per_pod == 0 || self.cores == 0 {
            return Err("aggs_per_pod and cores must be positive".into());
        }
        if !(self.edge_capacity.is_finite() && self.edge_capacity > 0.0) {
            return Err("edge_capacity must be positive and finite".into());
        }
        if self.oversubscription < 1.0 {
            return Err("oversubscription must be >= 1".into());
        }
        if self.edge_tier_oversub < 1.0 || self.edge_tier_oversub > self.oversubscription {
            return Err("edge_tier_oversub must be in [1, oversubscription]".into());
        }
        Ok(())
    }
}

impl Default for TreeParams {
    fn default() -> TreeParams {
        TreeParams::paper_testbed()
    }
}

impl Topology {
    /// Builds a 3-tier tree from `params`.
    ///
    /// Host ids are assigned pod-major, then rack, then host:
    /// `HostId(p * racks_per_pod * hosts_per_rack + r * hosts_per_rack + h)`.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`TreeParams::validate`].
    #[must_use]
    pub fn three_tier(params: &TreeParams) -> Topology {
        params
            .validate()
            .unwrap_or_else(|e| panic!("invalid TreeParams: {e}"));
        let mut topo = Topology::new();

        // Core switches.
        let cores: Vec<_> = (0..params.cores)
            .map(|_| topo.add_node(NodeKind::CoreSwitch, None, None))
            .collect();

        let edge_up = params.edge_uplink_capacity();
        let agg_up = params.agg_uplink_capacity();

        let mut rack_no = 0u32;
        for p in 0..params.pods {
            let pod = PodId(p as u32);
            // Aggregation switches for the pod, each wired to all cores.
            let aggs: Vec<_> = (0..params.aggs_per_pod)
                .map(|_| topo.add_node(NodeKind::AggSwitch, None, Some(pod)))
                .collect();
            for &agg in &aggs {
                for &core in &cores {
                    topo.add_duplex_link(agg, core, agg_up);
                }
            }
            for _ in 0..params.racks_per_pod {
                let rack = RackId(rack_no);
                rack_no += 1;
                let edge = topo.add_node(NodeKind::EdgeSwitch, Some(rack), Some(pod));
                topo.set_rack_edge(rack, edge);
                for &agg in &aggs {
                    topo.add_duplex_link(edge, agg, edge_up);
                }
                for _ in 0..params.hosts_per_rack {
                    let host_node = topo.add_node(NodeKind::Host, Some(rack), Some(pod));
                    topo.register_host(host_node, rack, pod);
                    topo.add_duplex_link(host_node, edge, params.edge_capacity);
                }
            }
        }
        topo.freeze();
        topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::HostId;
    use crate::MBPS;

    #[test]
    fn paper_testbed_shape() {
        let p = TreeParams::paper_testbed();
        assert_eq!(p.host_count(), 64);
        let t = Topology::three_tier(&p);
        assert_eq!(t.host_count(), 64);
        assert_eq!(t.rack_count(), 16);
        assert_eq!(t.pod_count(), 4);
        let switches = t.nodes().iter().filter(|n| n.kind().is_switch()).count();
        // 16 edge + 8 agg + 2 core.
        assert_eq!(switches, 26);
    }

    #[test]
    fn paper_capacities_match_8_to_1() {
        let p = TreeParams::paper_testbed();
        // 4 hosts × 1 Gbps = 4 Gbps rack ingress; 2:1 edge tier over 2
        // uplinks → 1 Gbps each.
        assert!((p.edge_uplink_capacity() - 1000.0 * MBPS).abs() < 1e-3);
        // Agg ingress 4 × 1 Gbps; 4:1 agg tier over 2 uplinks → 0.5 Gbps.
        assert!((p.agg_uplink_capacity() - 500.0 * MBPS).abs() < 1e-3);
    }

    #[test]
    fn doubling_oversubscription_halves_core_links() {
        let p8 = TreeParams::paper_testbed();
        let p16 = TreeParams::paper_testbed().with_oversubscription(16.0);
        assert!((p8.agg_uplink_capacity() / p16.agg_uplink_capacity() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn path_lengths_are_2_4_6() {
        let t = Topology::three_tier(&TreeParams::paper_testbed());
        // Same rack: hosts 0 and 1.
        let same_rack = t.shortest_paths(HostId(0), HostId(1));
        assert!(!same_rack.is_empty());
        assert!(same_rack.iter().all(|p| p.len() == 2));
        // Same pod, different rack: hosts 0 and 4.
        let same_pod = t.shortest_paths(HostId(0), HostId(4));
        assert!(same_pod.iter().all(|p| p.len() == 4));
        // Two aggregation switches → 2 distinct 4-hop paths.
        assert_eq!(same_pod.len(), 2);
        // Cross pod: hosts 0 and 16.
        let cross = t.shortest_paths(HostId(0), HostId(16));
        assert!(cross.iter().all(|p| p.len() == 6));
        // 2 src aggs × 2 cores × 2 dst aggs = 8 paths.
        assert_eq!(cross.len(), 8);
    }

    #[test]
    fn all_enumerated_paths_validate() {
        let t = Topology::three_tier(&TreeParams::paper_testbed());
        for (a, b) in [(0u32, 1u32), (0, 4), (0, 16), (5, 62)] {
            for p in t.shortest_paths(HostId(a), HostId(b)) {
                assert!(p.validate(&t), "invalid path {p}");
            }
        }
    }

    #[test]
    fn host_id_layout_is_pod_major() {
        let t = Topology::three_tier(&TreeParams::paper_testbed());
        assert_eq!(t.pod_of(HostId(0)), PodId(0));
        assert_eq!(t.pod_of(HostId(15)), PodId(0));
        assert_eq!(t.pod_of(HostId(16)), PodId(1));
        assert_eq!(t.rack_of(HostId(0)), t.rack_of(HostId(3)));
        assert_ne!(t.rack_of(HostId(3)), t.rack_of(HostId(4)));
    }

    #[test]
    fn edge_uplinks_face_aggregation() {
        let t = Topology::three_tier(&TreeParams::paper_testbed());
        let rack = t.rack_of(HostId(0));
        let ups = t.edge_uplinks(rack);
        assert_eq!(ups.len(), 2);
        for l in ups {
            assert_eq!(t.node(t.link(l).dst()).kind(), NodeKind::AggSwitch);
        }
    }

    #[test]
    fn invalid_params_rejected() {
        let mut p = TreeParams::paper_testbed();
        p.pods = 0;
        assert!(p.validate().is_err());
        let mut p = TreeParams::paper_testbed();
        p.oversubscription = 0.5;
        assert!(p.validate().is_err());
        let mut p = TreeParams::paper_testbed();
        p.edge_tier_oversub = 100.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn single_pod_tree_has_no_core_paths() {
        let params = TreeParams {
            pods: 1,
            racks_per_pod: 2,
            hosts_per_rack: 2,
            aggs_per_pod: 2,
            cores: 1,
            edge_capacity: GBPS,
            oversubscription: 4.0,
            edge_tier_oversub: 2.0,
        };
        let t = Topology::three_tier(&params);
        assert_eq!(t.host_count(), 4);
        let paths = t.shortest_paths(HostId(0), HostId(2));
        assert!(paths.iter().all(|p| p.len() == 4));
    }
}
