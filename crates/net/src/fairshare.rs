//! Single-link max-min fair-share arithmetic.
//!
//! Both the ground-truth fluid simulator (globally, via progressive
//! filling) and the Flowserver's estimator (per link, §4.2) divide link
//! capacity across flows "equally up to the flow's demand while
//! remaining within the link's capacity". This module implements that
//! single-link water-filling step.

/// Divides `capacity` across flows with the given `demands` using
/// max-min fairness: capacity is split equally, but no flow receives
/// more than its demand; leftover from capped flows is redistributed
/// among the rest. An unbounded demand is expressed as
/// `f64::INFINITY`.
///
/// Returns the per-flow allocation, in input order. An empty demand
/// slice returns an empty vector.
///
/// # Panics
///
/// Panics if `capacity` is negative/NaN or any demand is negative/NaN.
///
/// # Example
///
/// ```
/// use mayflower_net::fairshare::waterfill;
///
/// // Paper Figure 2(b): 10 Mbps link, three existing flows demanding
/// // 2, 2 and 6, plus a new flow with unbounded demand. Equal share is
/// // 2.5; the 2-demand flows cap at 2, freeing capacity: the 6-demand
/// // flow and the new flow each get 3.
/// let alloc = waterfill(10.0, &[2.0, 2.0, 6.0, f64::INFINITY]);
/// assert_eq!(alloc, vec![2.0, 2.0, 3.0, 3.0]);
/// ```
#[must_use]
pub fn waterfill(capacity: f64, demands: &[f64]) -> Vec<f64> {
    assert!(
        capacity >= 0.0 && !capacity.is_nan(),
        "capacity must be non-negative"
    );
    assert!(
        demands.iter().all(|d| *d >= 0.0 && !d.is_nan()),
        "demands must be non-negative"
    );
    let n = demands.len();
    if n == 0 {
        return Vec::new();
    }
    let mut alloc = vec![0.0f64; n];
    let mut satisfied = vec![false; n];
    let mut remaining_cap = capacity;
    let mut remaining_flows = n;
    loop {
        if remaining_flows == 0 || remaining_cap <= 0.0 {
            break;
        }
        let share = remaining_cap / remaining_flows as f64;
        // Flows whose demand is below the current equal share cap out.
        let mut any_capped = false;
        for i in 0..n {
            if !satisfied[i] && demands[i] <= share {
                alloc[i] = demands[i];
                remaining_cap -= demands[i];
                satisfied[i] = true;
                remaining_flows -= 1;
                any_capped = true;
            }
        }
        if !any_capped {
            // Everyone left wants at least the equal share: done.
            for i in 0..n {
                if !satisfied[i] {
                    alloc[i] = share;
                }
            }
            break;
        }
    }
    alloc
}

/// The max-min share a **new flow with unbounded demand** would receive
/// on a link of the given `capacity` already carrying flows with the
/// given `demands` (§4.2: "the demand of the new flow is set to
/// infinity").
///
/// Equivalent to `waterfill(capacity, demands + [∞]).last()` but
/// without allocating the full vector.
#[must_use]
pub fn new_flow_share(capacity: f64, demands: &[f64]) -> f64 {
    let mut all: Vec<f64> = demands.to_vec();
    all.push(f64::INFINITY);
    *waterfill(capacity, &all)
        .last()
        .expect("waterfill of non-empty input is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_split_when_demands_exceed() {
        let a = waterfill(12.0, &[10.0, 10.0, 10.0]);
        assert_eq!(a, vec![4.0, 4.0, 4.0]);
    }

    #[test]
    fn small_demands_fully_met() {
        let a = waterfill(12.0, &[1.0, 2.0, 100.0]);
        assert_eq!(a, vec![1.0, 2.0, 9.0]);
    }

    #[test]
    fn paper_fig2b_second_link() {
        // Second link of first path: flows 2, 2, 6 plus new flow → new
        // flow gets 3 (the paper's bottleneck share for path 1).
        let share = new_flow_share(10.0, &[2.0, 2.0, 6.0]);
        assert!((share - 3.0).abs() < 1e-12);
    }

    #[test]
    fn paper_fig2b_third_link() {
        // Third link: one flow at 10 plus new flow → each gets 5.
        let share = new_flow_share(10.0, &[10.0]);
        assert!((share - 5.0).abs() < 1e-12);
    }

    #[test]
    fn paper_fig2c_second_path() {
        // Figure 2(c): second path, edge→agg link flows 2, 2, 4 → new
        // flow share 3; agg→edge link flow 8 → share 5. Bottleneck 3.
        let s1 = new_flow_share(10.0, &[2.0, 2.0, 4.0]);
        assert!((s1 - 3.0).abs() < 1e-12, "{s1}");
        let s2 = new_flow_share(10.0, &[8.0]);
        assert!((s2 - 5.0).abs() < 1e-12, "{s2}");
    }

    #[test]
    fn empty_demands() {
        assert!(waterfill(5.0, &[]).is_empty());
        assert_eq!(new_flow_share(5.0, &[]), 5.0);
    }

    #[test]
    fn zero_capacity_gives_zero() {
        assert_eq!(waterfill(0.0, &[1.0, 2.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn zero_demand_flows_get_zero() {
        let a = waterfill(10.0, &[0.0, f64::INFINITY]);
        assert_eq!(a, vec![0.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_capacity_panics() {
        let _ = waterfill(-1.0, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_demand_panics() {
        let _ = waterfill(1.0, &[-1.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn demand_vec() -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(
            prop_oneof![3 => 0.0f64..100.0, 1 => Just(f64::INFINITY)],
            1..20,
        )
    }

    proptest! {
        /// The allocation never exceeds capacity, never exceeds any
        /// demand, and is Pareto-efficient (either capacity exhausted
        /// or all demands met).
        #[test]
        fn waterfill_invariants(cap in 0.0f64..1000.0, demands in demand_vec()) {
            let alloc = waterfill(cap, &demands);
            let total: f64 = alloc.iter().sum();
            prop_assert!(total <= cap * (1.0 + 1e-9) + 1e-9);
            for (a, d) in alloc.iter().zip(&demands) {
                prop_assert!(*a <= d * (1.0 + 1e-9) + 1e-9);
                prop_assert!(*a >= 0.0);
            }
            let all_met = alloc.iter().zip(&demands).all(|(a, d)| (a - d).abs() < 1e-6 || d.is_infinite() && *a > 0.0);
            let cap_used = (total - cap).abs() < 1e-6 * cap.max(1.0);
            prop_assert!(all_met || cap_used || cap == 0.0,
                "not Pareto efficient: total={total} cap={cap} alloc={alloc:?} demands={demands:?}");
        }

        /// Fairness: if flow i gets strictly less than flow j, then
        /// flow i must be demand-capped.
        #[test]
        fn waterfill_fairness(cap in 0.1f64..1000.0, demands in demand_vec()) {
            let alloc = waterfill(cap, &demands);
            for i in 0..alloc.len() {
                for j in 0..alloc.len() {
                    if alloc[i] + 1e-9 < alloc[j] {
                        prop_assert!((alloc[i] - demands[i]).abs() < 1e-9,
                            "flow {i} got {} < {} but is not capped at its demand {}",
                            alloc[i], alloc[j], demands[i]);
                    }
                }
            }
        }

        /// A new unbounded flow always gets at least an equal share.
        #[test]
        fn new_flow_gets_at_least_equal_share(cap in 0.1f64..1000.0, demands in demand_vec()) {
            let share = new_flow_share(cap, &demands);
            let equal = cap / (demands.len() + 1) as f64;
            prop_assert!(share >= equal - 1e-9);
            prop_assert!(share <= cap + 1e-9);
        }
    }
}
