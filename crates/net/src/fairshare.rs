//! Single-link max-min fair-share arithmetic.
//!
//! Both the ground-truth fluid simulator (globally, via progressive
//! filling) and the Flowserver's estimator (per link, §4.2) divide link
//! capacity across flows "equally up to the flow's demand while
//! remaining within the link's capacity". This module implements that
//! single-link water-filling step.

/// Divides `capacity` across flows with the given `demands` using
/// max-min fairness: capacity is split equally, but no flow receives
/// more than its demand; leftover from capped flows is redistributed
/// among the rest. An unbounded demand is expressed as
/// `f64::INFINITY`.
///
/// Returns the per-flow allocation, in input order. An empty demand
/// slice returns an empty vector.
///
/// # Panics
///
/// Panics if `capacity` is negative/NaN or any demand is negative/NaN.
///
/// # Example
///
/// ```
/// use mayflower_net::fairshare::waterfill;
///
/// // Paper Figure 2(b): 10 Mbps link, three existing flows demanding
/// // 2, 2 and 6, plus a new flow with unbounded demand. Equal share is
/// // 2.5; the 2-demand flows cap at 2, freeing capacity: the 6-demand
/// // flow and the new flow each get 3.
/// let alloc = waterfill(10.0, &[2.0, 2.0, 6.0, f64::INFINITY]);
/// assert_eq!(alloc, vec![2.0, 2.0, 3.0, 3.0]);
/// ```
#[must_use]
pub fn waterfill(capacity: f64, demands: &[f64]) -> Vec<f64> {
    assert!(
        capacity >= 0.0 && !capacity.is_nan(),
        "capacity must be non-negative"
    );
    assert!(
        demands.iter().all(|d| *d >= 0.0 && !d.is_nan()),
        "demands must be non-negative"
    );
    let n = demands.len();
    if n == 0 {
        return Vec::new();
    }
    let mut alloc = vec![0.0f64; n];
    let mut satisfied = vec![false; n];
    let mut remaining_cap = capacity;
    let mut remaining_flows = n;
    loop {
        if remaining_flows == 0 || remaining_cap <= 0.0 {
            break;
        }
        let share = remaining_cap / remaining_flows as f64;
        // Flows whose demand is below the current equal share cap out.
        let mut any_capped = false;
        for i in 0..n {
            if !satisfied[i] && demands[i] <= share {
                alloc[i] = demands[i];
                remaining_cap -= demands[i];
                satisfied[i] = true;
                remaining_flows -= 1;
                any_capped = true;
            }
        }
        if !any_capped {
            // Everyone left wants at least the equal share: done.
            for i in 0..n {
                if !satisfied[i] {
                    alloc[i] = share;
                }
            }
            break;
        }
    }
    alloc
}

/// The max-min share a **new flow with unbounded demand** would receive
/// on a link of the given `capacity` already carrying flows with the
/// given `demands` (§4.2: "the demand of the new flow is set to
/// infinity").
///
/// Equivalent to `waterfill(capacity, demands + [∞]).last()` but
/// without allocating the full vector.
#[must_use]
pub fn new_flow_share(capacity: f64, demands: &[f64]) -> f64 {
    let mut all: Vec<f64> = demands.to_vec();
    all.push(f64::INFINITY);
    *waterfill(capacity, &all)
        .last()
        .expect("waterfill of non-empty input is non-empty")
}

/// Reusable buffers for the allocation-free waterfill entry points.
///
/// One scratch lives for the whole lifetime of a scheduler; every call
/// reuses its vectors, so the steady-state cost of a waterfill is pure
/// arithmetic plus one sort — no heap traffic.
#[derive(Debug, Clone, Default)]
pub struct FairshareScratch {
    all: Vec<f64>,
    alloc: Vec<f64>,
    order: Vec<u32>,
}

impl FairshareScratch {
    /// Creates an empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> FairshareScratch {
        FairshareScratch::default()
    }
}

/// [`waterfill`] into caller-owned buffers, in O(n log n) instead of
/// the reference implementation's O(n²) round scan.
///
/// `alloc` receives the per-flow allocation (cleared first); `order` is
/// an index scratch buffer. The result is **bit-identical** to
/// [`waterfill`]: each round fixes the equal share from the remaining
/// capacity, caps the demand-sorted prefix of remaining flows, and —
/// because f64 subtraction is not associative — subtracts the capped
/// demands in original input order, exactly like the reference loop.
///
/// # Panics
///
/// Panics if `capacity` is negative/NaN or any demand is negative/NaN.
pub fn waterfill_into(capacity: f64, demands: &[f64], alloc: &mut Vec<f64>, order: &mut Vec<u32>) {
    assert!(
        capacity >= 0.0 && !capacity.is_nan(),
        "capacity must be non-negative"
    );
    assert!(
        demands.iter().all(|d| *d >= 0.0 && !d.is_nan()),
        "demands must be non-negative"
    );
    let n = demands.len();
    alloc.clear();
    alloc.resize(n, 0.0);
    if n == 0 {
        return;
    }
    order.clear();
    order.extend(0..u32::try_from(n).expect("demand count fits u32"));
    order.sort_by(|&a, &b| demands[a as usize].total_cmp(&demands[b as usize]));
    let mut start = 0usize;
    let mut remaining_cap = capacity;
    loop {
        if start == n || remaining_cap <= 0.0 {
            break;
        }
        let share = remaining_cap / (n - start) as f64;
        // Flows whose demand is below the current equal share cap out;
        // they are exactly a prefix of the demand-sorted remainder.
        let cut = start + order[start..].partition_point(|&i| demands[i as usize] <= share);
        if cut == start {
            // Everyone left wants at least the equal share: done.
            for &i in &order[start..] {
                alloc[i as usize] = share;
            }
            break;
        }
        // Restore input order within the capped set so the capacity
        // subtractions replay the reference loop's exact f64 sequence.
        order[start..cut].sort_unstable();
        for &i in &order[start..cut] {
            let d = demands[i as usize];
            alloc[i as usize] = d;
            remaining_cap -= d;
        }
        start = cut;
    }
}

/// Waterfills `demands + [extra]` using scratch buffers and returns the
/// allocation slice (length `demands.len() + 1`, the extra flow last).
///
/// This is the allocation-free core behind both the new-flow share and
/// the existing-flow impact computation: the Flowserver stages a link's
/// demand list plus the newcomer's demand, waterfills once, and reads
/// both answers from the same slice.
pub fn waterfill_with_extra<'a>(
    capacity: f64,
    demands: &[f64],
    extra: f64,
    scratch: &'a mut FairshareScratch,
) -> &'a [f64] {
    scratch.all.clear();
    scratch.all.extend_from_slice(demands);
    scratch.all.push(extra);
    waterfill_into(
        capacity,
        &scratch.all,
        &mut scratch.alloc,
        &mut scratch.order,
    );
    &scratch.alloc
}

/// Allocation-free [`new_flow_share`]: bit-identical result, scratch
/// buffers instead of fresh vectors.
pub fn new_flow_share_into(capacity: f64, demands: &[f64], scratch: &mut FairshareScratch) -> f64 {
    *waterfill_with_extra(capacity, demands, f64::INFINITY, scratch)
        .last()
        .expect("waterfill of non-empty input is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_split_when_demands_exceed() {
        let a = waterfill(12.0, &[10.0, 10.0, 10.0]);
        assert_eq!(a, vec![4.0, 4.0, 4.0]);
    }

    #[test]
    fn small_demands_fully_met() {
        let a = waterfill(12.0, &[1.0, 2.0, 100.0]);
        assert_eq!(a, vec![1.0, 2.0, 9.0]);
    }

    #[test]
    fn paper_fig2b_second_link() {
        // Second link of first path: flows 2, 2, 6 plus new flow → new
        // flow gets 3 (the paper's bottleneck share for path 1).
        let share = new_flow_share(10.0, &[2.0, 2.0, 6.0]);
        assert!((share - 3.0).abs() < 1e-12);
    }

    #[test]
    fn paper_fig2b_third_link() {
        // Third link: one flow at 10 plus new flow → each gets 5.
        let share = new_flow_share(10.0, &[10.0]);
        assert!((share - 5.0).abs() < 1e-12);
    }

    #[test]
    fn paper_fig2c_second_path() {
        // Figure 2(c): second path, edge→agg link flows 2, 2, 4 → new
        // flow share 3; agg→edge link flow 8 → share 5. Bottleneck 3.
        let s1 = new_flow_share(10.0, &[2.0, 2.0, 4.0]);
        assert!((s1 - 3.0).abs() < 1e-12, "{s1}");
        let s2 = new_flow_share(10.0, &[8.0]);
        assert!((s2 - 5.0).abs() < 1e-12, "{s2}");
    }

    #[test]
    fn empty_demands() {
        assert!(waterfill(5.0, &[]).is_empty());
        assert_eq!(new_flow_share(5.0, &[]), 5.0);
    }

    #[test]
    fn zero_capacity_gives_zero() {
        assert_eq!(waterfill(0.0, &[1.0, 2.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn zero_demand_flows_get_zero() {
        let a = waterfill(10.0, &[0.0, f64::INFINITY]);
        assert_eq!(a, vec![0.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_capacity_panics() {
        let _ = waterfill(-1.0, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_demand_panics() {
        let _ = waterfill(1.0, &[-1.0]);
    }

    fn fill_into(capacity: f64, demands: &[f64]) -> Vec<f64> {
        let mut alloc = Vec::new();
        let mut order = Vec::new();
        waterfill_into(capacity, demands, &mut alloc, &mut order);
        alloc
    }

    #[test]
    fn into_zero_capacity_gives_zero() {
        assert_eq!(fill_into(0.0, &[1.0, 2.0, f64::INFINITY]), vec![0.0; 3]);
    }

    #[test]
    fn into_all_infinite_demands_split_equally() {
        assert_eq!(fill_into(12.0, &[f64::INFINITY; 4]), vec![3.0; 4]);
    }

    #[test]
    fn into_single_flow_capped_and_uncapped() {
        // Demand below capacity: capped at the demand.
        assert_eq!(fill_into(10.0, &[4.0]), vec![4.0]);
        // Demand above capacity: gets the whole link.
        assert_eq!(fill_into(10.0, &[40.0]), vec![10.0]);
        assert_eq!(fill_into(10.0, &[f64::INFINITY]), vec![10.0]);
    }

    #[test]
    fn into_empty_demands() {
        assert!(fill_into(5.0, &[]).is_empty());
    }

    #[test]
    fn into_matches_reference_on_paper_examples() {
        for (cap, demands) in [
            (10.0, vec![2.0, 2.0, 6.0, f64::INFINITY]),
            (10.0, vec![2.0, 2.0, 4.0, f64::INFINITY]),
            (12.0, vec![1.0, 2.0, 100.0]),
            (10.0, vec![0.0, f64::INFINITY]),
        ] {
            let reference = waterfill(cap, &demands);
            assert_eq!(fill_into(cap, &demands), reference);
        }
    }

    #[test]
    fn into_buffers_are_reusable() {
        let mut scratch = FairshareScratch::new();
        let s1 = new_flow_share_into(10.0, &[2.0, 2.0, 6.0], &mut scratch);
        assert_eq!(
            s1.to_bits(),
            new_flow_share(10.0, &[2.0, 2.0, 6.0]).to_bits()
        );
        // A second, smaller call must not see stale state.
        let s2 = new_flow_share_into(10.0, &[10.0], &mut scratch);
        assert_eq!(s2.to_bits(), new_flow_share(10.0, &[10.0]).to_bits());
        let alloc = waterfill_with_extra(10.0, &[2.0, 2.0, 6.0], 3.0, &mut scratch);
        assert_eq!(alloc.len(), 4);
        assert_eq!(alloc, waterfill(10.0, &[2.0, 2.0, 6.0, 3.0]).as_slice());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn into_negative_capacity_panics() {
        let _ = fill_into(-1.0, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn into_negative_demand_panics() {
        let _ = fill_into(1.0, &[-1.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn demand_vec() -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(
            prop_oneof![3 => 0.0f64..100.0, 1 => Just(f64::INFINITY)],
            1..20,
        )
    }

    proptest! {
        /// The allocation never exceeds capacity, never exceeds any
        /// demand, and is Pareto-efficient (either capacity exhausted
        /// or all demands met).
        #[test]
        fn waterfill_invariants(cap in 0.0f64..1000.0, demands in demand_vec()) {
            let alloc = waterfill(cap, &demands);
            let total: f64 = alloc.iter().sum();
            prop_assert!(total <= cap * (1.0 + 1e-9) + 1e-9);
            for (a, d) in alloc.iter().zip(&demands) {
                prop_assert!(*a <= d * (1.0 + 1e-9) + 1e-9);
                prop_assert!(*a >= 0.0);
            }
            let all_met = alloc.iter().zip(&demands).all(|(a, d)| (a - d).abs() < 1e-6 || d.is_infinite() && *a > 0.0);
            let cap_used = (total - cap).abs() < 1e-6 * cap.max(1.0);
            prop_assert!(all_met || cap_used || cap == 0.0,
                "not Pareto efficient: total={total} cap={cap} alloc={alloc:?} demands={demands:?}");
        }

        /// Fairness: if flow i gets strictly less than flow j, then
        /// flow i must be demand-capped.
        #[test]
        fn waterfill_fairness(cap in 0.1f64..1000.0, demands in demand_vec()) {
            let alloc = waterfill(cap, &demands);
            for i in 0..alloc.len() {
                for j in 0..alloc.len() {
                    if alloc[i] + 1e-9 < alloc[j] {
                        prop_assert!((alloc[i] - demands[i]).abs() < 1e-9,
                            "flow {i} got {} < {} but is not capped at its demand {}",
                            alloc[i], alloc[j], demands[i]);
                    }
                }
            }
        }

        /// A new unbounded flow always gets at least an equal share.
        #[test]
        fn new_flow_gets_at_least_equal_share(cap in 0.1f64..1000.0, demands in demand_vec()) {
            let share = new_flow_share(cap, &demands);
            let equal = cap / (demands.len() + 1) as f64;
            prop_assert!(share >= equal - 1e-9);
            prop_assert!(share <= cap + 1e-9);
        }

        /// The sort-based fast path is **bit-identical** to the
        /// reference quadratic loop — not merely close: the Flowserver
        /// substitutes one for the other and must keep every selection
        /// and every serialized report byte-equal.
        #[test]
        fn waterfill_into_is_bit_identical(cap in 0.0f64..1000.0, demands in demand_vec()) {
            let reference = waterfill(cap, &demands);
            let mut alloc = Vec::new();
            let mut order = Vec::new();
            waterfill_into(cap, &demands, &mut alloc, &mut order);
            prop_assert_eq!(alloc.len(), reference.len());
            for (fast, slow) in alloc.iter().zip(&reference) {
                prop_assert_eq!(fast.to_bits(), slow.to_bits(),
                    "fast={} slow={} cap={} demands={:?}", fast, slow, cap, &demands);
            }
        }

        /// Same bit-identity for the new-flow share entry point.
        #[test]
        fn new_flow_share_into_is_bit_identical(cap in 0.0f64..1000.0, demands in demand_vec()) {
            let mut scratch = FairshareScratch::new();
            let fast = new_flow_share_into(cap, &demands, &mut scratch);
            let slow = new_flow_share(cap, &demands);
            prop_assert_eq!(fast.to_bits(), slow.to_bits(), "fast={} slow={}", fast, slow);
        }
    }
}
