//! Memoized shortest-path sets with a link-state overlay.
//!
//! [`crate::Topology::shortest_paths`] re-runs a BFS plus an
//! all-shortest-paths DFS on every call, and the Flowserver calls it
//! for every (replica, client) pair of every selection. The topology
//! is frozen, so the answer never changes — a [`PathCache`] computes
//! each host pair's path set once and hands out shared slices.
//!
//! Link failures do not change the set of shortest paths either (the
//! scheduler skips severed candidates rather than re-routing around
//! them, exactly like the pre-cache code filtered against its
//! `down_links` set). The cache therefore models failures as an
//! *overlay*: a per-entry severed bitmap, recomputed lazily whenever
//! the down-link set has changed since the bitmap was last computed.
//! On a healthy network the overlay is `None` and lookups pay zero
//! per-path set probes.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use crate::ids::{HostId, LinkId};
use crate::path::Path;
use crate::topology::Topology;

/// Hit/miss/invalidation counts, mirrored into telemetry by the owner.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathCacheStats {
    /// Lookups served from a cached entry.
    pub hits: u64,
    /// Lookups that had to enumerate paths.
    pub misses: u64,
    /// Link-state changes that invalidated the severed overlays.
    pub invalidations: u64,
}

#[derive(Debug, Clone)]
struct Entry {
    paths: Arc<[Path]>,
    /// Per-path "crosses a down link" flags; `None` when no path in
    /// this set is severed (the common case, even under failures).
    severed: Option<Arc<[bool]>>,
    /// Value of [`PathCache::down_epoch`] when `severed` was computed.
    severed_epoch: u64,
}

/// An owned view of one host pair's cached shortest paths plus the
/// current severed overlay. Cheap to clone out of the cache (two `Arc`
/// bumps), so callers hold no borrow of the cache while iterating.
#[derive(Debug, Clone)]
pub struct PathSet {
    paths: Arc<[Path]>,
    severed: Option<Arc<[bool]>>,
}

impl PathSet {
    /// All shortest paths, in [`Topology::shortest_paths`] order.
    #[must_use]
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// Whether path `i` crosses a link currently known to be down.
    #[must_use]
    pub fn is_severed(&self, i: usize) -> bool {
        self.severed.as_ref().is_some_and(|s| s[i])
    }

    /// The live (non-severed) paths, in order.
    pub fn live(&self) -> impl Iterator<Item = &Path> {
        self.paths
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.is_severed(*i))
            .map(|(_, p)| p)
    }
}

/// The shortest-path memo: one entry per queried (src, dst) host pair,
/// plus the down-link set driving the severed overlays.
#[derive(Debug, Clone, Default)]
pub struct PathCache {
    entries: HashMap<(HostId, HostId), Entry>,
    down: BTreeSet<LinkId>,
    /// Bumped on every effective link-state change; entries stamp
    /// their overlay with the epoch it was computed at.
    down_epoch: u64,
    stats: PathCacheStats,
}

impl PathCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> PathCache {
        PathCache::default()
    }

    /// Records a link going down (`up == false`) or coming back up.
    /// Returns whether the down-link set actually changed (repeated
    /// notifications are idempotent, as with the raw set the scheduler
    /// kept before).
    pub fn set_link_state(&mut self, link: LinkId, up: bool) -> bool {
        let changed = if up {
            self.down.remove(&link)
        } else {
            self.down.insert(link)
        };
        if changed {
            self.down_epoch += 1;
            self.stats.invalidations += 1;
        }
        changed
    }

    /// The links currently marked down.
    #[must_use]
    pub fn down_links(&self) -> &BTreeSet<LinkId> {
        &self.down
    }

    /// The shortest paths `src → dst`, memoized, with the severed
    /// overlay refreshed against the current down-link set. Returns
    /// the set and whether it was served from cache.
    pub fn lookup(&mut self, topo: &Topology, src: HostId, dst: HostId) -> (PathSet, bool) {
        let down = &self.down;
        let down_epoch = self.down_epoch;
        let mut hit = true;
        let entry = self.entries.entry((src, dst)).or_insert_with(|| {
            hit = false;
            Entry {
                paths: topo.shortest_paths(src, dst).into(),
                severed: None,
                severed_epoch: 0,
            }
        });
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        let severed = if down.is_empty() {
            // Healthy network: no overlay, zero per-path probes.
            None
        } else {
            if entry.severed_epoch != down_epoch {
                let flags: Vec<bool> = entry
                    .paths
                    .iter()
                    .map(|p| p.links().iter().any(|l| down.contains(l)))
                    .collect();
                entry.severed = if flags.contains(&true) {
                    Some(flags.into())
                } else {
                    None
                };
                entry.severed_epoch = down_epoch;
            }
            entry.severed.clone()
        };
        (
            PathSet {
                paths: entry.paths.clone(),
                severed,
            },
            hit,
        )
    }

    /// Cumulative cache statistics.
    #[must_use]
    pub fn stats(&self) -> PathCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeParams;

    fn topo() -> Topology {
        Topology::three_tier(&TreeParams::paper_testbed())
    }

    #[test]
    fn lookup_matches_direct_enumeration_for_all_kinds_of_pairs() {
        let t = topo();
        let mut cache = PathCache::new();
        for (a, b) in [(0u32, 1), (0, 5), (0, 40), (63, 0)] {
            let (set, hit) = cache.lookup(&t, HostId(a), HostId(b));
            assert!(!hit, "first lookup must miss");
            assert_eq!(set.paths(), t.shortest_paths(HostId(a), HostId(b)));
            let (set2, hit2) = cache.lookup(&t, HostId(a), HostId(b));
            assert!(hit2, "second lookup must hit");
            assert_eq!(set2.paths(), set.paths());
        }
        assert_eq!(cache.stats().hits, 4);
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn direction_matters() {
        let t = topo();
        let mut cache = PathCache::new();
        let (fwd, _) = cache.lookup(&t, HostId(0), HostId(40));
        let (rev, _) = cache.lookup(&t, HostId(40), HostId(0));
        assert_eq!(
            cache.stats().misses,
            2,
            "reverse direction is its own entry"
        );
        assert_ne!(fwd.paths()[0].links(), rev.paths()[0].links());
    }

    #[test]
    fn healthy_network_has_no_overlay() {
        let t = topo();
        let mut cache = PathCache::new();
        let (set, _) = cache.lookup(&t, HostId(0), HostId(40));
        assert!(set.severed.is_none());
        assert_eq!(set.live().count(), set.paths().len());
    }

    #[test]
    fn severed_overlay_matches_naive_filter_and_heals() {
        let t = topo();
        let mut cache = PathCache::new();
        // Warm the cache, then fail a link used by some cross-pod paths.
        let (_, _) = cache.lookup(&t, HostId(20), HostId(0));
        let paths = t.shortest_paths(HostId(20), HostId(0));
        let victim = paths[0].links()[1]; // an edge→agg uplink
        assert!(cache.set_link_state(victim, false));
        assert!(!cache.set_link_state(victim, false), "idempotent");
        assert_eq!(cache.stats().invalidations, 1);

        let (set, hit) = cache.lookup(&t, HostId(20), HostId(0));
        assert!(hit, "failure must not evict the entry");
        let naive: Vec<&Path> = paths
            .iter()
            .filter(|p| !p.links().contains(&victim))
            .collect();
        let live: Vec<&Path> = set.live().collect();
        assert_eq!(live.len(), naive.len());
        assert!(!live.is_empty(), "other paths survive");
        assert!(live.len() < set.paths().len(), "some paths are severed");
        for (a, b) in live.iter().zip(&naive) {
            assert_eq!(a.links(), b.links());
        }

        // Healing restores the full set.
        assert!(cache.set_link_state(victim, true));
        let (set, _) = cache.lookup(&t, HostId(20), HostId(0));
        assert_eq!(set.live().count(), set.paths().len());
        assert_eq!(cache.stats().invalidations, 2);
    }

    #[test]
    fn overlay_is_none_when_down_link_misses_the_entry() {
        let t = topo();
        let mut cache = PathCache::new();
        // Fail a link in pod 3; same-rack pod-0 paths are unaffected,
        // so their overlay collapses back to None (zero probes later).
        let far = t.host_uplink(HostId(63));
        cache.set_link_state(far, false);
        let (set, _) = cache.lookup(&t, HostId(0), HostId(1));
        assert!(set.severed.is_none());
        assert_eq!(set.live().count(), set.paths().len());
    }

    #[test]
    fn host_pair_with_down_own_uplink_is_fully_severed() {
        let t = topo();
        let mut cache = PathCache::new();
        let uplink = t.host_uplink(HostId(1));
        cache.set_link_state(uplink, false);
        let (set, _) = cache.lookup(&t, HostId(1), HostId(0));
        assert_eq!(set.live().count(), 0, "every path crosses the uplink");
        assert!(!set.paths().is_empty(), "paths stay cached");
    }
}
