//! The topology graph: nodes, directed links, and shortest-path
//! enumeration.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::ids::{HostId, LinkId, NodeId, NodeKind, PodId, RackId};
use crate::path::Path;
use crate::Bps;

/// A node in the network: a host or a switch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    id: NodeId,
    kind: NodeKind,
    rack: Option<RackId>,
    pod: Option<PodId>,
}

impl Node {
    /// The node's identifier.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's role in the tree.
    #[must_use]
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// The rack this node belongs to (hosts and edge switches).
    #[must_use]
    pub fn rack(&self) -> Option<RackId> {
        self.rack
    }

    /// The pod this node belongs to (everything except core switches).
    #[must_use]
    pub fn pod(&self) -> Option<PodId> {
        self.pod
    }
}

/// A directed link with a fixed capacity in bits per second.
///
/// Physical cables are modelled as two directed links so that the two
/// directions can carry (and congest) independently.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Link {
    id: LinkId,
    src: NodeId,
    dst: NodeId,
    capacity: Bps,
}

impl Link {
    /// The link's identifier.
    #[must_use]
    pub fn id(&self) -> LinkId {
        self.id
    }

    /// Transmitting endpoint.
    #[must_use]
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// Receiving endpoint.
    #[must_use]
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// Capacity in bits per second.
    #[must_use]
    pub fn capacity(&self) -> Bps {
        self.capacity
    }
}

/// An immutable network topology: a directed graph of [`Node`]s and
/// [`Link`]s plus the rack/pod grouping metadata that replica placement
/// and locality classification need.
///
/// Build one with [`Topology::three_tier`] (the paper's tree networks)
/// or assemble an arbitrary graph with the builder-style
/// mutators ([`Topology::add_node`], [`Topology::add_duplex_link`])
/// before calling [`Topology::freeze`]. Most algorithms only need the
/// read API.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// Outgoing links per node, indexed by `NodeId`.
    out_links: Vec<Vec<LinkId>>,
    /// Reverse direction of each link (same cable, opposite way).
    reverse: Vec<LinkId>,
    /// Dense host list; `HostId` indexes into this.
    host_nodes: Vec<NodeId>,
    /// Hosts grouped by rack.
    racks: Vec<Vec<HostId>>,
    /// Racks grouped by pod.
    pods: Vec<Vec<RackId>>,
    /// Edge switch serving each rack.
    rack_edge: Vec<NodeId>,
    frozen: bool,
}

impl Topology {
    /// Creates an empty, mutable topology.
    #[must_use]
    pub fn new() -> Topology {
        Topology::default()
    }

    /// Adds a node and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the topology has been frozen.
    pub fn add_node(&mut self, kind: NodeKind, rack: Option<RackId>, pod: Option<PodId>) -> NodeId {
        assert!(!self.frozen, "cannot mutate a frozen topology");
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            kind,
            rack,
            pod,
        });
        self.out_links.push(Vec::new());
        id
    }

    /// Registers `node` as a host in rack `rack` of pod `pod`, growing
    /// the rack/pod tables as needed, and returns its dense [`HostId`].
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a `Host` node or the topology is frozen.
    pub fn register_host(&mut self, node: NodeId, rack: RackId, pod: PodId) -> HostId {
        assert!(!self.frozen, "cannot mutate a frozen topology");
        assert_eq!(
            self.nodes[node.index()].kind,
            NodeKind::Host,
            "register_host requires a Host node"
        );
        let host = HostId(self.host_nodes.len() as u32);
        self.host_nodes.push(node);
        if self.racks.len() <= rack.index() {
            self.racks.resize(rack.index() + 1, Vec::new());
        }
        self.racks[rack.index()].push(host);
        if self.pods.len() <= pod.index() {
            self.pods.resize(pod.index() + 1, Vec::new());
        }
        if !self.pods[pod.index()].contains(&rack) {
            self.pods[pod.index()].push(rack);
        }
        host
    }

    /// Records the edge switch serving `rack`.
    pub fn set_rack_edge(&mut self, rack: RackId, edge: NodeId) {
        assert!(!self.frozen, "cannot mutate a frozen topology");
        if self.rack_edge.len() <= rack.index() {
            self.rack_edge.resize(rack.index() + 1, NodeId(u32::MAX));
        }
        self.rack_edge[rack.index()] = edge;
    }

    /// Adds a full-duplex cable between `a` and `b` as two directed
    /// links of the given capacity; returns `(a→b, b→a)`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not finite-positive or the topology is
    /// frozen.
    pub fn add_duplex_link(&mut self, a: NodeId, b: NodeId, capacity: Bps) -> (LinkId, LinkId) {
        assert!(!self.frozen, "cannot mutate a frozen topology");
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "link capacity must be positive and finite"
        );
        let fwd = LinkId(self.links.len() as u32);
        self.links.push(Link {
            id: fwd,
            src: a,
            dst: b,
            capacity,
        });
        self.out_links[a.index()].push(fwd);
        let rev = LinkId(self.links.len() as u32);
        self.links.push(Link {
            id: rev,
            src: b,
            dst: a,
            capacity,
        });
        self.out_links[b.index()].push(rev);
        self.reverse.push(rev);
        self.reverse.push(fwd);
        (fwd, rev)
    }

    /// Marks the topology immutable. Mutators panic afterwards.
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// All nodes.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All directed links.
    #[must_use]
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Looks up a node.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Looks up a link.
    #[must_use]
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// The opposite direction of the same cable.
    #[must_use]
    pub fn reverse_link(&self, id: LinkId) -> LinkId {
        self.reverse[id.index()]
    }

    /// Dense list of host ids (`HostId(0)..HostId(n)`).
    #[must_use]
    pub fn hosts(&self) -> Vec<HostId> {
        (0..self.host_nodes.len() as u32).map(HostId).collect()
    }

    /// Number of hosts.
    #[must_use]
    pub fn host_count(&self) -> usize {
        self.host_nodes.len()
    }

    /// The graph node backing a host.
    #[must_use]
    pub fn host_node(&self, host: HostId) -> NodeId {
        self.host_nodes[host.index()]
    }

    /// The rack a host lives in.
    ///
    /// # Panics
    ///
    /// Panics if the host was registered without a rack (impossible via
    /// [`Topology::register_host`]).
    #[must_use]
    pub fn rack_of(&self, host: HostId) -> RackId {
        self.node(self.host_node(host))
            .rack
            .expect("hosts always have a rack")
    }

    /// The pod a host lives in.
    #[must_use]
    pub fn pod_of(&self, host: HostId) -> PodId {
        self.node(self.host_node(host))
            .pod
            .expect("hosts always have a pod")
    }

    /// Hosts in a rack.
    #[must_use]
    pub fn hosts_in_rack(&self, rack: RackId) -> &[HostId] {
        &self.racks[rack.index()]
    }

    /// Racks in a pod.
    #[must_use]
    pub fn racks_in_pod(&self, pod: PodId) -> &[RackId] {
        &self.pods[pod.index()]
    }

    /// Number of racks.
    #[must_use]
    pub fn rack_count(&self) -> usize {
        self.racks.len()
    }

    /// Number of pods.
    #[must_use]
    pub fn pod_count(&self) -> usize {
        self.pods.len()
    }

    /// The edge switch serving a rack.
    #[must_use]
    pub fn edge_switch_of(&self, rack: RackId) -> NodeId {
        self.rack_edge[rack.index()]
    }

    /// Outgoing links of a node.
    #[must_use]
    pub fn out_links(&self, node: NodeId) -> &[LinkId] {
        &self.out_links[node.index()]
    }

    /// The host→edge-switch uplink of a host (its only outgoing link in
    /// a tree).
    ///
    /// # Panics
    ///
    /// Panics if the host has no outgoing link.
    #[must_use]
    pub fn host_uplink(&self, host: HostId) -> LinkId {
        let node = self.host_node(host);
        *self
            .out_links(node)
            .first()
            .expect("hosts have an uplink to their edge switch")
    }

    /// The edge-switch→host downlink of a host.
    #[must_use]
    pub fn host_downlink(&self, host: HostId) -> LinkId {
        self.reverse_link(self.host_uplink(host))
    }

    /// Core-facing uplinks of a rack's edge switch (edge→aggregation
    /// links). These are the links Sinbad-R estimates utilization for.
    #[must_use]
    pub fn edge_uplinks(&self, rack: RackId) -> Vec<LinkId> {
        let edge = self.edge_switch_of(rack);
        self.out_links(edge)
            .iter()
            .copied()
            .filter(|l| self.node(self.link(*l).dst()).kind() == NodeKind::AggSwitch)
            .collect()
    }

    /// Hop distance (number of links) between two hosts, or `None` if
    /// unreachable. Two hosts on the same machine have distance 0.
    #[must_use]
    pub fn distance(&self, a: HostId, b: HostId) -> Option<usize> {
        if a == b {
            return Some(0);
        }
        let (dist, _) = self.bfs(self.host_node(a));
        let d = dist[self.host_node(b).index()];
        if d == usize::MAX {
            None
        } else {
            Some(d)
        }
    }

    /// Enumerates **all** shortest paths from host `src` to host `dst`.
    ///
    /// In a 3-tier tree these have length 2 (same rack), 4 (same pod)
    /// or 6 (cross-pod), exactly the path-length restriction of §4.2.
    /// Returns an empty vector when `src == dst` (no network involved)
    /// or when no path exists.
    #[must_use]
    pub fn shortest_paths(&self, src: HostId, dst: HostId) -> Vec<Path> {
        if src == dst {
            return Vec::new();
        }
        let src_node = self.host_node(src);
        let dst_node = self.host_node(dst);
        let (dist, preds) = self.bfs(src_node);
        if dist[dst_node.index()] == usize::MAX {
            return Vec::new();
        }
        // Walk predecessor links backwards from dst, enumerating every
        // combination (all-shortest-paths DFS).
        let mut paths = Vec::new();
        let mut stack: Vec<LinkId> = Vec::new();
        let walk = PathWalk {
            src_node,
            preds: &preds,
            src,
            dst,
        };
        self.collect_paths(&walk, dst_node, &mut stack, &mut paths);
        paths.sort_by(|a, b| a.links().cmp(b.links()));
        paths
    }

    fn collect_paths(
        &self,
        walk: &PathWalk<'_>,
        cur: NodeId,
        stack: &mut Vec<LinkId>,
        out: &mut Vec<Path>,
    ) {
        if cur == walk.src_node {
            let links: Vec<LinkId> = stack.iter().rev().copied().collect();
            out.push(Path::new(walk.src, walk.dst, links));
            return;
        }
        for &l in &walk.preds[cur.index()] {
            stack.push(l);
            self.collect_paths(walk, self.link(l).src(), stack, out);
            stack.pop();
        }
    }

    /// BFS from `start`, returning per-node distance and the incoming
    /// links that realize each node's shortest distance.
    ///
    /// (`PathWalk` below carries the fixed context of the
    /// all-shortest-paths DFS so the recursion's signature stays
    /// small.)
    fn bfs(&self, start: NodeId) -> (Vec<usize>, Vec<Vec<LinkId>>) {
        let n = self.nodes.len();
        let mut dist = vec![usize::MAX; n];
        let mut preds: Vec<Vec<LinkId>> = vec![Vec::new(); n];
        dist[start.index()] = 0;
        let mut q = VecDeque::new();
        q.push_back(start);
        while let Some(u) = q.pop_front() {
            let du = dist[u.index()];
            for &l in self.out_links(u) {
                let v = self.link(l).dst();
                let dv = dist[v.index()];
                if dv == usize::MAX {
                    dist[v.index()] = du + 1;
                    preds[v.index()].push(l);
                    q.push_back(v);
                } else if dv == du + 1 {
                    preds[v.index()].push(l);
                }
            }
        }
        (dist, preds)
    }
}

/// Fixed context for the all-shortest-paths DFS.
struct PathWalk<'a> {
    src_node: NodeId,
    preds: &'a [Vec<LinkId>],
    src: HostId,
    dst: HostId,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GBPS;

    /// Two hosts connected through one switch.
    fn tiny() -> (Topology, HostId, HostId) {
        let mut t = Topology::new();
        let sw = t.add_node(NodeKind::EdgeSwitch, Some(RackId(0)), Some(PodId(0)));
        let h0 = t.add_node(NodeKind::Host, Some(RackId(0)), Some(PodId(0)));
        let h1 = t.add_node(NodeKind::Host, Some(RackId(0)), Some(PodId(0)));
        let a = t.register_host(h0, RackId(0), PodId(0));
        let b = t.register_host(h1, RackId(0), PodId(0));
        t.set_rack_edge(RackId(0), sw);
        t.add_duplex_link(h0, sw, GBPS);
        t.add_duplex_link(h1, sw, GBPS);
        t.freeze();
        (t, a, b)
    }

    #[test]
    fn duplex_links_are_reversible() {
        let (t, a, _) = tiny();
        let up = t.host_uplink(a);
        let down = t.host_downlink(a);
        assert_eq!(t.reverse_link(up), down);
        assert_eq!(t.reverse_link(down), up);
        assert_eq!(t.link(up).src(), t.link(down).dst());
    }

    #[test]
    fn same_rack_distance_is_two() {
        let (t, a, b) = tiny();
        assert_eq!(t.distance(a, b), Some(2));
        assert_eq!(t.distance(a, a), Some(0));
    }

    #[test]
    fn shortest_paths_same_rack() {
        let (t, a, b) = tiny();
        let paths = t.shortest_paths(a, b);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 2);
        assert_eq!(paths[0].src(), a);
        assert_eq!(paths[0].dst(), b);
        // Path is connected host→switch→host.
        let l0 = t.link(paths[0].links()[0]);
        let l1 = t.link(paths[0].links()[1]);
        assert_eq!(l0.dst(), l1.src());
    }

    #[test]
    fn same_host_has_no_paths() {
        let (t, a, _) = tiny();
        assert!(t.shortest_paths(a, a).is_empty());
    }

    #[test]
    #[should_panic(expected = "frozen")]
    fn frozen_topology_rejects_mutation() {
        let (mut t, _, _) = tiny();
        t.add_node(NodeKind::Host, None, None);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, None, None);
        let b = t.add_node(NodeKind::Host, None, None);
        t.add_duplex_link(a, b, 0.0);
    }

    #[test]
    fn rack_and_pod_lookup() {
        let (t, a, b) = tiny();
        assert_eq!(t.rack_of(a), RackId(0));
        assert_eq!(t.pod_of(b), PodId(0));
        assert_eq!(t.hosts_in_rack(RackId(0)), &[a, b]);
        assert_eq!(t.racks_in_pod(PodId(0)), &[RackId(0)]);
    }
}
