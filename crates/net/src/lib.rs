#![warn(missing_docs)]

//! Datacenter network topology model for the Mayflower reproduction.
//!
//! This crate models the multi-tier tree networks the paper evaluates
//! on: hosts grouped into racks, racks into pods (sharing aggregation
//! switches), pods joined by core switches, with configurable link
//! capacities and core-to-rack oversubscription.
//!
//! The model is *directional*: every physical cable is two directed
//! [`Link`]s, because datacenter congestion is asymmetric (the paper's
//! Sinbad-R discussion hinges on which direction of an edge link is
//! loaded).
//!
//! Main entry points:
//!
//! * [`TreeParams`] / [`Topology::three_tier`] — build the paper's
//!   testbed topology (§6.1: 4 pods × 4 racks × 4 hosts, 1 Gbps edge
//!   links, 8:1 oversubscription) or any variant.
//! * [`Topology::shortest_paths`] — enumerate all equal-length shortest
//!   paths between two hosts (lengths 2, 4 or 6 in a 3-tier tree, §4.2).
//! * [`ecmp`] — hash-based equal-cost multipath selection (RFC 2992),
//!   the baseline path scheduler.
//! * [`Locality`] — same-rack / same-pod / cross-pod classification
//!   used by the workload's staggered client placement.
//!
//! # Example
//!
//! ```
//! use mayflower_net::{Topology, TreeParams};
//!
//! let topo = Topology::three_tier(&TreeParams::paper_testbed());
//! assert_eq!(topo.hosts().len(), 64);
//! let a = topo.hosts()[0];
//! let b = topo.hosts()[63]; // different pod
//! let paths = topo.shortest_paths(a, b);
//! assert!(paths.iter().all(|p| p.len() == 6));
//! ```

pub mod ecmp;
pub mod fairshare;
pub mod fattree;
pub mod ids;
pub mod locality;
pub mod path;
pub mod pathcache;
pub mod topology;
pub mod tree;

pub use ecmp::{ecmp_path, FlowKey};
pub use fattree::FatTreeParams;
pub use ids::{HostId, LinkId, NodeId, NodeKind, PodId, RackId};
pub use locality::Locality;
pub use path::Path;
pub use pathcache::{PathCache, PathCacheStats, PathSet};
pub use topology::{Link, Node, Topology};
pub use tree::TreeParams;

/// Bits per second. All capacities and rates in the workspace use this
/// unit.
pub type Bps = f64;

/// One gigabit per second, in [`Bps`].
pub const GBPS: Bps = 1e9;

/// One megabit per second, in [`Bps`].
pub const MBPS: Bps = 1e6;
