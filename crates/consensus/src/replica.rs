//! One node of the replicated log: acceptor for every slot, proposer
//! when driving, learner always.

use std::collections::{BTreeMap, VecDeque};

use crate::acceptor::{Acceptor, Verdict};
use crate::messages::{Ballot, Message, ReplicaId, Slot};
use crate::proposer::{Action, Proposer};

/// A message the replica wants delivered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outgoing<V> {
    /// Send to one peer.
    To(ReplicaId, Message<V>),
    /// Send to every replica (including the sender itself, which lets
    /// the proposer's own acceptor vote).
    Broadcast(Message<V>),
}

/// Attempts per pending value before the replica waits for the log to
/// move (a dueling-proposer backstop; adoption normally converges in
/// one or two rounds).
const MAX_ATTEMPTS: u32 = 20;

/// One replica of the group: a deterministic state machine that maps
/// each incoming message (or client submission) to outgoing messages.
///
/// Values submitted locally are queued and proposed — one at a time —
/// into the first log slot this replica believes is unchosen. If a
/// competing proposer wins the slot (Paxos forces us to adopt its
/// value), the pending value automatically moves to the next slot.
#[derive(Debug, Clone)]
pub struct Replica<V> {
    me: ReplicaId,
    group_size: usize,
    acceptors: BTreeMap<Slot, Acceptor<V>>,
    proposer: Option<(Slot, Proposer<V>)>,
    chosen: BTreeMap<Slot, V>,
    pending: VecDeque<V>,
    attempts: u32,
    /// Highest ballot round this node has observed, for retry jumps.
    max_round_seen: u64,
}

impl<V: Clone + Eq> Replica<V> {
    /// Creates replica `me` of a group of `group_size` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `group_size == 0`.
    #[must_use]
    pub fn new(me: ReplicaId, group_size: usize) -> Replica<V> {
        assert!(group_size > 0, "group must be non-empty");
        Replica {
            me,
            group_size,
            acceptors: BTreeMap::new(),
            proposer: None,
            chosen: BTreeMap::new(),
            pending: VecDeque::new(),
            attempts: 0,
            max_round_seen: 0,
        }
    }

    /// This node's id.
    #[must_use]
    pub fn id(&self) -> ReplicaId {
        self.me
    }

    /// Majority size.
    #[must_use]
    pub fn quorum(&self) -> usize {
        self.group_size / 2 + 1
    }

    /// The chosen value for `slot`, if this node has learned it.
    #[must_use]
    pub fn chosen(&self, slot: Slot) -> Option<&V> {
        self.chosen.get(&slot)
    }

    /// The learned log so far.
    #[must_use]
    pub fn log(&self) -> &BTreeMap<Slot, V> {
        &self.chosen
    }

    /// The maximal prefix of the log with no gaps, in slot order — the
    /// operations a state machine may safely apply.
    #[must_use]
    pub fn committed_prefix(&self) -> Vec<&V> {
        let mut out = Vec::new();
        for (i, (slot, v)) in self.chosen.iter().enumerate() {
            if *slot != i as Slot {
                break;
            }
            out.push(v);
        }
        out
    }

    /// First slot with no learned value.
    #[must_use]
    pub fn first_gap(&self) -> Slot {
        let mut s = 0;
        while self.chosen.contains_key(&s) {
            s += 1;
        }
        s
    }

    /// Number of values queued but not yet chosen.
    #[must_use]
    pub fn pending_len(&self) -> usize {
        self.pending.len() + usize::from(self.proposer.is_some())
    }

    /// Withdraws the in-flight proposal, if any, returning its value.
    ///
    /// Used by callers that surfaced a timeout/no-quorum error for the
    /// value and must not leave it queued (Paxos caveat: a withdrawn
    /// value that already reached phase 2 on some acceptor can still
    /// be chosen later if a future proposer adopts it — appliers must
    /// therefore be idempotent, as the replicated nameserver's are).
    pub fn abandon_current(&mut self) -> Option<V> {
        self.proposer.take().map(|(_, p)| p.own_value().clone())
    }

    /// Submits a value for replication. Returns the messages to send
    /// (empty if another proposal is already in flight; the value is
    /// queued behind it).
    pub fn submit(&mut self, value: V) -> Vec<Outgoing<V>> {
        self.pending.push_back(value);
        if self.proposer.is_none() {
            self.start_next_proposal()
        } else {
            Vec::new()
        }
    }

    fn start_next_proposal(&mut self) -> Vec<Outgoing<V>> {
        let Some(value) = self.pending.pop_front() else {
            return Vec::new();
        };
        let slot = self.first_gap();
        self.max_round_seen += 1;
        let ballot = Ballot {
            round: self.max_round_seen,
            node: self.me,
        };
        self.attempts = 0;
        self.proposer = Some((slot, Proposer::new(self.me, self.quorum(), ballot, value)));
        vec![Outgoing::Broadcast(Message::Prepare { slot, ballot })]
    }

    fn retry_current(&mut self, above: Ballot) -> Vec<Outgoing<V>> {
        let Some((_, proposer)) = self.proposer.take() else {
            return Vec::new();
        };
        let value = proposer.own_value().clone();
        self.attempts += 1;
        if self.attempts > MAX_ATTEMPTS {
            // Back off: requeue and wait for the log to move.
            self.pending.push_front(value);
            return Vec::new();
        }
        let slot = self.first_gap();
        self.max_round_seen = self.max_round_seen.max(above.round) + 1;
        let ballot = Ballot {
            round: self.max_round_seen,
            node: self.me,
        };
        let quorum = self.quorum();
        self.proposer = Some((slot, Proposer::new(self.me, quorum, ballot, value)));
        vec![Outgoing::Broadcast(Message::Prepare { slot, ballot })]
    }

    /// Records a chosen value and advances pending proposals.
    fn learn(&mut self, slot: Slot, value: V) -> Vec<Outgoing<V>> {
        self.chosen.entry(slot).or_insert(value);
        // If our in-flight proposal targeted this slot, its fate is
        // decided: either our value was chosen (done) or someone
        // else's was (our value must go to another slot).
        if let Some((pslot, proposer)) = self.proposer.take() {
            if pslot == slot {
                let mine = proposer.own_value().clone();
                if self.chosen.get(&slot) != Some(&mine) {
                    self.pending.push_front(mine);
                }
            } else {
                self.proposer = Some((pslot, proposer));
            }
        }
        if self.proposer.is_none() {
            self.start_next_proposal()
        } else {
            Vec::new()
        }
    }

    /// Handles one incoming message, returning the messages to send.
    ///
    /// Lagging learners piggyback catch-up on regular traffic: any
    /// message about a slot beyond this node's first gap triggers a
    /// [`Message::LearnRequest`] for the gap back to the sender.
    #[allow(clippy::too_many_lines)]
    pub fn handle(&mut self, from: ReplicaId, msg: Message<V>) -> Vec<Outgoing<V>> {
        let mut catch_up = Vec::new();
        if from != self.me {
            let gap = self.first_gap();
            if msg.slot() > gap {
                catch_up.push(Outgoing::To(from, Message::LearnRequest { slot: gap }));
            }
        }
        let mut out = self.handle_inner(from, msg);
        out.extend(catch_up);
        out
    }

    fn handle_inner(&mut self, from: ReplicaId, msg: Message<V>) -> Vec<Outgoing<V>> {
        match msg {
            Message::Prepare { slot, ballot } => {
                self.max_round_seen = self.max_round_seen.max(ballot.round);
                if self.chosen.contains_key(&slot) {
                    // Fast path: the slot is decided; teach the sender.
                    let value = self.chosen[&slot].clone();
                    return vec![Outgoing::To(from, Message::Learn { slot, value })];
                }
                let acceptor = self.acceptors.entry(slot).or_default();
                match acceptor.prepare(ballot) {
                    Verdict::Promised(accepted) => vec![Outgoing::To(
                        from,
                        Message::Promise {
                            slot,
                            ballot,
                            accepted,
                        },
                    )],
                    Verdict::Rejected(promised) => vec![Outgoing::To(
                        from,
                        Message::Nack {
                            slot,
                            ballot,
                            promised,
                        },
                    )],
                    Verdict::Accepted => unreachable!("prepare never returns Accepted"),
                }
            }
            Message::Accept {
                slot,
                ballot,
                value,
            } => {
                self.max_round_seen = self.max_round_seen.max(ballot.round);
                if self.chosen.contains_key(&slot) {
                    let value = self.chosen[&slot].clone();
                    return vec![Outgoing::To(from, Message::Learn { slot, value })];
                }
                let acceptor = self.acceptors.entry(slot).or_default();
                match acceptor.accept(ballot, value) {
                    Verdict::Accepted => {
                        vec![Outgoing::To(from, Message::Accepted { slot, ballot })]
                    }
                    Verdict::Rejected(promised) => vec![Outgoing::To(
                        from,
                        Message::Nack {
                            slot,
                            ballot,
                            promised,
                        },
                    )],
                    Verdict::Promised(_) => unreachable!("accept never returns Promised"),
                }
            }
            Message::Promise {
                slot,
                ballot,
                accepted,
            } => {
                let Some((pslot, proposer)) = self.proposer.as_mut() else {
                    return Vec::new();
                };
                if *pslot != slot {
                    return Vec::new();
                }
                match proposer.on_promise(from, ballot, accepted) {
                    Action::SendAccepts { ballot, value } => {
                        vec![Outgoing::Broadcast(Message::Accept {
                            slot,
                            ballot,
                            value,
                        })]
                    }
                    Action::Wait => Vec::new(),
                    Action::Chosen(_) | Action::Preempted { .. } => {
                        unreachable!("promise cannot finish a proposal")
                    }
                }
            }
            Message::Accepted { slot, ballot } => {
                let Some((pslot, proposer)) = self.proposer.as_mut() else {
                    return Vec::new();
                };
                if *pslot != slot {
                    return Vec::new();
                }
                match proposer.on_accepted(from, ballot) {
                    Action::Chosen(value) => {
                        let mut out = vec![Outgoing::Broadcast(Message::Learn {
                            slot,
                            value: value.clone(),
                        })];
                        out.extend(self.learn(slot, value));
                        out
                    }
                    Action::Wait => Vec::new(),
                    Action::SendAccepts { .. } | Action::Preempted { .. } => {
                        unreachable!("accepted cannot preempt or re-accept")
                    }
                }
            }
            Message::Nack {
                slot,
                ballot,
                promised,
            } => {
                self.max_round_seen = self.max_round_seen.max(promised.round);
                let Some((pslot, proposer)) = self.proposer.as_mut() else {
                    return Vec::new();
                };
                if *pslot != slot {
                    return Vec::new();
                }
                match proposer.on_nack(ballot, promised) {
                    Action::Preempted { retry_above } => self.retry_current(retry_above),
                    Action::Wait => Vec::new(),
                    Action::SendAccepts { .. } | Action::Chosen(_) => {
                        unreachable!("nack cannot advance a proposal")
                    }
                }
            }
            Message::Learn { slot, value } => self.learn(slot, value),
            Message::LearnRequest { slot } => match self.chosen.get(&slot) {
                Some(value) => vec![Outgoing::To(
                    from,
                    Message::Learn {
                        slot,
                        value: value.clone(),
                    },
                )],
                None => Vec::new(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_prefix_stops_at_gap() {
        let mut r: Replica<u32> = Replica::new(ReplicaId(0), 3);
        r.chosen.insert(0, 10);
        r.chosen.insert(1, 11);
        r.chosen.insert(3, 13);
        assert_eq!(r.committed_prefix(), vec![&10, &11]);
        assert_eq!(r.first_gap(), 2);
    }

    #[test]
    fn submit_broadcasts_prepare() {
        let mut r: Replica<u32> = Replica::new(ReplicaId(1), 3);
        let out = r.submit(42);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0],
            Outgoing::Broadcast(Message::Prepare { slot: 0, .. })
        ));
        // A second submission queues behind the first.
        assert!(r.submit(43).is_empty());
        assert_eq!(r.pending_len(), 2);
    }

    #[test]
    fn prepare_on_decided_slot_teaches_learn() {
        let mut r: Replica<u32> = Replica::new(ReplicaId(0), 3);
        r.chosen.insert(0, 99);
        let out = r.handle(
            ReplicaId(2),
            Message::Prepare {
                slot: 0,
                ballot: Ballot {
                    round: 5,
                    node: ReplicaId(2),
                },
            },
        );
        assert_eq!(
            out,
            vec![Outgoing::To(
                ReplicaId(2),
                Message::Learn { slot: 0, value: 99 }
            )]
        );
    }

    #[test]
    fn learn_of_foreign_value_requeues_own() {
        let mut r: Replica<u32> = Replica::new(ReplicaId(0), 3);
        let _ = r.submit(42); // proposing 42 at slot 0
                              // Someone else's value gets chosen at slot 0.
        let out = r.handle(ReplicaId(1), Message::Learn { slot: 0, value: 7 });
        assert_eq!(r.chosen(0), Some(&7));
        // Our 42 restarts at slot 1.
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0],
            Outgoing::Broadcast(Message::Prepare { slot: 1, .. })
        ));
    }
}
