//! A deterministic in-memory replica group for tests, simulations and
//! fault injection.

use mayflower_simcore::{EventQueue, SimRng, SimTime};

use crate::messages::{Message, ReplicaId, Slot};
use crate::replica::{Outgoing, Replica};

/// Network fault model for the harness.
#[derive(Debug, Clone, Copy)]
pub struct FaultModel {
    /// Probability each message is silently dropped.
    pub drop_probability: f64,
    /// Probability each delivered message is delivered twice.
    pub duplicate_probability: f64,
}

impl Default for FaultModel {
    fn default() -> FaultModel {
        FaultModel {
            drop_probability: 0.0,
            duplicate_probability: 0.0,
        }
    }
}

/// A replica group wired through a deterministic message queue.
///
/// Messages are delivered in timestamp order (unit latency per hop,
/// FIFO among equals), optionally dropped or duplicated under a seeded
/// [`FaultModel`] — so every run, including every failure schedule, is
/// reproducible from the seed.
#[derive(Debug)]
pub struct Cluster<V> {
    replicas: Vec<Replica<V>>,
    queue: EventQueue<(ReplicaId, ReplicaId, Message<V>)>,
    now: SimTime,
    rng: SimRng,
    faults: FaultModel,
    /// Crashed nodes neither send nor receive.
    crashed: Vec<bool>,
    delivered: u64,
    dropped: u64,
}

impl<V: Clone + Eq + std::fmt::Debug> Cluster<V> {
    /// Creates a group of `n` replicas with a reliable network.
    #[must_use]
    pub fn new(n: usize, seed: u64) -> Cluster<V> {
        Cluster::with_faults(n, seed, FaultModel::default())
    }

    /// Creates a group with the given fault model.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_faults(n: usize, seed: u64, faults: FaultModel) -> Cluster<V> {
        assert!(n > 0, "a replica group needs at least one node");
        Cluster {
            replicas: (0..n as u32)
                .map(|i| Replica::new(ReplicaId(i), n))
                .collect(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            rng: SimRng::seed_from(seed),
            faults,
            crashed: vec![false; n],
            delivered: 0,
            dropped: 0,
        }
    }

    /// Number of replicas.
    #[must_use]
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the group is empty (never true).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Access a replica.
    #[must_use]
    pub fn replica(&self, id: ReplicaId) -> &Replica<V> {
        &self.replicas[id.0 as usize]
    }

    /// Crashes a node: it stops sending and receiving. (Its acceptor
    /// state is retained, modelling a stopped-but-recoverable
    /// process.)
    pub fn crash(&mut self, id: ReplicaId) {
        self.crashed[id.0 as usize] = true;
    }

    /// Restarts a crashed node with its durable state intact.
    pub fn restart(&mut self, id: ReplicaId) {
        self.crashed[id.0 as usize] = false;
    }

    /// Withdraws node `at`'s in-flight proposal (after the caller
    /// surfaced a no-quorum failure). See
    /// [`Replica::abandon_current`] for the safety caveat.
    pub fn abandon(&mut self, at: ReplicaId) -> Option<V> {
        self.replicas[at.0 as usize].abandon_current()
    }

    /// Submits `value` for replication through node `at`.
    pub fn propose(&mut self, at: ReplicaId, value: V) {
        if self.crashed[at.0 as usize] {
            return;
        }
        let out = self.replicas[at.0 as usize].submit(value);
        self.dispatch(at, out);
    }

    fn dispatch(&mut self, from: ReplicaId, out: Vec<Outgoing<V>>) {
        for o in out {
            match o {
                Outgoing::To(to, msg) => self.enqueue(from, to, msg),
                Outgoing::Broadcast(msg) => {
                    for i in 0..self.replicas.len() as u32 {
                        self.enqueue(from, ReplicaId(i), msg.clone());
                    }
                }
            }
        }
    }

    fn enqueue(&mut self, from: ReplicaId, to: ReplicaId, msg: Message<V>) {
        if self.rng.chance(self.faults.drop_probability) {
            self.dropped += 1;
            return;
        }
        let deliver_at = self.now + SimTime::from_secs(1.0);
        if self.rng.chance(self.faults.duplicate_probability) {
            self.queue.schedule(deliver_at, (from, to, msg.clone()));
        }
        self.queue.schedule(deliver_at, (from, to, msg));
    }

    /// Delivers a single message; returns whether one was pending.
    pub fn step(&mut self) -> bool {
        let Some((t, (from, to, msg))) = self.queue.pop() else {
            return false;
        };
        self.now = self.now.max(t);
        if self.crashed[to.0 as usize] {
            self.dropped += 1;
            return true;
        }
        self.delivered += 1;
        let out = self.replicas[to.0 as usize].handle(from, msg);
        self.dispatch(to, out);
        true
    }

    /// Delivers messages until none are pending (or a safety valve of
    /// one million deliveries trips).
    pub fn run_to_quiescence(&mut self) {
        let mut steps = 0u64;
        while self.step() {
            steps += 1;
            assert!(steps < 1_000_000, "replica group failed to quiesce");
        }
    }

    /// A value every replica group member agrees is chosen for `slot`
    /// (from any node that learned it).
    #[must_use]
    pub fn chosen(&self, slot: Slot) -> Option<&V> {
        self.replicas.iter().find_map(|r| r.chosen(slot))
    }

    /// Checks the Paxos safety property: no two replicas have learned
    /// different values for the same slot.
    ///
    /// # Panics
    ///
    /// Panics (with diagnostics) on disagreement — call from tests.
    pub fn assert_agreement(&self) {
        let max_slot = self
            .replicas
            .iter()
            .flat_map(|r| r.log().keys().copied())
            .max()
            .unwrap_or(0);
        for slot in 0..=max_slot {
            let mut value: Option<(&V, ReplicaId)> = None;
            for r in &self.replicas {
                if let Some(v) = r.chosen(slot) {
                    match value {
                        None => value = Some((v, r.id())),
                        Some((prev, who)) => assert!(
                            prev == v,
                            "slot {slot}: {who} learned {prev:?} but {} learned {v:?}",
                            r.id()
                        ),
                    }
                }
            }
        }
    }

    /// Delivered / dropped message counts (for fault-model tests).
    #[must_use]
    pub fn message_stats(&self) -> (u64, u64) {
        (self.delivered, self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_proposal_is_chosen_everywhere() {
        let mut c: Cluster<&str> = Cluster::new(3, 1);
        c.propose(ReplicaId(0), "op-1");
        c.run_to_quiescence();
        for i in 0..3 {
            assert_eq!(c.replica(ReplicaId(i)).chosen(0), Some(&"op-1"));
        }
        c.assert_agreement();
    }

    #[test]
    fn sequential_proposals_fill_consecutive_slots() {
        let mut c: Cluster<u32> = Cluster::new(5, 2);
        for v in 0..10u32 {
            c.propose(ReplicaId(v % 5), v);
            c.run_to_quiescence();
        }
        c.assert_agreement();
        let log = c.replica(ReplicaId(0)).log();
        assert_eq!(log.len(), 10);
        let values: Vec<u32> = log.values().copied().collect();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_proposals_all_land_without_loss() {
        let mut c: Cluster<u32> = Cluster::new(3, 3);
        // Two nodes race for slot 0.
        c.propose(ReplicaId(0), 100);
        c.propose(ReplicaId(1), 200);
        c.run_to_quiescence();
        c.assert_agreement();
        // Both values must be in the log (slots 0 and 1, either order).
        let log = c.replica(ReplicaId(2)).log();
        let values: Vec<u32> = log.values().copied().collect();
        assert!(values.contains(&100), "log {values:?}");
        assert!(values.contains(&200), "log {values:?}");
    }

    #[test]
    fn survives_minority_crash() {
        let mut c: Cluster<u32> = Cluster::new(5, 4);
        c.crash(ReplicaId(3));
        c.crash(ReplicaId(4));
        c.propose(ReplicaId(0), 7);
        c.run_to_quiescence();
        assert_eq!(c.chosen(0), Some(&7));
        c.assert_agreement();
        // The crashed nodes learn after restarting, from the next
        // proposal's fast-path teaching.
        c.restart(ReplicaId(3));
        c.propose(ReplicaId(3), 8);
        c.run_to_quiescence();
        c.assert_agreement();
        assert!(c.replica(ReplicaId(3)).chosen(0).is_some());
    }

    #[test]
    fn majority_crash_blocks_progress_but_keeps_safety() {
        let mut c: Cluster<u32> = Cluster::new(3, 5);
        c.crash(ReplicaId(1));
        c.crash(ReplicaId(2));
        c.propose(ReplicaId(0), 7);
        c.run_to_quiescence();
        assert_eq!(c.chosen(0), None, "no quorum, nothing may be chosen");
        // Restart: the pending value can be re-driven later.
        c.restart(ReplicaId(1));
        c.propose(ReplicaId(0), 8); // queues behind 7... which backed off
        c.run_to_quiescence();
        c.assert_agreement();
    }

    #[test]
    fn lossy_network_still_agrees() {
        for seed in 0..10 {
            let mut c: Cluster<u32> = Cluster::with_faults(
                3,
                seed,
                FaultModel {
                    drop_probability: 0.10,
                    duplicate_probability: 0.10,
                },
            );
            for v in 0..5 {
                c.propose(ReplicaId(v % 3), v);
                c.run_to_quiescence();
            }
            c.assert_agreement();
            let (_, dropped) = c.message_stats();
            let _ = dropped;
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut c: Cluster<u32> = Cluster::with_faults(
                3,
                seed,
                FaultModel {
                    drop_probability: 0.2,
                    duplicate_probability: 0.0,
                },
            );
            c.propose(ReplicaId(0), 1);
            c.propose(ReplicaId(1), 2);
            c.run_to_quiescence();
            let log: Vec<u32> = c.replica(ReplicaId(0)).log().values().copied().collect();
            (log, c.message_stats())
        };
        assert_eq!(run(9), run(9));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// Agreement holds under arbitrary proposal schedules and
        /// lossy, duplicating networks.
        #[test]
        fn agreement_under_faults(
            seed in any::<u64>(),
            n in 3usize..6,
            drop_p in 0.0f64..0.3,
            dup_p in 0.0f64..0.2,
            proposals in proptest::collection::vec((0u32..6, 0u32..100), 1..12),
        ) {
            let mut c: Cluster<u32> = Cluster::with_faults(
                n,
                seed,
                FaultModel {
                    drop_probability: drop_p,
                    duplicate_probability: dup_p,
                },
            );
            for (node, value) in proposals {
                c.propose(ReplicaId(node % n as u32), value);
                // Interleave delivery with proposals.
                for _ in 0..5 {
                    c.step();
                }
            }
            c.run_to_quiescence();
            c.assert_agreement();
        }

        /// With a reliable network, every submitted value ends up in
        /// every replica's log exactly once (no loss, no duplication).
        #[test]
        fn reliable_network_loses_nothing(
            seed in any::<u64>(),
            values in proptest::collection::vec(0u32..1000, 1..15),
        ) {
            let mut c: Cluster<(u32, u32)> = Cluster::new(3, seed);
            for (i, v) in values.iter().enumerate() {
                // Tag with index so duplicates in the input stay
                // distinguishable.
                c.propose(ReplicaId((i % 3) as u32), (i as u32, *v));
                c.run_to_quiescence();
            }
            c.assert_agreement();
            for r in 0..3u32 {
                let log = c.replica(ReplicaId(r)).log();
                prop_assert_eq!(log.len(), values.len());
            }
        }
    }
}
