//! Protocol identifiers and messages.

use serde::{Deserialize, Serialize};

/// Identifies a node in the replica group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReplicaId(pub u32);

impl From<u32> for ReplicaId {
    fn from(v: u32) -> ReplicaId {
        ReplicaId(v)
    }
}

impl std::fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A position in the replicated log.
pub type Slot = u64;

/// A Paxos ballot number: totally ordered, unique per proposer
/// (ordered by round, ties broken by node id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ballot {
    /// Monotone round counter.
    pub round: u64,
    /// The proposing node (tie-breaker).
    pub node: ReplicaId,
}

impl Ballot {
    /// The smallest possible ballot, below every real proposal.
    pub const ZERO: Ballot = Ballot {
        round: 0,
        node: ReplicaId(0),
    };

    /// The next ballot for `node` that beats `other`.
    #[must_use]
    pub fn above(other: Ballot, node: ReplicaId) -> Ballot {
        Ballot {
            round: other.round + 1,
            node,
        }
    }
}

impl std::fmt::Display for Ballot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{}.{}", self.round, self.node.0)
    }
}

/// Protocol messages for one slot. `V` is the replicated value type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Message<V> {
    /// Phase 1a: a proposer asks acceptors to promise.
    Prepare {
        /// Log position.
        slot: Slot,
        /// The proposer's ballot.
        ballot: Ballot,
    },
    /// Phase 1b: an acceptor promises, reporting any value it already
    /// accepted.
    Promise {
        /// Log position.
        slot: Slot,
        /// The ballot being promised.
        ballot: Ballot,
        /// The highest-ballot value this acceptor accepted, if any.
        accepted: Option<(Ballot, V)>,
    },
    /// Phase 2a: the proposer asks acceptors to accept a value.
    Accept {
        /// Log position.
        slot: Slot,
        /// The proposer's ballot.
        ballot: Ballot,
        /// The proposed (possibly adopted) value.
        value: V,
    },
    /// Phase 2b: an acceptor accepted.
    Accepted {
        /// Log position.
        slot: Slot,
        /// The accepted ballot.
        ballot: Ballot,
    },
    /// Rejection of a stale ballot (phase 1 or 2), carrying the ballot
    /// the acceptor is bound to so the proposer can jump past it.
    Nack {
        /// Log position.
        slot: Slot,
        /// The rejected ballot.
        ballot: Ballot,
        /// The acceptor's current promise.
        promised: Ballot,
    },
    /// The proposer learned a value was chosen and broadcasts it.
    Learn {
        /// Log position.
        slot: Slot,
        /// The chosen value.
        value: V,
    },
    /// A lagging learner asks a peer for the chosen value of a slot it
    /// missed (crash-recovery catch-up).
    LearnRequest {
        /// The log position being asked about.
        slot: Slot,
    },
}

impl<V> Message<V> {
    /// The slot this message belongs to.
    #[must_use]
    pub fn slot(&self) -> Slot {
        match self {
            Message::Prepare { slot, .. }
            | Message::Promise { slot, .. }
            | Message::Accept { slot, .. }
            | Message::Accepted { slot, .. }
            | Message::Nack { slot, .. }
            | Message::Learn { slot, .. }
            | Message::LearnRequest { slot } => *slot,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ballots_order_by_round_then_node() {
        let a = Ballot {
            round: 1,
            node: ReplicaId(2),
        };
        let b = Ballot {
            round: 2,
            node: ReplicaId(0),
        };
        let c = Ballot {
            round: 2,
            node: ReplicaId(1),
        };
        assert!(a < b);
        assert!(b < c);
        assert!(Ballot::ZERO < a);
    }

    #[test]
    fn above_always_beats() {
        let b = Ballot {
            round: 9,
            node: ReplicaId(5),
        };
        let higher = Ballot::above(b, ReplicaId(0));
        assert!(higher > b);
    }

    #[test]
    fn message_slot_accessor() {
        let m: Message<u32> = Message::Prepare {
            slot: 7,
            ballot: Ballot::ZERO,
        };
        assert_eq!(m.slot(), 7);
        let m: Message<u32> = Message::Learn { slot: 3, value: 1 };
        assert_eq!(m.slot(), 3);
    }
}
