//! The proposer half of single-decree Paxos.

use crate::messages::{Ballot, ReplicaId};

/// The phase a proposal is in.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Phase {
    Preparing,
    Accepting,
    Done,
}

/// Drives one slot's proposal to consensus.
///
/// The proposer keeps the classic invariant: after a quorum of
/// promises, it proposes the accepted value with the highest reported
/// ballot if any promise carried one, and its own value otherwise.
#[derive(Debug, Clone)]
pub struct Proposer<V> {
    me: ReplicaId,
    quorum: usize,
    ballot: Ballot,
    /// The value this node wants; superseded by adopted values.
    own_value: V,
    /// The value actually proposed in phase 2.
    proposal: Option<V>,
    /// Highest accepted proposal seen among promises.
    best_adopted: Option<(Ballot, V)>,
    promises: Vec<ReplicaId>,
    accepts: Vec<ReplicaId>,
    phase: Phase,
}

/// What the caller should do after feeding the proposer an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action<V> {
    /// Nothing yet; keep collecting.
    Wait,
    /// Quorum of promises: broadcast `Accept(ballot, value)`.
    SendAccepts {
        /// The ballot to accept at.
        ballot: Ballot,
        /// The value to propose (own or adopted).
        value: V,
    },
    /// Quorum of accepts: the value is chosen.
    Chosen(V),
    /// Preempted by a higher ballot; restart with one above `retry_above`.
    Preempted {
        /// The ballot that displaced us.
        retry_above: Ballot,
    },
}

impl<V: Clone> Proposer<V> {
    /// Starts a proposal for `value` at `ballot` in a group where
    /// `quorum` acknowledgements form a majority.
    ///
    /// # Panics
    ///
    /// Panics if `quorum == 0`.
    #[must_use]
    pub fn new(me: ReplicaId, quorum: usize, ballot: Ballot, value: V) -> Proposer<V> {
        assert!(quorum > 0, "quorum must be positive");
        Proposer {
            me,
            quorum,
            ballot,
            own_value: value,
            proposal: None,
            best_adopted: None,
            promises: Vec::new(),
            accepts: Vec::new(),
            phase: Phase::Preparing,
        }
    }

    /// The proposer's node id.
    #[must_use]
    pub fn me(&self) -> ReplicaId {
        self.me
    }

    /// The ballot being driven.
    #[must_use]
    pub fn ballot(&self) -> Ballot {
        self.ballot
    }

    /// The value this proposer originally wanted.
    #[must_use]
    pub fn own_value(&self) -> &V {
        &self.own_value
    }

    /// Handles a `Promise(ballot, accepted)` from `from`.
    pub fn on_promise(
        &mut self,
        from: ReplicaId,
        ballot: Ballot,
        accepted: Option<(Ballot, V)>,
    ) -> Action<V> {
        if self.phase != Phase::Preparing || ballot != self.ballot {
            return Action::Wait; // stale or duplicate
        }
        if !self.promises.contains(&from) {
            self.promises.push(from);
            if let Some((b, v)) = accepted {
                if self.best_adopted.as_ref().is_none_or(|(bb, _)| b > *bb) {
                    self.best_adopted = Some((b, v));
                }
            }
        }
        if self.promises.len() >= self.quorum {
            self.phase = Phase::Accepting;
            let value = self
                .best_adopted
                .clone()
                .map_or_else(|| self.own_value.clone(), |(_, v)| v);
            self.proposal = Some(value.clone());
            Action::SendAccepts {
                ballot: self.ballot,
                value,
            }
        } else {
            Action::Wait
        }
    }

    /// Handles an `Accepted(ballot)` from `from`.
    pub fn on_accepted(&mut self, from: ReplicaId, ballot: Ballot) -> Action<V> {
        if self.phase != Phase::Accepting || ballot != self.ballot {
            return Action::Wait;
        }
        if !self.accepts.contains(&from) {
            self.accepts.push(from);
        }
        if self.accepts.len() >= self.quorum {
            self.phase = Phase::Done;
            Action::Chosen(self.proposal.clone().expect("proposal set in Accepting"))
        } else {
            Action::Wait
        }
    }

    /// Handles a `Nack(ballot, promised)`.
    pub fn on_nack(&mut self, ballot: Ballot, promised: Ballot) -> Action<V> {
        if self.phase == Phase::Done || ballot != self.ballot {
            return Action::Wait;
        }
        self.phase = Phase::Done; // this attempt is dead
        Action::Preempted {
            retry_above: promised,
        }
    }

    /// Whether the proposal finished (chosen or preempted).
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(round: u64, node: u32) -> Ballot {
        Ballot {
            round,
            node: ReplicaId(node),
        }
    }

    #[test]
    fn happy_path_three_nodes() {
        let mut p = Proposer::new(ReplicaId(0), 2, b(1, 0), "x");
        assert_eq!(p.on_promise(ReplicaId(0), b(1, 0), None), Action::Wait);
        let act = p.on_promise(ReplicaId(1), b(1, 0), None);
        assert_eq!(
            act,
            Action::SendAccepts {
                ballot: b(1, 0),
                value: "x"
            }
        );
        assert_eq!(p.on_accepted(ReplicaId(0), b(1, 0)), Action::Wait);
        assert_eq!(p.on_accepted(ReplicaId(2), b(1, 0)), Action::Chosen("x"));
        assert!(p.is_done());
    }

    #[test]
    fn adopts_highest_prior_acceptance() {
        let mut p = Proposer::new(ReplicaId(0), 2, b(5, 0), "mine");
        p.on_promise(ReplicaId(1), b(5, 0), Some((b(2, 1), "old")));
        let act = p.on_promise(ReplicaId(2), b(5, 0), Some((b(3, 2), "newer")));
        assert_eq!(
            act,
            Action::SendAccepts {
                ballot: b(5, 0),
                value: "newer"
            }
        );
    }

    #[test]
    fn duplicate_promises_do_not_fake_quorum() {
        let mut p = Proposer::new(ReplicaId(0), 2, b(1, 0), 7u32);
        assert_eq!(p.on_promise(ReplicaId(1), b(1, 0), None), Action::Wait);
        assert_eq!(p.on_promise(ReplicaId(1), b(1, 0), None), Action::Wait);
    }

    #[test]
    fn stale_ballot_messages_ignored() {
        let mut p = Proposer::new(ReplicaId(0), 2, b(2, 0), 7u32);
        assert_eq!(p.on_promise(ReplicaId(1), b(1, 0), None), Action::Wait);
        assert_eq!(p.on_accepted(ReplicaId(1), b(1, 0)), Action::Wait);
    }

    #[test]
    fn nack_preempts() {
        let mut p = Proposer::new(ReplicaId(0), 2, b(1, 0), 7u32);
        let act = p.on_nack(b(1, 0), b(4, 2));
        assert_eq!(
            act,
            Action::Preempted {
                retry_above: b(4, 2)
            }
        );
        assert!(p.is_done());
        // Late promises after preemption are ignored.
        assert_eq!(p.on_promise(ReplicaId(1), b(1, 0), None), Action::Wait);
    }
}
