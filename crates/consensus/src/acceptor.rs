//! The acceptor half of single-decree Paxos.

use serde::{Deserialize, Serialize};

use crate::messages::Ballot;

/// Per-slot acceptor state: the promise and the highest accepted
/// proposal. This is the state that must survive crashes for Paxos's
/// safety argument; [`crate::replica::Replica`] keeps one per slot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Acceptor<V> {
    promised: Option<Ballot>,
    accepted: Option<(Ballot, V)>,
}

impl<V> Default for Acceptor<V> {
    fn default() -> Acceptor<V> {
        Acceptor {
            promised: None,
            accepted: None,
        }
    }
}

/// The acceptor's verdict on a phase-1 or phase-2 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict<V> {
    /// Promise granted; carries the previously accepted proposal (the
    /// value the proposer must adopt if present).
    Promised(Option<(Ballot, V)>),
    /// Value accepted at the given ballot.
    Accepted,
    /// Request rejected; carries the ballot the acceptor is bound to.
    Rejected(Ballot),
}

impl<V: Clone> Acceptor<V> {
    /// Creates a fresh acceptor.
    #[must_use]
    pub fn new() -> Acceptor<V> {
        Acceptor {
            promised: None,
            accepted: None,
        }
    }

    /// Phase 1a: handle `Prepare(ballot)`.
    ///
    /// Grants the promise iff `ballot` is at least as high as any
    /// previous promise; a granted promise forbids accepting lower
    /// ballots forever.
    pub fn prepare(&mut self, ballot: Ballot) -> Verdict<V> {
        if self.promised.is_some_and(|p| ballot < p) {
            return Verdict::Rejected(self.promised.expect("checked above"));
        }
        self.promised = Some(ballot);
        Verdict::Promised(self.accepted.clone())
    }

    /// Phase 2a: handle `Accept(ballot, value)`.
    ///
    /// Accepts iff the acceptor has not promised a strictly higher
    /// ballot.
    pub fn accept(&mut self, ballot: Ballot, value: V) -> Verdict<V> {
        if self.promised.is_some_and(|p| ballot < p) {
            return Verdict::Rejected(self.promised.expect("checked above"));
        }
        self.promised = Some(ballot);
        self.accepted = Some((ballot, value));
        Verdict::Accepted
    }

    /// The current promise, if any.
    #[must_use]
    pub fn promised(&self) -> Option<Ballot> {
        self.promised
    }

    /// The highest accepted proposal, if any.
    #[must_use]
    pub fn accepted(&self) -> Option<&(Ballot, V)> {
        self.accepted.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::ReplicaId;

    fn b(round: u64) -> Ballot {
        Ballot {
            round,
            node: ReplicaId(0),
        }
    }

    #[test]
    fn first_prepare_is_promised_empty() {
        let mut a: Acceptor<u32> = Acceptor::new();
        assert_eq!(a.prepare(b(1)), Verdict::Promised(None));
        assert_eq!(a.promised(), Some(b(1)));
    }

    #[test]
    fn lower_prepare_rejected_after_promise() {
        let mut a: Acceptor<u32> = Acceptor::new();
        a.prepare(b(5));
        assert_eq!(a.prepare(b(3)), Verdict::Rejected(b(5)));
        // Equal or higher re-promise is fine (idempotent prepare).
        assert_eq!(a.prepare(b(5)), Verdict::Promised(None));
        assert_eq!(a.prepare(b(9)), Verdict::Promised(None));
    }

    #[test]
    fn accept_respects_promise() {
        let mut a: Acceptor<u32> = Acceptor::new();
        a.prepare(b(5));
        assert_eq!(a.accept(b(4), 10), Verdict::Rejected(b(5)));
        assert_eq!(a.accept(b(5), 10), Verdict::Accepted);
        assert_eq!(a.accepted(), Some(&(b(5), 10)));
    }

    #[test]
    fn promise_reports_prior_acceptance() {
        let mut a: Acceptor<u32> = Acceptor::new();
        a.prepare(b(1));
        a.accept(b(1), 42);
        // A later prepare must surface the accepted proposal so the
        // new proposer adopts it — the heart of Paxos safety.
        assert_eq!(a.prepare(b(2)), Verdict::Promised(Some((b(1), 42))));
    }

    #[test]
    fn accept_without_prepare_is_allowed() {
        // An acceptor that never promised can accept directly (the
        // proposer prepared on a quorum that excluded it).
        let mut a: Acceptor<u32> = Acceptor::new();
        assert_eq!(a.accept(b(3), 7), Verdict::Accepted);
        assert_eq!(a.promised(), Some(b(3)));
    }

    #[test]
    fn higher_accept_overwrites_lower() {
        let mut a: Acceptor<u32> = Acceptor::new();
        a.accept(b(1), 1);
        a.accept(b(2), 2);
        assert_eq!(a.accepted(), Some(&(b(2), 2)));
        // But a lower one cannot roll it back.
        assert_eq!(a.accept(b(1), 3), Verdict::Rejected(b(2)));
        assert_eq!(a.accepted(), Some(&(b(2), 2)));
    }
}
