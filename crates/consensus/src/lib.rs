#![warn(missing_docs)]

//! Single-decree Paxos and a replicated operation log.
//!
//! The paper leaves nameserver fault tolerance as future work: "We can
//! improve the fault-tolerance of the nameserver by using a state
//! machine replication algorithm, such as Paxos, to replicate the
//! nameserver to multiple nodes" (§3.3.1). This crate provides that
//! substrate:
//!
//! * [`acceptor`] / [`proposer`] — the two halves of single-decree
//!   Paxos (the Synod protocol), as pure, deterministic state
//!   machines.
//! * [`replica`] — one node of a multi-slot replicated log: an
//!   acceptor for every slot, a proposer when driving a proposal, and
//!   a learner tracking chosen values.
//! * [`cluster`] — a deterministic in-memory message network for
//!   driving a replica group in tests and simulations, with seeded
//!   message loss and duplication for fault injection.
//!
//! The state machines are transport-agnostic: every handler consumes
//! one message and returns the messages to send, so the same code runs
//! over the simulated network here or a real transport.
//!
//! # Example
//!
//! ```
//! use mayflower_consensus::cluster::Cluster;
//!
//! let mut cluster: Cluster<String> = Cluster::new(3, 7);
//! cluster.propose(0.into(), "create /a".to_string());
//! cluster.run_to_quiescence();
//! assert_eq!(cluster.chosen(0), Some(&"create /a".to_string()));
//! ```

pub mod acceptor;
pub mod cluster;
pub mod messages;
pub mod proposer;
pub mod replica;

pub use acceptor::Acceptor;
pub use cluster::Cluster;
pub use messages::{Ballot, Message, ReplicaId, Slot};
pub use proposer::Proposer;
pub use replica::Replica;
