//! A Hedera-style reactive flow scheduler (§2.4's "recent flow
//! scheduling systems such as Hedera and MicroTE").
//!
//! Hedera (Al-Fares et al., NSDI '10) periodically detects *elephant*
//! flows from switch statistics, estimates each flow's natural
//! bandwidth demand, and reassigns flows to paths by **global first
//! fit**: in demand order, keep a flow on its current path if the
//! path still fits its demand, otherwise move it to the first
//! equal-cost path with room, otherwise to the least-loaded path.
//!
//! The paper's argument is that this whole class is "limited to
//! finding the least congested path between the requester and the
//! pre-selected replica" — it reroutes, but cannot choose a different
//! replica. This implementation exists to measure exactly that gap.

use std::collections::HashMap;

use mayflower_net::{LinkId, Path, Topology};

/// One flow as seen by the scheduler at a scheduling round.
#[derive(Debug, Clone)]
pub struct HederaFlow {
    /// Caller's identifier for the flow (opaque to the scheduler).
    pub id: u64,
    /// Its current path.
    pub path: Path,
    /// Estimated natural demand, bits/sec (from switch statistics).
    pub demand_bps: f64,
}

/// The global-first-fit scheduler.
#[derive(Debug, Clone)]
pub struct Hedera {
    /// Flows below this fraction of their edge-link capacity are mice
    /// and never rerouted (Hedera's 10% threshold).
    pub elephant_threshold: f64,
}

impl Default for Hedera {
    fn default() -> Hedera {
        Hedera {
            elephant_threshold: 0.10,
        }
    }
}

impl Hedera {
    /// Creates a scheduler with Hedera's default 10% elephant
    /// threshold.
    #[must_use]
    pub fn new() -> Hedera {
        Hedera::default()
    }

    /// Runs one scheduling round: returns `(flow id, new path)` for
    /// every flow that should move.
    ///
    /// Deterministic: flows are processed in descending demand (ties
    /// by id), and candidate paths in the topology's canonical order.
    #[must_use]
    pub fn reschedule(&self, topo: &Topology, flows: &[HederaFlow]) -> Vec<(u64, Path)> {
        // Virtual link loads, seeded with the mice (never moved).
        let mut load: HashMap<LinkId, f64> = HashMap::new();
        let mut elephants: Vec<&HederaFlow> = Vec::new();
        for f in flows {
            let edge_cap = if f.path.is_empty() {
                f64::INFINITY
            } else {
                f.path.min_capacity(topo)
            };
            if f.demand_bps < self.elephant_threshold * edge_cap || f.path.is_empty() {
                for &l in f.path.links() {
                    *load.entry(l).or_insert(0.0) += f.demand_bps;
                }
            } else {
                elephants.push(f);
            }
        }
        elephants.sort_by(|a, b| {
            b.demand_bps
                .partial_cmp(&a.demand_bps)
                .expect("demands are finite")
                .then(a.id.cmp(&b.id))
        });

        let fits = |load: &HashMap<LinkId, f64>, path: &Path, demand: f64| {
            path.links().iter().all(|l| {
                load.get(l).copied().unwrap_or(0.0) + demand
                    <= topo.link(*l).capacity() * (1.0 + 1e-9)
            })
        };
        let place = |load: &mut HashMap<LinkId, f64>, path: &Path, demand: f64| {
            for &l in path.links() {
                *load.entry(l).or_insert(0.0) += demand;
            }
        };

        let mut moves = Vec::new();
        for f in elephants {
            let candidates = topo.shortest_paths(f.path.src(), f.path.dst());
            let chosen = if fits(&load, &f.path, f.demand_bps) {
                // Stay put: avoids churn, Hedera's behaviour for flows
                // whose path still accommodates them.
                f.path.clone()
            } else if let Some(p) = candidates.iter().find(|p| fits(&load, p, f.demand_bps)) {
                p.clone()
            } else {
                // No path fits: take the one minimizing the worst
                // resulting utilization.
                candidates
                    .iter()
                    .min_by(|a, b| {
                        let worst = |p: &Path| {
                            p.links()
                                .iter()
                                .map(|l| {
                                    (load.get(l).copied().unwrap_or(0.0) + f.demand_bps)
                                        / topo.link(*l).capacity()
                                })
                                .fold(0.0f64, f64::max)
                        };
                        worst(a).partial_cmp(&worst(b)).expect("finite")
                    })
                    .expect("hosts always have at least one path")
                    .clone()
            };
            place(&mut load, &chosen, f.demand_bps);
            if chosen != f.path {
                moves.push((f.id, chosen));
            }
        }
        moves
    }
}

/// Hedera's **natural demand estimation** (NSDI '10 §IV-A): the
/// bandwidth each flow would get if limited only by its sender and
/// receiver NICs, computed by alternating sender and receiver passes
/// until fixpoint.
///
/// * Sender pass: each source divides its uplink capacity equally
///   among its not-yet-limited flows (after subtracting flows already
///   limited elsewhere).
/// * Receiver pass: any receiver whose inbound demands exceed its
///   downlink capacity caps the over-demanding flows at an equal
///   share; those flows become receiver-limited (converged).
///
/// Returns one demand per `(src, dst)` flow, in input order.
#[must_use]
pub fn estimate_demands(
    topo: &Topology,
    flows: &[(mayflower_net::HostId, mayflower_net::HostId)],
) -> Vec<f64> {
    let n = flows.len();
    let mut demand = vec![0.0f64; n];
    let mut receiver_limited = vec![false; n];
    let src_cap: Vec<f64> = flows
        .iter()
        .map(|(s, _)| topo.link(topo.host_uplink(*s)).capacity())
        .collect();
    let dst_cap: Vec<f64> = flows
        .iter()
        .map(|(_, d)| topo.link(topo.host_downlink(*d)).capacity())
        .collect();

    for _ in 0..32 {
        let before = demand.clone();
        // Sender pass.
        let mut srcs: Vec<mayflower_net::HostId> = flows.iter().map(|(s, _)| *s).collect();
        srcs.sort_unstable();
        srcs.dedup();
        for s in &srcs {
            let idx: Vec<usize> = (0..n).filter(|i| flows[*i].0 == *s).collect();
            let converged_sum: f64 = idx
                .iter()
                .filter(|i| receiver_limited[**i])
                .map(|i| demand[*i])
                .sum();
            let free: Vec<usize> = idx
                .iter()
                .copied()
                .filter(|i| !receiver_limited[*i])
                .collect();
            if !free.is_empty() {
                let cap = src_cap[free[0]];
                let share = ((cap - converged_sum) / free.len() as f64).max(0.0);
                for i in free {
                    demand[i] = share;
                }
            }
        }
        // Receiver pass.
        let mut dsts: Vec<mayflower_net::HostId> = flows.iter().map(|(_, d)| *d).collect();
        dsts.sort_unstable();
        dsts.dedup();
        for d in &dsts {
            let idx: Vec<usize> = (0..n).filter(|i| flows[*i].1 == *d).collect();
            let total: f64 = idx.iter().map(|i| demand[*i]).sum();
            let cap = dst_cap[idx[0]];
            if total > cap * (1.0 + 1e-9) {
                // Waterfill the receiver capacity over current demands.
                let demands: Vec<f64> = idx.iter().map(|i| demand[*i]).collect();
                let alloc = mayflower_net::fairshare::waterfill(cap, &demands);
                for (k, i) in idx.iter().enumerate() {
                    if alloc[k] < demand[*i] - 1e-9 {
                        demand[*i] = alloc[k];
                        receiver_limited[*i] = true;
                    }
                }
            }
        }
        let moved = demand
            .iter()
            .zip(&before)
            .any(|(a, b)| (a - b).abs() > 1e-6);
        if !moved {
            break;
        }
    }
    demand
}

#[cfg(test)]
mod tests {
    use super::*;
    use mayflower_net::{HostId, TreeParams, GBPS};

    fn topo() -> Topology {
        Topology::three_tier(&TreeParams::paper_testbed())
    }

    fn flow(topo: &Topology, id: u64, a: u32, b: u32, path_idx: usize, demand: f64) -> HederaFlow {
        HederaFlow {
            id,
            path: topo.shortest_paths(HostId(a), HostId(b))[path_idx].clone(),
            demand_bps: demand,
        }
    }

    #[test]
    fn colliding_elephants_get_separated() {
        let t = topo();
        // Two cross-pod elephants forced onto the same core path.
        let f1 = flow(&t, 1, 0, 16, 0, 0.9 * GBPS);
        let mut f2 = flow(&t, 2, 4, 20, 0, 0.9 * GBPS);
        // Make f2's path share a core link with f1's.
        let shared = t
            .shortest_paths(HostId(4), HostId(20))
            .into_iter()
            .find(|p| p.shares_link_with(&f1.path))
            .expect("overlapping path exists");
        f2.path = shared;
        let moves = Hedera::new().reschedule(&t, &[f1.clone(), f2.clone()]);
        assert_eq!(moves.len(), 1, "exactly one flow should move: {moves:?}");
        let (id, new_path) = &moves[0];
        let stayed = if *id == 1 { &f2 } else { &f1 };
        assert!(!new_path.shares_link_with(&stayed.path));
    }

    #[test]
    fn satisfied_flows_stay_put() {
        let t = topo();
        // Disjoint flows with room to spare: no churn.
        let f1 = flow(&t, 1, 0, 1, 0, 0.5 * GBPS);
        let f2 = flow(&t, 2, 8, 9, 0, 0.5 * GBPS);
        assert!(Hedera::new().reschedule(&t, &[f1, f2]).is_empty());
    }

    #[test]
    fn mice_are_never_rerouted() {
        let t = topo();
        // Two tiny flows colliding on a core path: below the elephant
        // threshold, Hedera leaves them to ECMP.
        let f1 = flow(&t, 1, 0, 16, 0, 0.02 * GBPS);
        let f2 = flow(&t, 2, 0, 17, 0, 0.02 * GBPS);
        assert!(Hedera::new().reschedule(&t, &[f1, f2]).is_empty());
    }

    #[test]
    fn overload_picks_least_bad_path() {
        let t = topo();
        // Nine 0.9 Gbps elephants into the same destination host: no
        // path fits, but every flow still gets a placement.
        let flows: Vec<HederaFlow> = (0..9)
            .map(|i| flow(&t, i, 16 + i as u32, 0, 0, 0.9 * GBPS))
            .collect();
        let moves = Hedera::new().reschedule(&t, &flows);
        // Deterministic and bounded: every returned path is valid.
        for (_, p) in &moves {
            assert!(p.validate(&t));
        }
    }

    #[test]
    fn demand_estimation_single_flow_gets_line_rate() {
        let t = topo();
        let d = estimate_demands(&t, &[(HostId(0), HostId(16))]);
        assert!((d[0] - GBPS).abs() < 1.0);
    }

    #[test]
    fn demand_estimation_shared_sender_splits() {
        let t = topo();
        let d = estimate_demands(&t, &[(HostId(0), HostId(16)), (HostId(0), HostId(20))]);
        assert!((d[0] - 0.5 * GBPS).abs() < 1.0);
        assert!((d[1] - 0.5 * GBPS).abs() < 1.0);
    }

    #[test]
    fn demand_estimation_receiver_limit_redistributes() {
        let t = topo();
        // Sender 0 feeds receivers 16 and 20; receiver 16 also takes a
        // flow from sender 4. The receiver-16 contention caps those two
        // flows at 0.5; sender 0's freed capacity then goes to its
        // other flow.
        let flows = [
            (HostId(0), HostId(16)),
            (HostId(0), HostId(20)),
            (HostId(4), HostId(16)),
        ];
        let d = estimate_demands(&t, &flows);
        assert!((d[0] - 0.5 * GBPS).abs() < 1e6, "{d:?}");
        assert!((d[1] - 0.5 * GBPS).abs() < 1e6, "{d:?}");
        assert!((d[2] - 0.5 * GBPS).abs() < 1e6, "{d:?}");
    }

    #[test]
    fn deterministic() {
        let t = topo();
        let flows: Vec<HederaFlow> = (0..6)
            .map(|i| flow(&t, i, i as u32, 16 + i as u32, 0, 0.8 * GBPS))
            .collect();
        let a = Hedera::new().reschedule(&t, &flows);
        let b = Hedera::new().reschedule(&t, &flows);
        assert_eq!(a.len(), b.len());
        for ((ia, pa), (ib, pb)) in a.iter().zip(&b) {
            assert_eq!(ia, ib);
            assert_eq!(pa, pb);
        }
    }
}
