//! `Nearest`: static, topology-distance replica selection.
//!
//! This is HDFS's rack-aware read policy (§2.3): pick the replica with
//! the smallest network distance to the client. Distance cannot see
//! congestion, and — as the paper stresses in §1 — with only three
//! replicas in a large cluster, remote clients are frequently
//! equidistant from *all* replicas, at which point this degenerates to
//! random selection (ties here break by a uniform draw).

use mayflower_net::{HostId, Topology};
use mayflower_simcore::SimRng;

/// Selects the closest replica to `client` by hop distance, breaking
/// ties uniformly at random.
///
/// # Panics
///
/// Panics if `replicas` is empty.
///
/// # Example
///
/// ```
/// use mayflower_net::{HostId, Topology, TreeParams};
/// use mayflower_simcore::SimRng;
/// use mayflower_baselines::nearest_replica;
///
/// let topo = Topology::three_tier(&TreeParams::paper_testbed());
/// let mut rng = SimRng::seed_from(1);
/// // Replica 1 shares the client's rack; 20 is cross-pod.
/// let pick = nearest_replica(&topo, HostId(0), &[HostId(20), HostId(1)], &mut rng);
/// assert_eq!(pick, HostId(1));
/// ```
pub fn nearest_replica(
    topo: &Topology,
    client: HostId,
    replicas: &[HostId],
    rng: &mut SimRng,
) -> HostId {
    assert!(!replicas.is_empty(), "need at least one replica");
    let mut best_dist = usize::MAX;
    let mut best: Vec<HostId> = Vec::new();
    for &r in replicas {
        let d = topo
            .distance(client, r)
            .expect("replicas are reachable in a connected topology");
        if d < best_dist {
            best_dist = d;
            best.clear();
            best.push(r);
        } else if d == best_dist {
            best.push(r);
        }
    }
    *rng.choose(&best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mayflower_net::TreeParams;

    fn topo() -> Topology {
        Topology::three_tier(&TreeParams::paper_testbed())
    }

    #[test]
    fn colocated_replica_wins() {
        let t = topo();
        let mut rng = SimRng::seed_from(1);
        let pick = nearest_replica(&t, HostId(5), &[HostId(5), HostId(6)], &mut rng);
        assert_eq!(pick, HostId(5));
    }

    #[test]
    fn rack_beats_pod_beats_core() {
        let t = topo();
        let mut rng = SimRng::seed_from(2);
        // client 0: replica 2 same rack (d=2), 7 same pod (d=4), 40 cross (d=6).
        let pick = nearest_replica(&t, HostId(0), &[HostId(40), HostId(7), HostId(2)], &mut rng);
        assert_eq!(pick, HostId(2));
        let pick = nearest_replica(&t, HostId(0), &[HostId(40), HostId(7)], &mut rng);
        assert_eq!(pick, HostId(7));
    }

    #[test]
    fn equidistant_replicas_chosen_uniformly() {
        let t = topo();
        let mut rng = SimRng::seed_from(3);
        // Both replicas cross-pod from client 0: a coin flip.
        let replicas = [HostId(20), HostId(40)];
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            match nearest_replica(&t, HostId(0), &replicas, &mut rng) {
                h if h == replicas[0] => counts[0] += 1,
                _ => counts[1] += 1,
            }
        }
        assert!((counts[0] as f64 / 10_000.0 - 0.5).abs() < 0.03);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn empty_replica_set_rejected() {
        let t = topo();
        let mut rng = SimRng::seed_from(4);
        let _ = nearest_replica(&t, HostId(0), &[], &mut rng);
    }
}
