//! `Sinbad-R`: the paper's read-variant of Sinbad (§6.2).
//!
//! Sinbad (Chowdhury et al., SIGCOMM '13) steers *writes* away from
//! congested links using end-host bandwidth monitoring plus topology.
//! The paper adapts it for reads with two modifications:
//!
//! 1. It estimates utilization of the links **facing the core layer**
//!    (edge→aggregation uplinks) on the *replica* side, because read
//!    data flows from the replica up toward the client — opposite to
//!    the write direction Sinbad was designed for.
//! 2. If the client's pod contains a replica, the search space is
//!    **restricted to that pod** (writes consider every host; reads
//!    can only go where replicas already exist, and a same-pod replica
//!    keeps traffic off the heavily oversubscribed core tier).
//!
//! The replica whose bottleneck (host uplink or its rack's best
//! core-facing uplink) has the most estimated headroom wins; ties
//! break uniformly at random.

use mayflower_net::{HostId, LinkId, Topology};
use mayflower_simcore::SimRng;

/// Sinbad's view of current link load: measured bandwidth (bits/sec)
/// flowing on each directed link. In Sinbad this comes from end-host
/// monitoring agents; the experiment harness feeds it from the same
/// periodically-polled counters the SDN controller sees — neither
/// system gets ground truth.
pub trait LinkLoadView {
    /// Measured load on a directed link, bits/sec.
    fn load_bps(&self, link: LinkId) -> f64;
}

/// A fixed load map, for tests and offline what-if evaluation.
#[derive(Debug, Clone, Default)]
pub struct StaticLoads(pub std::collections::HashMap<LinkId, f64>);

impl LinkLoadView for StaticLoads {
    fn load_bps(&self, link: LinkId) -> f64 {
        self.0.get(&link).copied().unwrap_or(0.0)
    }
}

/// The Sinbad-R replica selector.
#[derive(Debug, Clone, Copy, Default)]
pub struct SinbadR;

impl SinbadR {
    /// Creates a selector.
    #[must_use]
    pub fn new() -> SinbadR {
        SinbadR
    }

    /// Selects a replica for `client` to read from, given measured
    /// link loads.
    ///
    /// Returns the co-located replica immediately if one exists (no
    /// network transfer at all). Otherwise applies the pod restriction
    /// and picks the replica with the largest estimated available
    /// bandwidth; ties break uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty.
    pub fn select<L: LinkLoadView>(
        &self,
        topo: &Topology,
        client: HostId,
        replicas: &[HostId],
        loads: &L,
        rng: &mut SimRng,
    ) -> HostId {
        assert!(!replicas.is_empty(), "need at least one replica");
        if let Some(local) = replicas.iter().find(|r| **r == client) {
            return *local;
        }

        // Pod restriction: if the client's pod holds a replica, search
        // only inside that pod.
        let client_pod = topo.pod_of(client);
        let in_pod: Vec<HostId> = replicas
            .iter()
            .copied()
            .filter(|r| topo.pod_of(*r) == client_pod)
            .collect();
        let candidates: &[HostId] = if in_pod.is_empty() { replicas } else { &in_pod };

        let mut best_avail = f64::NEG_INFINITY;
        let mut best: Vec<HostId> = Vec::new();
        for &r in candidates {
            let avail = self.estimated_available(topo, client, r, loads);
            if avail > best_avail + 1e-9 {
                best_avail = avail;
                best.clear();
                best.push(r);
            } else if (avail - best_avail).abs() <= 1e-9 {
                best.push(r);
            }
        }
        *rng.choose(&best)
    }

    /// Sinbad-R's bandwidth estimate for reading from `replica`: the
    /// headroom of the replica's host uplink, further constrained — for
    /// cross-rack clients — by the best of its rack's core-facing
    /// uplinks. Uses only end-host-observable quantities (link
    /// capacities and measured loads), **not** per-flow state: exactly
    /// the coarseness the paper criticizes ("by not accounting for the
    /// bandwidth of individual flows and the total number of flows in
    /// each link, Sinbad cannot accurately estimate path bandwidths").
    fn estimated_available<L: LinkLoadView>(
        &self,
        topo: &Topology,
        client: HostId,
        replica: HostId,
        loads: &L,
    ) -> f64 {
        let uplink = topo.host_uplink(replica);
        let headroom = |l: LinkId| (topo.link(l).capacity() - loads.load_bps(l)).max(0.0);
        let mut avail = headroom(uplink);
        if topo.rack_of(client) != topo.rack_of(replica) {
            let best_core_facing = topo
                .edge_uplinks(topo.rack_of(replica))
                .into_iter()
                .map(headroom)
                .fold(0.0f64, f64::max);
            avail = avail.min(best_core_facing);
        }
        avail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mayflower_net::{TreeParams, GBPS};

    fn topo() -> Topology {
        Topology::three_tier(&TreeParams::paper_testbed())
    }

    #[test]
    fn colocated_replica_short_circuits() {
        let t = topo();
        let mut rng = SimRng::seed_from(1);
        let pick = SinbadR::new().select(
            &t,
            HostId(3),
            &[HostId(20), HostId(3)],
            &StaticLoads::default(),
            &mut rng,
        );
        assert_eq!(pick, HostId(3));
    }

    #[test]
    fn pod_restriction_applies() {
        let t = topo();
        let mut rng = SimRng::seed_from(2);
        // Client in pod 0; replicas in pod 0 (host 5) and pod 1 (host 20).
        // Even with the pod-0 replica loaded, the search space is pod 0.
        let mut loads = StaticLoads::default();
        loads.0.insert(t.host_uplink(HostId(5)), 0.9 * GBPS);
        let pick = SinbadR::new().select(&t, HostId(0), &[HostId(5), HostId(20)], &loads, &mut rng);
        assert_eq!(pick, HostId(5), "pod restriction must exclude host 20");
    }

    #[test]
    fn loaded_uplink_avoided_across_pods() {
        let t = topo();
        let mut rng = SimRng::seed_from(3);
        // Client pod 0, both replicas outside: free competition.
        let mut loads = StaticLoads::default();
        loads.0.insert(t.host_uplink(HostId(20)), 0.8 * GBPS);
        for _ in 0..50 {
            let pick =
                SinbadR::new().select(&t, HostId(0), &[HostId(20), HostId(40)], &loads, &mut rng);
            assert_eq!(pick, HostId(40));
        }
    }

    #[test]
    fn core_facing_congestion_matters_for_remote_reads() {
        let t = topo();
        let mut rng = SimRng::seed_from(4);
        // Replica 20's rack uplinks both saturated; replica 40's idle.
        let mut loads = StaticLoads::default();
        for l in t.edge_uplinks(t.rack_of(HostId(20))) {
            loads.0.insert(l, GBPS);
        }
        for _ in 0..50 {
            let pick =
                SinbadR::new().select(&t, HostId(0), &[HostId(20), HostId(40)], &loads, &mut rng);
            assert_eq!(pick, HostId(40));
        }
    }

    #[test]
    fn same_rack_replica_ignores_core_links() {
        let t = topo();
        let mut rng = SimRng::seed_from(5);
        // Replica 1 shares client 0's rack; saturate that rack's
        // uplinks — irrelevant for an intra-rack read.
        let mut loads = StaticLoads::default();
        for l in t.edge_uplinks(t.rack_of(HostId(1))) {
            loads.0.insert(l, GBPS);
        }
        // Replica 2 (same rack) vs replica 20 (cross pod, idle): the
        // rack replica still shows full host-uplink headroom.
        let pick = SinbadR::new().select(&t, HostId(0), &[HostId(2), HostId(1)], &loads, &mut rng);
        // Both in-rack with equal headroom: either is acceptable.
        assert!(pick == HostId(1) || pick == HostId(2));
    }

    #[test]
    fn ties_break_uniformly() {
        let t = topo();
        let mut rng = SimRng::seed_from(6);
        let replicas = [HostId(20), HostId(40)];
        let mut first = 0usize;
        for _ in 0..10_000 {
            if SinbadR::new().select(&t, HostId(0), &replicas, &StaticLoads::default(), &mut rng)
                == replicas[0]
            {
                first += 1;
            }
        }
        assert!((first as f64 / 10_000.0 - 0.5).abs() < 0.03);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn empty_replicas_rejected() {
        let t = topo();
        let mut rng = SimRng::seed_from(7);
        let _ = SinbadR::new().select(&t, HostId(0), &[], &StaticLoads::default(), &mut rng);
    }
}
