#![warn(missing_docs)]

//! Baseline replica-selection schemes (§6.2 of the paper).
//!
//! The evaluation compares Mayflower's joint replica–path selection
//! against four combinations of *replica* choice × *path* choice:
//!
//! | scheme              | replica            | path       |
//! |---------------------|--------------------|------------|
//! | `Nearest ECMP`      | closest (static)   | ECMP hash  |
//! | `Nearest Mayflower` | closest (static)   | Flowserver |
//! | `Sinbad-R ECMP`     | least-loaded uplink| ECMP hash  |
//! | `Sinbad-R Mayflower`| least-loaded uplink| Flowserver |
//!
//! This crate implements the two replica-selection rules plus a
//! Hedera-style reactive flow rescheduler ([`hedera`]) representing
//! the independent-flow-scheduler class the paper positions against;
//! ECMP lives in [`mayflower_net::ecmp`] and the Flowserver path
//! scheduler in the `mayflower-flowserver` crate.

pub mod hedera;
pub mod nearest;
pub mod sinbad;

pub use hedera::{Hedera, HederaFlow};
pub use nearest::nearest_replica;
pub use sinbad::{LinkLoadView, SinbadR, StaticLoads};
