//! The deterministic consistent-hash ring that partitions the
//! namespace across metadata shards.
//!
//! Every shard owns many **virtual nodes** — pseudo-random points on a
//! 64-bit ring — and a file name belongs to the shard whose next
//! clockwise point covers the name's hash. Virtual nodes smooth the
//! per-shard share of the keyspace (balance tightens as `1/sqrt(v)`),
//! and consistent hashing gives the rebalancer its minimal-disruption
//! property: adding one shard to an `n`-shard ring re-homes only
//! ~`1/(n+1)` of the keys, because only hash ranges adjacent to the new
//! shard's points change owner. Both properties are pinned by proptests
//! in `tests/ring_props.rs`.
//!
//! Everything here is pure arithmetic over the shard ids and the vnode
//! count: two routers that agree on a [`ShardMap`](crate::ShardMap)
//! agree on every routing decision with no coordination.

use serde::{Deserialize, Serialize};

/// Identifies one metadata shard. Ids are small dense integers chosen
/// by the plane; they never get reused within a plane's lifetime.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ShardId(pub u32);

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard-{}", self.0)
    }
}

/// FNV-1a over the name bytes, finished with a SplitMix64 avalanche:
/// deterministic across processes and platforms (unlike `std`'s keyed
/// `DefaultHasher`) and cheap. The finalizer matters: raw FNV-1a maps
/// names that differ only in a trailing counter (`file-1`, `file-2`,
/// …) to hashes within a few low-order bytes of each other — far
/// smaller than a ring arc, so whole directories of files would pile
/// onto one shard.
#[must_use]
pub fn hash_name(name: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(PRIME);
    }
    splitmix64(h)
}

/// SplitMix64: scrambles a shard/vnode pair into a ring point. Chosen
/// for its full-period avalanche — consecutive vnode indices land far
/// apart on the ring.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The ring point for one virtual node of one shard.
fn vnode_point(shard: ShardId, vnode: u32) -> u64 {
    splitmix64((u64::from(shard.0) << 32) | u64::from(vnode))
}

/// A materialized consistent-hash ring: the sorted virtual-node points
/// of every member shard. Built from a [`ShardMap`](crate::ShardMap)
/// and cached alongside it; lookups are a binary search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    /// Sorted `(point, owner)` pairs. Ties (astronomically unlikely
    /// 64-bit collisions) resolve to the lower shard id so every
    /// builder produces the identical ring.
    points: Vec<(u64, ShardId)>,
    vnodes: u32,
}

impl HashRing {
    /// Builds the ring for `shards` with `vnodes` virtual nodes each.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty or `vnodes` is zero — an unroutable
    /// ring is a construction bug, not a runtime condition.
    #[must_use]
    pub fn new(shards: &[ShardId], vnodes: u32) -> HashRing {
        assert!(!shards.is_empty(), "a ring needs at least one shard");
        assert!(vnodes > 0, "a shard needs at least one virtual node");
        let mut points = Vec::with_capacity(shards.len() * vnodes as usize);
        for shard in shards {
            for v in 0..vnodes {
                points.push((vnode_point(*shard, v), *shard));
            }
        }
        points.sort_unstable();
        HashRing { points, vnodes }
    }

    /// The shard owning `name`: the first point clockwise from the
    /// name's hash (wrapping past the top of the ring).
    #[must_use]
    pub fn owner(&self, name: &str) -> ShardId {
        self.owner_of_hash(hash_name(name))
    }

    /// The shard owning a raw hash value.
    #[must_use]
    pub fn owner_of_hash(&self, h: u64) -> ShardId {
        let idx = self.points.partition_point(|(p, _)| *p < h);
        if idx == self.points.len() {
            self.points[0].1
        } else {
            self.points[idx].1
        }
    }

    /// Member shards in id order.
    #[must_use]
    pub fn shards(&self) -> Vec<ShardId> {
        let mut ids: Vec<ShardId> = self.points.iter().map(|(_, s)| *s).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Virtual nodes per shard.
    #[must_use]
    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// Total ring points (shards × vnodes).
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the ring has no points (never true post-construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable_across_calls_and_builds() {
        // Pinned value: changing the hash silently re-homes every key
        // in every deployed shard map, so the constant is a contract.
        assert_eq!(hash_name(""), 14_087_677_454_934_409_008);
        assert_eq!(hash_name("a"), hash_name("a"));
        assert_ne!(hash_name("a"), hash_name("b"));
    }

    #[test]
    fn owner_is_deterministic_and_total() {
        let shards: Vec<ShardId> = (0..4).map(ShardId).collect();
        let ring = HashRing::new(&shards, 64);
        let other = HashRing::new(&shards, 64);
        for i in 0..1000 {
            let name = format!("dir/file-{i}");
            let owner = ring.owner(&name);
            assert!(shards.contains(&owner));
            assert_eq!(owner, other.owner(&name), "independent builds agree");
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let ring = HashRing::new(&[ShardId(7)], 8);
        for i in 0..100 {
            assert_eq!(ring.owner(&format!("f{i}")), ShardId(7));
        }
    }

    #[test]
    fn wraparound_hash_routes_to_first_point() {
        let ring = HashRing::new(&[ShardId(0), ShardId(1)], 4);
        // u64::MAX is past every point with overwhelming probability:
        // it must wrap to the ring's first point.
        let top = ring.owner_of_hash(u64::MAX);
        let first = ring.owner_of_hash(0);
        assert_eq!(top, first);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn empty_ring_is_a_bug() {
        let _ = HashRing::new(&[], 8);
    }
}
