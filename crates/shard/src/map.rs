//! The versioned **ShardMap**: the single piece of routing state the
//! whole metadata plane agrees on.
//!
//! A map is `(epoch, vnodes, member shards)`. Routers cache a map (plus
//! its materialized [`HashRing`]) under a lease and stamp every request
//! with the cached epoch; the plane rejects requests carrying a stale
//! epoch, which forces the router to refresh and retry. That handshake
//! is what keeps lookups correct across rebalancing without putting a
//! coordinator on the hot path: the *data* (which shard owns which
//! range) travels lazily, and the *fencing* (you may not act on an old
//! map) is enforced where the authoritative state lives.

use serde::{Deserialize, Serialize};

use crate::ring::{HashRing, ShardId};

/// A versioned description of the shard ring. Serializable so `mayfs
/// shards` can persist and render it; cheap to clone and compare.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMap {
    /// Monotonic version. Bumped by exactly one on every installed ring
    /// change; a response carrying a different epoch than the caller
    /// sent proves the caller's cached routing state is stale.
    pub epoch: u64,
    /// Virtual nodes per shard.
    pub vnodes: u32,
    /// Member shards in id order.
    pub shards: Vec<ShardId>,
}

impl ShardMap {
    /// The initial map: shards `0..count` at epoch 1.
    ///
    /// # Panics
    ///
    /// Panics if `count` or `vnodes` is zero.
    #[must_use]
    pub fn initial(count: u32, vnodes: u32) -> ShardMap {
        assert!(count > 0, "a plane needs at least one shard");
        assert!(vnodes > 0, "a shard needs at least one virtual node");
        ShardMap {
            epoch: 1,
            vnodes,
            shards: (0..count).map(ShardId).collect(),
        }
    }

    /// Materializes the consistent-hash ring this map describes.
    #[must_use]
    pub fn ring(&self) -> HashRing {
        HashRing::new(&self.shards, self.vnodes)
    }

    /// The next unused shard id (ids are never reused).
    #[must_use]
    pub fn next_shard_id(&self) -> ShardId {
        ShardId(self.shards.iter().map(|s| s.0 + 1).max().unwrap_or(0))
    }

    /// The successor map with one more shard and a bumped epoch — the
    /// rebalancer's minimal-disruption ring change.
    #[must_use]
    pub fn with_shard_added(&self, id: ShardId) -> ShardMap {
        debug_assert!(!self.shards.contains(&id), "shard ids are never reused");
        let mut shards = self.shards.clone();
        shards.push(id);
        shards.sort_unstable();
        ShardMap {
            epoch: self.epoch + 1,
            vnodes: self.vnodes,
            shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_map_numbers_shards_densely() {
        let map = ShardMap::initial(4, 64);
        assert_eq!(map.epoch, 1);
        assert_eq!(map.shards, (0..4).map(ShardId).collect::<Vec<_>>());
        assert_eq!(map.next_shard_id(), ShardId(4));
    }

    #[test]
    fn adding_a_shard_bumps_the_epoch() {
        let map = ShardMap::initial(2, 16);
        let grown = map.with_shard_added(map.next_shard_id());
        assert_eq!(grown.epoch, 2);
        assert_eq!(grown.shards.len(), 3);
        assert_eq!(grown.ring().shards().len(), 3);
    }

    #[test]
    fn map_serializes_round_trip() {
        let map = ShardMap::initial(3, 32);
        let json = serde_json::to_string(&map).unwrap();
        let back: ShardMap = serde_json::from_str(&json).unwrap();
        assert_eq!(back, map);
    }
}
