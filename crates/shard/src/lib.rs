#![warn(missing_docs)]

//! The sharded metadata plane (DESIGN.md §15): partitioned
//! nameservers behind a deterministic consistent-hash ring,
//! lease/epoch-based client routing, and flowserver-scheduled shard
//! migration.
//!
//! Mayflower's nameserver is centralized (§3.1 of the paper); the
//! Paxos-replicated nameserver fixed fault tolerance but not
//! throughput. This crate partitions the namespace across many
//! independent nameserver shards:
//!
//! * [`HashRing`] / [`ShardMap`] — the deterministic routing state:
//!   virtual-node consistent hashing over file names, versioned by an
//!   epoch.
//! * [`ShardedNameserver`] — the plane: one [`Nameserver`]
//!   (or Paxos-backed `ReplicatedNameserver`) per shard, with every
//!   client operation fenced by `(epoch, ownership)` checks.
//! * [`ShardRouter`] — the client side: caches the map under a lease,
//!   implements [`MetadataService`] so a plain
//!   `Client` works unchanged, and rides out fence rejections with
//!   refresh-and-retry.
//! * [`Rebalancer`] / [`Handoff`] — online migration: hot-shard
//!   detection from telemetry, minimal-disruption ring growth, batched
//!   key streaming scheduled through the flowserver at `Background`
//!   priority, an atomic epoch flip, and GC.
//! * [`ShardedCluster`] — a full filesystem deployment whose metadata
//!   plane is sharded: dataservers and the append path come from
//!   [`Cluster`], clients route metadata through per-client routers.
//!
//! [`Nameserver`]: mayflower_fs::Nameserver
//! [`MetadataService`]: mayflower_fs::MetadataService
//! [`Cluster`]: mayflower_fs::Cluster

pub mod map;
pub mod plane;
pub mod rebalance;
pub mod ring;
pub mod router;

use std::path::Path;
use std::sync::Arc;

use mayflower_fs::{Client, Cluster, ClusterConfig, FsError};
use mayflower_net::{HostId, Topology};

pub use map::ShardMap;
pub use plane::{ShardError, ShardPlaneConfig, ShardedNameserver};
pub use rebalance::{
    migrate, FlowserverScheduler, Handoff, MigrationReport, MigrationScheduler, RebalanceConfig,
    Rebalancer,
};
pub use ring::{hash_name, HashRing, ShardId};
pub use router::ShardRouter;

/// A filesystem cluster whose metadata plane is sharded: the data path
/// (dataservers, append relay, repair) is a standard [`Cluster`], and
/// every client gets its own [`ShardRouter`] over the shared plane.
pub struct ShardedCluster {
    cluster: Cluster,
    plane: Arc<ShardedNameserver>,
}

impl ShardedCluster {
    /// Creates a sharded deployment rooted at `dir`: the data-path
    /// cluster under `dir`, the metadata plane under `dir/shards`.
    ///
    /// # Errors
    ///
    /// Propagates directory and database creation failures.
    pub fn create(
        dir: &Path,
        topo: Arc<Topology>,
        cluster_config: ClusterConfig,
        plane_config: ShardPlaneConfig,
    ) -> Result<ShardedCluster, FsError> {
        let cluster = Cluster::create(dir, topo.clone(), cluster_config)?;
        let plane = Arc::new(ShardedNameserver::open(
            &dir.join("shards"),
            topo,
            plane_config,
            cluster.registry(),
        )?);
        Ok(ShardedCluster { cluster, plane })
    }

    /// The underlying data-path cluster.
    #[must_use]
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The shared metadata plane.
    #[must_use]
    pub fn plane(&self) -> &Arc<ShardedNameserver> {
        &self.plane
    }

    /// A client on `host` whose metadata operations route through a
    /// fresh [`ShardRouter`] (its own lease cache, like a real
    /// client-side library instance).
    #[must_use]
    pub fn client(&self, host: HostId) -> Client {
        let router = Arc::new(ShardRouter::new(
            self.plane.clone(),
            &self.cluster.registry().scope("shard_router"),
        ));
        self.cluster.client_with_meta(host, router)
    }

    /// A client plus a handle to its router, for tests that tune the
    /// lease or watch the cached epoch.
    #[must_use]
    pub fn client_with_router(&self, host: HostId) -> (Client, Arc<ShardRouter>) {
        let router = Arc::new(ShardRouter::new(
            self.plane.clone(),
            &self.cluster.registry().scope("shard_router"),
        ));
        (self.cluster.client_with_meta(host, router.clone()), router)
    }
}

impl std::fmt::Debug for ShardedCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCluster")
            .field("plane", &self.plane)
            .finish()
    }
}
