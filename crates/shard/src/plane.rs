//! The sharded metadata plane: many independent nameservers, one
//! epoch-fenced routing contract.
//!
//! [`ShardedNameserver`] owns a set of shards (each a plain
//! [`Nameserver`] or a Paxos-backed [`ReplicatedNameserver`]), the
//! authoritative [`ShardMap`], and its materialized ring. Every
//! client-path operation arrives stamped with the shard the caller
//! believes owns the key **and** the map epoch that belief came from;
//! the plane rejects the call with [`ShardError::StaleMap`] or
//! [`ShardError::NotOwner`] when either is out of date. Routers treat
//! both rejections identically — refresh the map, retry — which is the
//! whole correctness story for lookups racing a shard handoff: an old
//! owner can never serve a moved key, because ownership is re-checked
//! under the same lock that migration's atomic flip takes to install
//! the new ring.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mayflower_fs::nameserver::NameserverConfig;
use mayflower_fs::replicated::ReplicatedNameserver;
use mayflower_fs::{FileMeta, FsError, Nameserver, Redundancy};
use mayflower_net::{HostId, Topology};
use mayflower_telemetry::{Counter, Scope};
use parking_lot::Mutex;
use std::sync::RwLock;

use crate::map::ShardMap;
use crate::ring::{HashRing, ShardId};

/// Configuration for a sharded metadata plane.
#[derive(Debug, Clone)]
pub struct ShardPlaneConfig {
    /// Initial shard count.
    pub shards: u32,
    /// Virtual nodes per shard (64+ for the balance bound the ring
    /// proptests pin).
    pub vnodes: u32,
    /// Per-shard nameserver settings (replication, chunk size,
    /// placement) — every shard places replicas over the same topology.
    pub nameserver: NameserverConfig,
    /// `Some(n)` backs every shard with an `n`-way Paxos-replicated
    /// nameserver; `None` uses a plain single-node nameserver per
    /// shard.
    pub paxos_replicas: Option<usize>,
    /// Seed for per-shard placement randomness (and Paxos schedules).
    pub seed: u64,
}

impl Default for ShardPlaneConfig {
    fn default() -> ShardPlaneConfig {
        ShardPlaneConfig {
            shards: 4,
            vnodes: 64,
            nameserver: NameserverConfig::default(),
            paxos_replicas: None,
            seed: 1,
        }
    }
}

/// Why the plane refused (or failed) an operation.
#[derive(Debug)]
pub enum ShardError {
    /// The caller's shard-map epoch is stale; refresh and retry.
    StaleMap {
        /// The epoch the plane is currently at.
        current_epoch: u64,
    },
    /// The addressed shard no longer owns the key under the current
    /// ring (a handoff moved it); refresh and retry.
    NotOwner {
        /// The shard that owns the key now.
        owner: ShardId,
    },
    /// The owning shard executed the operation and it failed.
    Fs(FsError),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::StaleMap { current_epoch } => {
                write!(f, "stale shard map (plane is at epoch {current_epoch})")
            }
            ShardError::NotOwner { owner } => write!(f, "key now owned by {owner}"),
            ShardError::Fs(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// One shard's storage: a plain nameserver or a Paxos group.
enum ShardBackend {
    Plain(Arc<Nameserver>),
    /// Proposals always go through node 0 here; the group still
    /// tolerates minority crashes of its *other* members, and the
    /// replicated-nameserver tests cover failover separately.
    Replicated(Box<Mutex<ReplicatedNameserver>>),
}

/// A shard: its backend, the host it is modeled to run on (the
/// endpoint migration flows are scheduled against), and its op
/// counter (the rebalancer's heat signal).
pub(crate) struct Shard {
    backend: ShardBackend,
    host: HostId,
    ops: Arc<Counter>,
}

impl Shard {
    pub(crate) fn create_with(&self, name: &str, r: Redundancy) -> Result<FileMeta, FsError> {
        match &self.backend {
            ShardBackend::Plain(ns) => ns.create_with(name, r),
            ShardBackend::Replicated(rns) => rns.lock().create_with(0, name, r),
        }
    }

    pub(crate) fn create_exact(&self, meta: &FileMeta) -> Result<(), FsError> {
        match &self.backend {
            ShardBackend::Plain(ns) => ns.create_exact(meta),
            ShardBackend::Replicated(rns) => rns.lock().create_exact(0, meta),
        }
    }

    pub(crate) fn lookup(&self, name: &str) -> Result<FileMeta, FsError> {
        match &self.backend {
            ShardBackend::Plain(ns) => ns.lookup(name),
            ShardBackend::Replicated(rns) => rns.lock().lookup_at(0, name),
        }
    }

    pub(crate) fn record_size(&self, name: &str, size: u64) -> Result<(), FsError> {
        match &self.backend {
            ShardBackend::Plain(ns) => ns.record_size(name, size),
            ShardBackend::Replicated(rns) => rns.lock().record_size(0, name, size),
        }
    }

    pub(crate) fn record_seal(&self, name: &str, sealed: u64) -> Result<(), FsError> {
        match &self.backend {
            ShardBackend::Plain(ns) => ns.record_seal(name, sealed),
            ShardBackend::Replicated(rns) => rns.lock().record_seal(0, name, sealed),
        }
    }

    pub(crate) fn set_fragment(
        &self,
        name: &str,
        index: usize,
        host: HostId,
    ) -> Result<(), FsError> {
        match &self.backend {
            ShardBackend::Plain(ns) => ns.set_fragment(name, index, host),
            ShardBackend::Replicated(rns) => rns.lock().set_fragment(0, name, index, host),
        }
    }

    pub(crate) fn delete(&self, name: &str) -> Result<FileMeta, FsError> {
        match &self.backend {
            ShardBackend::Plain(ns) => ns.delete(name),
            ShardBackend::Replicated(rns) => rns.lock().delete(0, name),
        }
    }

    pub(crate) fn list(&self) -> Vec<FileMeta> {
        match &self.backend {
            ShardBackend::Plain(ns) => ns.list(),
            ShardBackend::Replicated(rns) => rns.lock().list_at(0),
        }
    }

    pub(crate) fn file_count(&self) -> usize {
        match &self.backend {
            ShardBackend::Plain(ns) => ns.file_count(),
            ShardBackend::Replicated(rns) => rns.lock().file_count_at(0),
        }
    }

    /// The host this shard runs on.
    pub(crate) fn host(&self) -> HostId {
        self.host
    }

    /// Operations served so far (the rebalancer's heat signal).
    pub(crate) fn ops_served(&self) -> u64 {
        self.ops.get()
    }
}

/// Plane-wide telemetry, under the registry scope `shard`.
pub(crate) struct PlaneMetrics {
    scope: Scope,
    stale_epoch: Arc<Counter>,
    not_owner: Arc<Counter>,
    pub(crate) migrations: Arc<Counter>,
    pub(crate) migration_keys: Arc<Counter>,
    pub(crate) migration_bytes: Arc<Counter>,
    pub(crate) migration_batches: Arc<Counter>,
}

impl PlaneMetrics {
    fn new(scope: Scope) -> PlaneMetrics {
        PlaneMetrics {
            stale_epoch: scope.counter("stale_epoch_total"),
            not_owner: scope.counter("not_owner_total"),
            migrations: scope.counter("migrations_total"),
            migration_keys: scope.counter("migration_keys_total"),
            migration_bytes: scope.counter("migration_bytes_total"),
            migration_batches: scope.counter("migration_batches_total"),
            scope,
        }
    }

    fn shard_ops(&self, shard: ShardId) -> Arc<Counter> {
        self.scope
            .counter_with("ops_total", &[("shard", &shard.0.to_string())])
    }
}

pub(crate) struct PlaneState {
    map: ShardMap,
    ring: HashRing,
    /// Every shard with a live backend. A superset of `map.shards`
    /// during migration: the destination's backend exists (and is
    /// receiving copied keys) before the flip makes it ring-visible.
    shards: BTreeMap<ShardId, Shard>,
}

/// The sharded metadata plane (see module docs).
pub struct ShardedNameserver {
    topo: Arc<Topology>,
    dir: PathBuf,
    config: ShardPlaneConfig,
    state: RwLock<PlaneState>,
    metrics: PlaneMetrics,
    /// Testing-only fault injection for the model checker's
    /// serve-from-old-owner-after-handoff mutant: when set, the plane
    /// skips the epoch and ownership checks and blindly serves from
    /// whichever shard the caller addressed.
    serve_stale_after_handoff: AtomicBool,
}

impl ShardedNameserver {
    /// Opens (or creates) a plane rooted at `dir`: `dir/shardmap.json`
    /// holds the map, `dir/shard-<id>` each shard's database. An
    /// existing map on disk wins over `config.shards`/`config.vnodes`
    /// so a re-opened plane keeps its post-migration layout.
    ///
    /// # Errors
    ///
    /// Returns an error if directories cannot be created or an existing
    /// map fails to parse.
    pub fn open(
        dir: &Path,
        topo: Arc<Topology>,
        config: ShardPlaneConfig,
        registry: &mayflower_telemetry::Registry,
    ) -> Result<ShardedNameserver, FsError> {
        std::fs::create_dir_all(dir).map_err(FsError::Io)?;
        let map_path = dir.join("shardmap.json");
        let map = if map_path.exists() {
            let body = std::fs::read_to_string(&map_path).map_err(FsError::Io)?;
            serde_json::from_str::<ShardMap>(&body)
                .map_err(|e| FsError::CorruptMetadata(format!("shardmap.json: {e}")))?
        } else {
            ShardMap::initial(config.shards, config.vnodes)
        };
        let metrics = PlaneMetrics::new(registry.scope("shard"));
        let ring = map.ring();
        let plane = ShardedNameserver {
            topo,
            dir: dir.to_path_buf(),
            state: RwLock::new(PlaneState {
                ring,
                shards: BTreeMap::new(),
                map,
            }),
            metrics,
            config,
            serve_stale_after_handoff: AtomicBool::new(false),
        };
        {
            let ids = plane.state.read().unwrap().map.shards.clone();
            let mut st = plane.state.write().unwrap();
            for id in ids {
                let shard = plane.build_shard(id)?;
                st.shards.insert(id, shard);
            }
        }
        plane.persist_map()?;
        Ok(plane)
    }

    /// Builds one shard's backend at `dir/shard-<id>`.
    fn build_shard(&self, id: ShardId) -> Result<Shard, FsError> {
        let shard_dir = self.dir.join(format!("shard-{}", id.0));
        // Every shard must draw a distinct randomness stream: shards
        // share the cluster's dataservers, so two nameservers seeded
        // identically would mint colliding file ids.
        let mut ns_config = self.config.nameserver.clone();
        ns_config.seed ^= 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(id.0) + 1);
        let backend = match self.config.paxos_replicas {
            None => ShardBackend::Plain(Arc::new(Nameserver::open(
                self.topo.clone(),
                &shard_dir,
                ns_config,
            )?)),
            Some(n) => {
                std::fs::create_dir_all(&shard_dir).map_err(FsError::Io)?;
                ShardBackend::Replicated(Box::new(Mutex::new(ReplicatedNameserver::open(
                    self.topo.clone(),
                    &shard_dir,
                    n,
                    ns_config,
                    self.config.seed ^ u64::from(id.0),
                )?)))
            }
        };
        let hosts = self.topo.hosts();
        // Stride adjacent shard ids apart so co-resident shards (and
        // the migration traffic between them) do not share a rack
        // up-link; odd strides stay coprime with the power-of-two
        // host counts of the tree topologies.
        let stride = (hosts.len() / 4).max(1) | 1;
        Ok(Shard {
            backend,
            host: hosts[(id.0 as usize).wrapping_mul(stride) % hosts.len()],
            ops: self.metrics.shard_ops(id),
        })
    }

    /// Writes the current map to `shardmap.json` (atomic rename).
    fn persist_map(&self) -> Result<(), FsError> {
        let body = {
            let st = self.state.read().unwrap();
            serde_json::to_string_pretty(&st.map)
                .map_err(|e| FsError::CorruptMetadata(e.to_string()))?
        };
        let tmp = self.dir.join("shardmap.json.tmp");
        std::fs::write(&tmp, body).map_err(FsError::Io)?;
        std::fs::rename(&tmp, self.dir.join("shardmap.json")).map_err(FsError::Io)?;
        Ok(())
    }

    /// The current shard map — what routers cache under their lease.
    #[must_use]
    pub fn shard_map(&self) -> ShardMap {
        self.state.read().unwrap().map.clone()
    }

    /// The current map epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.state.read().unwrap().map.epoch
    }

    /// The topology every shard places replicas over.
    #[must_use]
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// The host a shard is modeled to run on (`None` for unknown ids).
    #[must_use]
    pub fn shard_host(&self, id: ShardId) -> Option<HostId> {
        self.state.read().unwrap().shards.get(&id).map(Shard::host)
    }

    /// Per-shard `(id, files, ops served)` in id order — the input to
    /// the rebalancer's heat scan and to `mayfs shards`.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<(ShardId, usize, u64)> {
        let st = self.state.read().unwrap();
        st.map
            .shards
            .iter()
            .map(|id| {
                let s = &st.shards[id];
                (*id, s.file_count(), s.ops_served())
            })
            .collect()
    }

    /// Every file across every ring-member shard, name-sorted.
    #[must_use]
    pub fn list(&self) -> Vec<FileMeta> {
        let st = self.state.read().unwrap();
        let mut all: Vec<FileMeta> = st
            .map
            .shards
            .iter()
            .flat_map(|id| st.shards[id].list())
            .collect();
        all.sort_by(|a, b| a.name.cmp(&b.name));
        all
    }

    /// Total files across ring-member shards.
    #[must_use]
    pub fn file_count(&self) -> usize {
        let st = self.state.read().unwrap();
        st.map
            .shards
            .iter()
            .map(|id| st.shards[id].file_count())
            .sum()
    }

    /// Testing-only fault injection (the model checker's
    /// serve-from-old-owner-after-handoff mutant): disables the epoch
    /// and ownership fences so a stale router keeps hitting the old
    /// owner after a handoff. Never enable outside tests.
    pub fn inject_serve_stale_after_handoff(&self, on: bool) {
        self.serve_stale_after_handoff.store(on, Ordering::Relaxed);
    }

    /// Runs one fenced operation against `shard`: verifies the caller's
    /// epoch and the shard's ownership of `name` under the read lock,
    /// then executes.
    fn fenced<T>(
        &self,
        shard: ShardId,
        epoch: u64,
        name: &str,
        op: impl FnOnce(&Shard) -> Result<T, FsError>,
    ) -> Result<T, ShardError> {
        let st = self.state.read().unwrap();
        if !self.serve_stale_after_handoff.load(Ordering::Relaxed) {
            if epoch != st.map.epoch {
                self.metrics.stale_epoch.inc();
                return Err(ShardError::StaleMap {
                    current_epoch: st.map.epoch,
                });
            }
            let owner = st.ring.owner(name);
            if owner != shard {
                self.metrics.not_owner.inc();
                return Err(ShardError::NotOwner { owner });
            }
        }
        let Some(s) = st.shards.get(&shard) else {
            return Err(ShardError::NotOwner {
                owner: st.ring.owner(name),
            });
        };
        s.ops.inc();
        op(s).map_err(ShardError::Fs)
    }

    /// Fenced create (see [`Nameserver::create_with`]).
    ///
    /// # Errors
    ///
    /// [`ShardError::StaleMap`] / [`ShardError::NotOwner`] demand a
    /// refresh-and-retry; [`ShardError::Fs`] is the operation's error.
    pub fn create_with_at(
        &self,
        shard: ShardId,
        epoch: u64,
        name: &str,
        redundancy: Redundancy,
    ) -> Result<FileMeta, ShardError> {
        self.fenced(shard, epoch, name, |s| s.create_with(name, redundancy))
    }

    /// Fenced create of pre-decided metadata (renames, repair splices).
    ///
    /// # Errors
    ///
    /// See [`ShardedNameserver::create_with_at`].
    pub fn create_exact_at(
        &self,
        shard: ShardId,
        epoch: u64,
        meta: &FileMeta,
    ) -> Result<(), ShardError> {
        self.fenced(shard, epoch, &meta.name, |s| s.create_exact(meta))
    }

    /// Fenced lookup.
    ///
    /// # Errors
    ///
    /// See [`ShardedNameserver::create_with_at`].
    pub fn lookup_at(
        &self,
        shard: ShardId,
        epoch: u64,
        name: &str,
    ) -> Result<FileMeta, ShardError> {
        self.fenced(shard, epoch, name, |s| s.lookup(name))
    }

    /// Fenced size record.
    ///
    /// # Errors
    ///
    /// See [`ShardedNameserver::create_with_at`].
    pub fn record_size_at(
        &self,
        shard: ShardId,
        epoch: u64,
        name: &str,
        size: u64,
    ) -> Result<(), ShardError> {
        self.fenced(shard, epoch, name, |s| s.record_size(name, size))
    }

    /// Fenced seal-watermark advance.
    ///
    /// # Errors
    ///
    /// See [`ShardedNameserver::create_with_at`].
    pub fn record_seal_at(
        &self,
        shard: ShardId,
        epoch: u64,
        name: &str,
        sealed: u64,
    ) -> Result<(), ShardError> {
        self.fenced(shard, epoch, name, |s| s.record_seal(name, sealed))
    }

    /// Fenced fragment re-home.
    ///
    /// # Errors
    ///
    /// See [`ShardedNameserver::create_with_at`].
    pub fn set_fragment_at(
        &self,
        shard: ShardId,
        epoch: u64,
        name: &str,
        index: usize,
        host: HostId,
    ) -> Result<(), ShardError> {
        self.fenced(shard, epoch, name, |s| s.set_fragment(name, index, host))
    }

    /// Fenced delete.
    ///
    /// # Errors
    ///
    /// See [`ShardedNameserver::create_with_at`].
    pub fn delete_at(
        &self,
        shard: ShardId,
        epoch: u64,
        name: &str,
    ) -> Result<FileMeta, ShardError> {
        self.fenced(shard, epoch, name, |s| s.delete(name))
    }

    // ---- migration internals (used by crate::rebalance) ----

    /// Creates the backend for a ring-joining shard so migration can
    /// stream keys into it before the flip makes it ring-visible.
    pub(crate) fn add_shard_backend(&self, id: ShardId) -> Result<(), FsError> {
        let shard = self.build_shard(id)?;
        let mut st = self.state.write().unwrap();
        st.shards.entry(id).or_insert(shard);
        Ok(())
    }

    /// Runs `f` with read access to a shard's storage, bypassing the
    /// fences — migration's bulk copy reads the source while clients
    /// keep mutating it; the flip reconciles the delta.
    pub(crate) fn with_shard<T>(&self, id: ShardId, f: impl FnOnce(&Shard) -> T) -> Option<T> {
        let st = self.state.read().unwrap();
        st.shards.get(&id).map(f)
    }

    /// Atomically installs a new map (and its ring) while reconciling
    /// the destination shards under the write lock: `reconcile` runs
    /// with every client op excluded, sees the authoritative source
    /// state, and returns the per-key moves it applied. The epoch bump
    /// and the ownership change become visible to clients in the same
    /// instant.
    pub(crate) fn install_map<T>(
        &self,
        new_map: &ShardMap,
        reconcile: impl FnOnce(&PlaneState) -> Result<T, FsError>,
    ) -> Result<T, FsError> {
        let mut st = self.state.write().unwrap();
        debug_assert!(new_map.epoch > st.map.epoch, "epochs advance monotonically");
        let out = reconcile(&st)?;
        st.map = new_map.clone();
        st.ring = new_map.ring();
        drop(st);
        self.persist_map()?;
        Ok(out)
    }

    /// Access to the plane's migration counters.
    pub(crate) fn metrics(&self) -> &PlaneMetrics {
        &self.metrics
    }
}

impl PlaneState {
    /// A shard's storage by id (ring member or migration destination).
    pub(crate) fn shard(&self, id: ShardId) -> Option<&Shard> {
        self.shards.get(&id)
    }
}

impl std::fmt::Debug for ShardedNameserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.read().unwrap();
        f.debug_struct("ShardedNameserver")
            .field("epoch", &st.map.epoch)
            .field("shards", &st.map.shards.len())
            .field("vnodes", &st.map.vnodes)
            .finish()
    }
}
