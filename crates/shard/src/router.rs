//! The shard router: what a [`Client`](mayflower_fs::Client) actually
//! talks to on a sharded plane.
//!
//! A router caches the [`ShardMap`] (and its materialized ring) under a
//! **lease**: within the lease it routes every operation locally — no
//! coordinator, no extra round trip — and stamps the request with the
//! cached epoch. The plane's fences catch both ways the cache can go
//! wrong (old epoch, moved key); either rejection makes the router
//! refresh the map and retry, so correctness never depends on the
//! lease at all. The lease only bounds how long a router keeps
//! *trying* stale routes, i.e. it is a performance knob, exactly like
//! the client's metadata-cache TTL one layer up.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mayflower_fs::{FileMeta, FsError, MetadataService, Redundancy};
use mayflower_telemetry::trace::{self, TraceHandle};
use mayflower_telemetry::{Counter, Scope};
use parking_lot::Mutex;

use crate::map::ShardMap;
use crate::plane::{ShardError, ShardedNameserver};
use crate::ring::{HashRing, ShardId};

/// How many fence rejections one operation rides out before giving up.
/// Each rejection refreshes the map, so more than a couple only happens
/// under pathological map churn.
const MAX_ROUTE_RETRIES: usize = 4;

struct CachedMap {
    map: ShardMap,
    ring: HashRing,
    fetched: Instant,
}

/// Router telemetry, shared across all routers of a registry scope.
struct RouterMetrics {
    refreshes: Arc<Counter>,
    stale_retries: Arc<Counter>,
    routed_ops: Arc<Counter>,
}

/// A lease-caching shard router. Implements [`MetadataService`], so a
/// standard `Client` works unchanged against a sharded plane.
pub struct ShardRouter {
    plane: Arc<ShardedNameserver>,
    cached: Mutex<CachedMap>,
    lease: Mutex<Duration>,
    metrics: RouterMetrics,
    /// Tracing handle for route/refresh spans (DESIGN.md §17); `None`
    /// keeps routing trace-free.
    trace: Mutex<Option<TraceHandle>>,
}

impl ShardRouter {
    /// A router over `plane`, registering its telemetry under
    /// `scope` (conventionally `registry.scope("shard_router")`).
    /// The default lease is 60 seconds.
    #[must_use]
    pub fn new(plane: Arc<ShardedNameserver>, scope: &Scope) -> ShardRouter {
        let map = plane.shard_map();
        let ring = map.ring();
        ShardRouter {
            plane,
            cached: Mutex::new(CachedMap {
                map,
                ring,
                fetched: Instant::now(),
            }),
            lease: Mutex::new(Duration::from_secs(60)),
            metrics: RouterMetrics {
                refreshes: scope.counter("map_refreshes_total"),
                stale_retries: scope.counter("stale_retries_total"),
                routed_ops: scope.counter("routed_ops_total"),
            },
            trace: Mutex::new(None),
        }
    }

    /// Attaches a tracing handle: routed operations running under a
    /// traced op then leave `route` spans (shard, epoch, stale
    /// retries) and map refreshes leave `refresh` spans.
    pub fn attach_trace(&self, handle: TraceHandle) {
        *self.trace.lock() = Some(handle);
    }

    /// A child span of the ambient traced op, if tracing is on.
    fn span(&self, name: &str) -> Option<trace::ActiveSpan> {
        self.trace.lock().as_ref()?.child(name)
    }

    /// Sets the shard-map lease. A zero lease refreshes before every
    /// operation (useful in tests); long leases lean entirely on the
    /// plane's fences.
    pub fn set_lease(&self, lease: Duration) {
        *self.lease.lock() = lease;
    }

    /// The router's cached map epoch (what it stamps requests with).
    #[must_use]
    pub fn cached_epoch(&self) -> u64 {
        self.cached.lock().map.epoch
    }

    /// Re-fetches the map from the plane.
    fn refresh(&self) {
        let mut span = self.span("refresh");
        let map = self.plane.shard_map();
        trace::annotate(&mut span, "epoch", map.epoch.to_string());
        let mut cached = self.cached.lock();
        self.metrics.refreshes.inc();
        if map.epoch != cached.map.epoch {
            cached.ring = map.ring();
            cached.map = map;
        }
        cached.fetched = Instant::now();
    }

    /// The cached route for `name`, refreshing first if the lease
    /// expired.
    fn route(&self, name: &str) -> (ShardId, u64) {
        let lease = *self.lease.lock();
        {
            let cached = self.cached.lock();
            if cached.fetched.elapsed() < lease {
                return (cached.ring.owner(name), cached.map.epoch);
            }
        }
        self.refresh();
        let cached = self.cached.lock();
        (cached.ring.owner(name), cached.map.epoch)
    }

    /// Routes one operation, riding out fence rejections by refreshing
    /// and retrying.
    fn with_route<T>(
        &self,
        name: &str,
        op: impl Fn(ShardId, u64) -> Result<T, ShardError>,
    ) -> Result<T, FsError> {
        self.metrics.routed_ops.inc();
        let mut span = self.span("route");
        trace::annotate(&mut span, "file", name);
        let _g = span.as_ref().map(trace::ActiveSpan::enter);
        for attempt in 0..MAX_ROUTE_RETRIES {
            let (shard, epoch) = self.route(name);
            if attempt == 0 {
                trace::annotate(&mut span, "shard", shard.0.to_string());
                trace::annotate(&mut span, "epoch", epoch.to_string());
            }
            match op(shard, epoch) {
                Ok(v) => return Ok(v),
                Err(ShardError::StaleMap { .. } | ShardError::NotOwner { .. }) => {
                    self.metrics.stale_retries.inc();
                    trace::annotate(
                        &mut span,
                        "stale_retry",
                        format!("attempt={attempt} shard={} epoch={epoch}", shard.0),
                    );
                    self.refresh();
                }
                Err(ShardError::Fs(e)) => {
                    trace::mark_error(&mut span);
                    return Err(e);
                }
            }
        }
        trace::mark_error(&mut span);
        Err(FsError::Unavailable(
            "shard map churned through every routing retry".into(),
        ))
    }
}

impl MetadataService for ShardRouter {
    fn create_with(&self, name: &str, redundancy: Redundancy) -> Result<FileMeta, FsError> {
        self.with_route(name, |shard, epoch| {
            self.plane.create_with_at(shard, epoch, name, redundancy)
        })
    }

    fn lookup(&self, name: &str) -> Result<FileMeta, FsError> {
        self.with_route(name, |shard, epoch| {
            self.plane.lookup_at(shard, epoch, name)
        })
    }

    fn record_size(&self, name: &str, size: u64) -> Result<(), FsError> {
        self.with_route(name, |shard, epoch| {
            self.plane.record_size_at(shard, epoch, name, size)
        })
    }

    fn record_seal(&self, name: &str, sealed_chunks: u64) -> Result<(), FsError> {
        self.with_route(name, |shard, epoch| {
            self.plane.record_seal_at(shard, epoch, name, sealed_chunks)
        })
    }

    fn rename(&self, old: &str, new: &str, overwrite: bool) -> Result<Option<FileMeta>, FsError> {
        // `old` and `new` usually hash to different shards, so a rename
        // decomposes into lookup(old) → displace(new) → create(new) →
        // delete(old). Unlike the single-nameserver rename this is not
        // atomic: a concurrent reader can observe both names (never
        // neither — the new entry lands before the old one is removed).
        let meta = self.lookup(old)?;
        let displaced = match self.lookup(new) {
            Ok(existing) => {
                if !overwrite {
                    return Err(FsError::AlreadyExists(new.to_string()));
                }
                self.delete(new)?;
                Some(existing)
            }
            Err(FsError::NotFound(_)) => None,
            Err(e) => return Err(e),
        };
        let mut moved = meta;
        moved.name = new.to_string();
        self.with_route(new, |shard, epoch| {
            self.plane.create_exact_at(shard, epoch, &moved)
        })?;
        self.delete(old)?;
        Ok(displaced)
    }

    fn delete(&self, name: &str) -> Result<FileMeta, FsError> {
        self.with_route(name, |shard, epoch| {
            self.plane.delete_at(shard, epoch, name)
        })
    }
}

impl std::fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cached = self.cached.lock();
        f.debug_struct("ShardRouter")
            .field("cached_epoch", &cached.map.epoch)
            .field("shards", &cached.map.shards.len())
            .finish()
    }
}
