//! Online shard migration: hot-shard detection, minimal-disruption
//! ring changes, batched key streaming, and the atomic flip.
//!
//! A handoff runs in three phases, mirroring every production resharder
//! (Dynamo, Vitess, CRDB) in miniature:
//!
//! 1. **Bulk copy** ([`Handoff::copy_batch`]): the moved key range is
//!    streamed to the new owner in batches *without* blocking clients —
//!    sources keep serving reads and writes; copies may go stale.
//!    Each batch reports the `(source host, dest host, bytes)`
//!    transfers it performed so the caller can register them with the
//!    flowserver at `Background` priority — the co-design point: bulk
//!    metadata transfer rides the same scheduled paths as repair
//!    traffic and never competes with foreground reads.
//! 2. **Flip** ([`Handoff::flip`]): under the plane's write lock —
//!    client ops excluded — the short delta since the bulk copy is
//!    reconciled (stale copies refreshed, deleted keys dropped), and
//!    the new map installs with its epoch bump. The lock is held for
//!    the *delta*, not the keyspace: that is what the bulk phase buys.
//! 3. **GC** ([`Handoff::gc`]): moved keys are deleted at their old
//!    owners. Old owners are unreachable for those keys already (the
//!    ownership fence re-checks the ring on every op), so this is pure
//!    space reclamation — and the window the model checker's
//!    serve-from-old-owner mutant exploits.

use mayflower_flowserver::{Flowserver, Selection};
use mayflower_fs::{FileMeta, FsError};
use mayflower_net::HostId;
use mayflower_simcore::SimTime;
use serde::{Deserialize, Serialize};

use crate::map::ShardMap;
use crate::plane::{Shard, ShardedNameserver};
use crate::ring::{HashRing, ShardId};

/// Where rebalancing traffic gets its network paths.
///
/// The flowserver-backed implementation is [`FlowserverScheduler`];
/// experiments compare it against an ECMP-hashing stand-in.
pub trait MigrationScheduler {
    /// Called once per `(source host, dest host)` transfer of each
    /// copied batch, before the bytes move.
    fn schedule_batch(&mut self, src: HostId, dst: HostId, bytes: u64);
}

/// Schedules each batch transfer with the flowserver at `Background`
/// priority, reusing the repair-flow machinery (joint path selection
/// under Eq. 2 against the current network state).
pub struct FlowserverScheduler<'a> {
    /// The flowserver making path decisions.
    pub flowserver: &'a mut Flowserver,
    /// The sim-time the transfers start.
    pub now: SimTime,
    /// Every selection made, in call order: `(src, dst, bits,
    /// selection)` — experiments replay these into the fluid network.
    pub selections: Vec<(HostId, HostId, f64, Selection)>,
}

impl<'a> FlowserverScheduler<'a> {
    /// A scheduler issuing selections at `now`.
    #[must_use]
    pub fn new(flowserver: &'a mut Flowserver, now: SimTime) -> FlowserverScheduler<'a> {
        FlowserverScheduler {
            flowserver,
            now,
            selections: Vec::new(),
        }
    }
}

impl MigrationScheduler for FlowserverScheduler<'_> {
    fn schedule_batch(&mut self, src: HostId, dst: HostId, bytes: u64) {
        if bytes == 0 || src == dst {
            return;
        }
        let bits = bytes as f64 * 8.0;
        let sel = self
            .flowserver
            .select_migration_flow(dst, &[src], bits, self.now);
        self.selections.push((src, dst, bits, sel));
    }
}

/// What a completed migration did. Serializable and fully
/// deterministic, so experiment reports embedding it stay
/// byte-identical across runs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationReport {
    /// Epoch before the flip.
    pub from_epoch: u64,
    /// Epoch after the flip.
    pub to_epoch: u64,
    /// Keys streamed during the bulk phase.
    pub keys_copied: u64,
    /// Serialized metadata bytes streamed during the bulk phase.
    pub bytes_copied: u64,
    /// Bulk batches (each one scheduling call per source).
    pub batches: u64,
    /// Keys refreshed or added by the flip's delta reconcile.
    pub keys_reconciled: u64,
    /// Stale source copies reclaimed by GC.
    pub keys_gced: u64,
}

/// One key scheduled to move.
struct MoveEntry {
    name: String,
    from: ShardId,
    to: ShardId,
}

/// The serialized size of a metadata entry — the unit migration
/// traffic is measured in.
fn meta_bytes(meta: &FileMeta) -> u64 {
    serde_json::to_vec(meta)
        .map(|v| v.len() as u64)
        .unwrap_or(0)
}

/// Copies `meta` into `dest`, replacing any older copy of the same
/// name (a previous batch's now-stale version).
fn upsert(dest: &Shard, meta: &FileMeta) -> Result<(), FsError> {
    match dest.lookup(&meta.name) {
        Ok(existing) if existing == *meta => return Ok(()),
        Ok(_) => {
            dest.delete(&meta.name)?;
        }
        Err(FsError::NotFound(_)) => {}
        Err(e) => return Err(e),
    }
    dest.create_exact(meta)
}

/// A stepwise shard handoff (see module docs). Built by
/// [`Handoff::begin`]; drive it with `copy_batch` until exhausted,
/// then `flip`, then `gc` — or let [`migrate`] run all three.
pub struct Handoff<'a> {
    plane: &'a ShardedNameserver,
    old_ring: HashRing,
    new_map: ShardMap,
    new_ring: HashRing,
    pending: Vec<MoveEntry>,
    cursor: usize,
    batch_keys: usize,
    flipped: bool,
    report: MigrationReport,
}

impl<'a> Handoff<'a> {
    /// Prepares a handoff to `new_map`: creates backends for
    /// ring-joining shards and snapshots the keys the ring change
    /// moves.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::InvalidArgument`] unless `new_map` is the
    /// direct successor of the plane's current map (one epoch ahead).
    pub fn begin(
        plane: &'a ShardedNameserver,
        new_map: ShardMap,
        batch_keys: usize,
    ) -> Result<Handoff<'a>, FsError> {
        let old_map = plane.shard_map();
        if new_map.epoch != old_map.epoch + 1 {
            return Err(FsError::InvalidArgument(format!(
                "handoff target epoch {} is not the successor of {}",
                new_map.epoch, old_map.epoch
            )));
        }
        for id in &new_map.shards {
            if !old_map.shards.contains(id) {
                plane.add_shard_backend(*id)?;
            }
        }
        let old_ring = old_map.ring();
        let new_ring = new_map.ring();
        let mut pending = Vec::new();
        for from in &old_map.shards {
            let metas = plane.with_shard(*from, Shard::list).unwrap_or_default();
            for meta in metas {
                let to = new_ring.owner(&meta.name);
                if to != *from {
                    pending.push(MoveEntry {
                        name: meta.name,
                        from: *from,
                        to,
                    });
                }
            }
        }
        let from_epoch = old_map.epoch;
        let to_epoch = new_map.epoch;
        Ok(Handoff {
            plane,
            old_ring,
            new_map,
            new_ring,
            pending,
            cursor: 0,
            batch_keys: batch_keys.max(1),
            flipped: false,
            report: MigrationReport {
                from_epoch,
                to_epoch,
                keys_copied: 0,
                bytes_copied: 0,
                batches: 0,
                keys_reconciled: 0,
                keys_gced: 0,
            },
        })
    }

    /// Keys still waiting for the bulk phase.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.pending.len() - self.cursor
    }

    /// Streams the next batch of moved keys to their new owners while
    /// clients keep running. Returns the `(source host, dest host,
    /// bytes)` transfers performed — aggregated per host pair — or an
    /// empty list when the bulk phase is done.
    ///
    /// # Errors
    ///
    /// Propagates destination-shard write failures.
    pub fn copy_batch(&mut self) -> Result<Vec<(HostId, HostId, u64)>, FsError> {
        if self.cursor >= self.pending.len() {
            return Ok(Vec::new());
        }
        let end = (self.cursor + self.batch_keys).min(self.pending.len());
        let mut transfers: Vec<(HostId, HostId, u64)> = Vec::new();
        for i in self.cursor..end {
            let entry = &self.pending[i];
            // Re-read the live source copy: the snapshot may be stale,
            // and the key may have been deleted since (then there is
            // nothing to copy — the flip reconciles deletions).
            let Some(Ok(meta)) = self.plane.with_shard(entry.from, |s| s.lookup(&entry.name))
            else {
                continue;
            };
            self.plane
                .with_shard(entry.to, |s| upsert(s, &meta))
                .unwrap_or_else(|| {
                    Err(FsError::InvalidArgument(format!(
                        "destination {} has no backend",
                        entry.to
                    )))
                })?;
            let bytes = meta_bytes(&meta);
            self.report.keys_copied += 1;
            self.report.bytes_copied += bytes;
            let src = self.plane.shard_host(entry.from).unwrap_or(HostId(0));
            let dst = self.plane.shard_host(entry.to).unwrap_or(HostId(0));
            match transfers
                .iter_mut()
                .find(|(s, d, _)| *s == src && *d == dst)
            {
                Some((_, _, b)) => *b += bytes,
                None => transfers.push((src, dst, bytes)),
            }
        }
        self.cursor = end;
        self.report.batches += 1;
        let m = self.plane.metrics();
        m.migration_batches.inc();
        Ok(transfers)
    }

    /// Atomically installs the new map: under the plane's write lock,
    /// reconciles the delta since the bulk copy (stale copies
    /// refreshed, source-side deletions propagated) and bumps the
    /// epoch. After `flip` returns, every fenced operation routes by
    /// the new ring.
    ///
    /// # Errors
    ///
    /// Propagates reconcile write failures; the map does not install
    /// if reconciliation fails.
    pub fn flip(&mut self) -> Result<(), FsError> {
        assert!(!self.flipped, "a handoff flips once");
        let new_ring = self.new_ring.clone();
        let old_ring = self.old_ring.clone();
        let old_shards = old_ring.shards();
        let mut reconciled = 0u64;
        self.plane.install_map(&self.new_map, |st| {
            // Pass 1: every key whose owner changes gets its live
            // source version upserted at the destination.
            for from in &old_shards {
                let Some(src) = st.shard(*from) else { continue };
                for meta in src.list() {
                    let to = new_ring.owner(&meta.name);
                    if to == *from {
                        continue;
                    }
                    let dest = st.shard(to).ok_or_else(|| {
                        FsError::InvalidArgument(format!("destination {to} has no backend"))
                    })?;
                    match dest.lookup(&meta.name) {
                        Ok(existing) if existing == meta => {}
                        _ => {
                            upsert(dest, &meta)?;
                            reconciled += 1;
                        }
                    }
                }
            }
            // Pass 2: a key copied in bulk then deleted at its source
            // must not resurrect — drop destination copies whose
            // source no longer has the name.
            for to in new_ring.shards() {
                if old_shards.contains(&to) {
                    continue; // only ring-joining shards receive keys
                }
                let Some(dest) = st.shard(to) else { continue };
                for meta in dest.list() {
                    let from = old_ring.owner(&meta.name);
                    let gone = st.shard(from).is_none_or(|s| s.lookup(&meta.name).is_err());
                    if gone {
                        dest.delete(&meta.name)?;
                        reconciled += 1;
                    }
                }
            }
            Ok(())
        })?;
        self.report.keys_reconciled = reconciled;
        self.flipped = true;
        Ok(())
    }

    /// Reclaims the moved keys' stale copies at their old owners.
    /// Callable only after [`Handoff::flip`]; old owners are already
    /// unreachable for these keys, so this changes no visible state.
    ///
    /// # Errors
    ///
    /// Propagates source-shard delete failures.
    pub fn gc(&mut self) -> Result<u64, FsError> {
        assert!(self.flipped, "gc runs after the flip");
        let mut gced = 0u64;
        for from in self.old_ring.shards() {
            let metas = self.plane.with_shard(from, Shard::list).unwrap_or_default();
            for meta in metas {
                if self.new_ring.owner(&meta.name) != from {
                    match self.plane.with_shard(from, |s| s.delete(&meta.name)) {
                        Some(Ok(_)) => gced += 1,
                        Some(Err(FsError::NotFound(_))) | None => {}
                        Some(Err(e)) => return Err(e),
                    }
                }
            }
        }
        self.report.keys_gced = gced;
        let m = self.plane.metrics();
        m.migrations.inc();
        m.migration_keys.add(self.report.keys_copied);
        m.migration_bytes.add(self.report.bytes_copied);
        Ok(gced)
    }

    /// The report accumulated so far (complete after `gc`).
    #[must_use]
    pub fn report(&self) -> &MigrationReport {
        &self.report
    }
}

/// Runs a complete handoff to `new_map`: bulk batches (each one
/// announced to `scheduler` before its bytes move), the flip, then GC.
///
/// # Errors
///
/// Propagates [`Handoff`] phase failures.
pub fn migrate(
    plane: &ShardedNameserver,
    new_map: ShardMap,
    batch_keys: usize,
    mut scheduler: Option<&mut dyn MigrationScheduler>,
) -> Result<MigrationReport, FsError> {
    let mut handoff = Handoff::begin(plane, new_map, batch_keys)?;
    loop {
        let transfers = handoff.copy_batch()?;
        if transfers.is_empty() && handoff.remaining() == 0 {
            break;
        }
        if let Some(s) = scheduler.as_deref_mut() {
            for (src, dst, bytes) in &transfers {
                s.schedule_batch(*src, *dst, *bytes);
            }
        }
    }
    handoff.flip()?;
    handoff.gc()?;
    Ok(handoff.report().clone())
}

/// Hot-shard detection over the plane's telemetry op counters.
#[derive(Debug, Clone)]
pub struct RebalanceConfig {
    /// A shard is hot when its op count exceeds `hot_factor` × the
    /// mean across shards.
    pub hot_factor: f64,
    /// Keys per bulk-copy batch.
    pub batch_keys: usize,
    /// Minimum total ops before any shard can be called hot (no
    /// rebalancing on noise).
    pub min_total_ops: u64,
}

impl Default for RebalanceConfig {
    fn default() -> RebalanceConfig {
        RebalanceConfig {
            hot_factor: 1.5,
            batch_keys: 64,
            min_total_ops: 1000,
        }
    }
}

/// Plans and executes minimal-disruption ring changes when a shard
/// runs hot.
#[derive(Debug, Clone, Default)]
pub struct Rebalancer {
    config: RebalanceConfig,
}

impl Rebalancer {
    /// A rebalancer with the given thresholds.
    #[must_use]
    pub fn new(config: RebalanceConfig) -> Rebalancer {
        Rebalancer { config }
    }

    /// Scans the per-shard op counters; if some shard is hot, returns
    /// the successor map that adds one shard (the minimal-disruption
    /// change: only ~`1/(n+1)` of keys re-home).
    #[must_use]
    pub fn plan(&self, plane: &ShardedNameserver) -> Option<ShardMap> {
        let stats = plane.shard_stats();
        if stats.is_empty() {
            return None;
        }
        let total: u64 = stats.iter().map(|(_, _, ops)| ops).sum();
        if total < self.config.min_total_ops {
            return None;
        }
        #[allow(clippy::cast_precision_loss)]
        let mean = total as f64 / stats.len() as f64;
        #[allow(clippy::cast_precision_loss)]
        let hot = stats
            .iter()
            .any(|(_, _, ops)| *ops as f64 > self.config.hot_factor * mean);
        if !hot {
            return None;
        }
        let map = plane.shard_map();
        Some(map.with_shard_added(map.next_shard_id()))
    }

    /// [`Rebalancer::plan`] + [`migrate`]: detects, streams, flips.
    /// Returns `None` when no shard is hot.
    ///
    /// # Errors
    ///
    /// Propagates migration failures.
    pub fn rebalance(
        &self,
        plane: &ShardedNameserver,
        scheduler: Option<&mut dyn MigrationScheduler>,
    ) -> Result<Option<MigrationReport>, FsError> {
        match self.plan(plane) {
            None => Ok(None),
            Some(new_map) => migrate(plane, new_map, self.config.batch_keys, scheduler).map(Some),
        }
    }
}
