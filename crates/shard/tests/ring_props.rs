//! Property tests pinning the two guarantees the shard ring is chosen
//! for (ISSUE: sharded metadata plane):
//!
//! 1. **Balance** — with ≥64 virtual nodes per shard, no shard's slice
//!    of the hash space strays far from its fair share.
//! 2. **Minimal disruption** — adding one shard to an `n`-shard ring
//!    re-homes roughly `1/(n+1)` of the keyspace, and every re-homed
//!    key moves *to the new shard*: existing shards never trade keys
//!    with each other.
//!
//! Both are measured over an even grid of 2^16 probe hashes, which
//! estimates each shard's arc share to within the quantization error of
//! the grid rather than relying on sampled key sets.

use mayflower_shard::{HashRing, ShardId};
use proptest::prelude::*;

/// Probes the ring at 2^16 evenly spaced hash values; returns each
/// probe's owner.
fn probe_owners(ring: &HashRing) -> Vec<ShardId> {
    (0u64..1 << 16)
        .map(|i| ring.owner_of_hash(i << 48))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_shard_gets_a_fair_share_at_64_plus_vnodes(
        shards in 2u32..12,
        vnodes in 64u32..192,
    ) {
        let ids: Vec<ShardId> = (0..shards).map(ShardId).collect();
        let ring = HashRing::new(&ids, vnodes);
        let owners = probe_owners(&ring);
        let mean = owners.len() as f64 / f64::from(shards);
        for id in &ids {
            let share = owners.iter().filter(|o| *o == id).count() as f64;
            // Arc-share deviation shrinks as 1/sqrt(vnodes): ~12.5% at
            // 64 vnodes. 2x / 0.35x are >5 sigma on either side.
            prop_assert!(
                share < 2.0 * mean,
                "{id} owns {share} of {} probes (mean {mean:.0}): overloaded",
                owners.len()
            );
            prop_assert!(
                share > 0.35 * mean,
                "{id} owns {share} of {} probes (mean {mean:.0}): starved",
                owners.len()
            );
        }
    }

    #[test]
    fn adding_a_shard_moves_about_one_nth_and_only_to_the_joiner(
        shards in 2u32..12,
        vnodes in 64u32..192,
    ) {
        let old_ids: Vec<ShardId> = (0..shards).map(ShardId).collect();
        let mut new_ids = old_ids.clone();
        let joiner = ShardId(shards);
        new_ids.push(joiner);
        let old = HashRing::new(&old_ids, vnodes);
        let new = HashRing::new(&new_ids, vnodes);

        let old_owners = probe_owners(&old);
        let new_owners = probe_owners(&new);
        let mut moved = 0usize;
        for (before, after) in old_owners.iter().zip(&new_owners) {
            if before != after {
                // The consistent-hashing contract: ownership changes
                // only where the joiner's points landed.
                prop_assert_eq!(
                    *after,
                    joiner,
                    "a key moved between two surviving shards ({} -> {})",
                    before,
                    after
                );
                moved += 1;
            }
        }
        let frac = moved as f64 / old_owners.len() as f64;
        let fair = 1.0 / f64::from(shards + 1);
        prop_assert!(
            frac < 2.2 * fair,
            "join moved {:.3} of the keyspace; fair share is {:.3}",
            frac,
            fair
        );
        prop_assert!(
            frac > 0.3 * fair,
            "join moved only {:.3} of the keyspace; fair share is {:.3}",
            frac,
            fair
        );
    }

    #[test]
    fn routing_is_pure_arithmetic_over_the_member_set(
        shards in 1u32..12,
        vnodes in 1u32..192,
        raw_names in proptest::collection::vec(any::<u64>(), 1..40),
    ) {
        let ids: Vec<ShardId> = (0..shards).map(ShardId).collect();
        let a = HashRing::new(&ids, vnodes);
        let b = HashRing::new(&ids, vnodes);
        let names: Vec<String> = raw_names.iter().map(|r| format!("dir/file-{r:x}")).collect();
        for name in &names {
            let owner = a.owner(name);
            prop_assert!(ids.contains(&owner));
            prop_assert_eq!(owner, b.owner(name));
        }
    }
}
