//! Integration tests for the sharded metadata plane: epoch/ownership
//! fencing, router retry, online migration (bulk copy → flip → gc),
//! flowserver-scheduled transfers, persistence, and the full
//! [`ShardedCluster`] data path.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use mayflower_flowserver::{Flowserver, FlowserverConfig, Selection};
use mayflower_fs::nameserver::NameserverConfig;
use mayflower_fs::{ClusterConfig, FsError, MetadataService};
use mayflower_net::{Topology, TreeParams};
use mayflower_shard::{
    migrate, FlowserverScheduler, Handoff, RebalanceConfig, Rebalancer, ShardError,
    ShardPlaneConfig, ShardRouter, ShardedCluster, ShardedNameserver,
};
use mayflower_simcore::SimTime;
use mayflower_telemetry::Registry;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "mayflower-shard-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        TempDir(dir)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn small_topo() -> Arc<Topology> {
    Arc::new(Topology::three_tier(&TreeParams {
        pods: 2,
        racks_per_pod: 2,
        hosts_per_rack: 2,
        ..TreeParams::paper_testbed()
    }))
}

fn open_plane(dir: &TempDir, shards: u32) -> (Arc<ShardedNameserver>, Registry) {
    let registry = Registry::new();
    let plane = ShardedNameserver::open(
        &dir.0,
        small_topo(),
        ShardPlaneConfig {
            shards,
            vnodes: 32,
            ..ShardPlaneConfig::default()
        },
        &registry,
    )
    .unwrap();
    (Arc::new(plane), registry)
}

#[test]
fn fenced_ops_reject_stale_epoch_and_wrong_shard() {
    let dir = TempDir::new("fence");
    let (plane, _reg) = open_plane(&dir, 4);
    let map = plane.shard_map();
    let ring = map.ring();
    let owner = ring.owner("a/file");
    plane
        .create_with_at(owner, map.epoch, "a/file", Default::default())
        .unwrap();

    match plane.lookup_at(owner, map.epoch + 7, "a/file") {
        Err(ShardError::StaleMap { current_epoch }) => assert_eq!(current_epoch, map.epoch),
        other => panic!("expected StaleMap, got {other:?}"),
    }

    let wrong = map.shards.iter().copied().find(|s| *s != owner).unwrap();
    match plane.lookup_at(wrong, map.epoch, "a/file") {
        Err(ShardError::NotOwner { owner: o }) => assert_eq!(o, owner),
        other => panic!("expected NotOwner, got {other:?}"),
    }

    // Correct route still works, and shard-level errors pass through.
    plane.lookup_at(owner, map.epoch, "a/file").unwrap();
    let missing_owner = ring.owner("no/such");
    match plane.lookup_at(missing_owner, map.epoch, "no/such") {
        Err(ShardError::Fs(FsError::NotFound(_))) => {}
        other => panic!("expected NotFound, got {other:?}"),
    }
}

#[test]
fn router_rides_out_a_migration_under_a_long_lease() {
    let dir = TempDir::new("router");
    let (plane, reg) = open_plane(&dir, 2);
    let router = ShardRouter::new(plane.clone(), &reg.scope("shard_router"));
    router.set_lease(Duration::from_secs(3600));
    for i in 0..50 {
        router
            .create_with(&format!("dir/file-{i}"), Default::default())
            .unwrap();
    }
    let before = router.cached_epoch();

    let map = plane.shard_map();
    let grown = map.with_shard_added(map.next_shard_id());
    migrate(&plane, grown, 16, None).unwrap();
    assert_eq!(plane.epoch(), before + 1);

    // The router's cache is now stale for every key, and its lease
    // won't expire; the fences force exactly one refresh.
    for i in 0..50 {
        let meta = router.lookup(&format!("dir/file-{i}")).unwrap();
        assert_eq!(meta.name, format!("dir/file-{i}"));
    }
    assert_eq!(router.cached_epoch(), before + 1);
}

#[test]
fn migration_moves_keys_schedules_flows_and_gcs_sources() {
    let dir = TempDir::new("migrate");
    let (plane, _reg) = open_plane(&dir, 2);
    let map = plane.shard_map();
    for i in 0..200 {
        let name = format!("data/file-{i}");
        let shard = map.ring().owner(&name);
        plane
            .create_with_at(shard, map.epoch, &name, Default::default())
            .unwrap();
    }
    assert_eq!(plane.file_count(), 200);

    let topo = plane.topology().clone();
    let mut fsrv = Flowserver::new(topo, FlowserverConfig::default());
    let registry = Registry::new();
    fsrv.attach_metrics(&registry);
    let mut sched = FlowserverScheduler::new(&mut fsrv, SimTime::ZERO);

    let grown = map.with_shard_added(map.next_shard_id());
    let new_ring = grown.ring();
    let report = migrate(&plane, grown.clone(), 16, Some(&mut sched)).unwrap();

    assert!(report.keys_copied > 0, "a third shard must take some keys");
    assert!(report.bytes_copied > 0);
    assert!(!sched.selections.is_empty(), "transfers must be scheduled");
    for (src, dst, bits, sel) in &sched.selections {
        assert_ne!(src, dst);
        assert!(*bits > 0.0);
        assert!(
            matches!(sel, Selection::Single(_) | Selection::Local),
            "background migration paths should be available on an idle net"
        );
    }
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("flowserver_migration_selections_total"),
        Some(sched.selections.len() as u64)
    );

    // No file lost, no file duplicated, every copy on its new owner.
    assert_eq!(plane.file_count(), 200);
    assert_eq!(plane.epoch(), grown.epoch);
    for (id, _files, _ops) in plane.shard_stats() {
        assert!(grown.shards.contains(&id));
    }
    for meta in plane.list() {
        let owner = new_ring.owner(&meta.name);
        let m = plane
            .lookup_at(owner, grown.epoch, &meta.name)
            .expect("every file is served by its new owner");
        assert_eq!(m.name, meta.name);
    }
    assert_eq!(report.keys_gced, report.keys_copied);
}

#[test]
fn flip_reconciles_writes_that_raced_the_bulk_copy() {
    let dir = TempDir::new("delta");
    let (plane, _reg) = open_plane(&dir, 2);
    let map = plane.shard_map();
    let ring = map.ring();
    for i in 0..120 {
        let name = format!("delta/file-{i}");
        plane
            .create_with_at(ring.owner(&name), map.epoch, &name, Default::default())
            .unwrap();
    }
    let grown = map.with_shard_added(map.next_shard_id());
    let new_ring = grown.ring();
    // Pick one moving key to delete mid-copy and one to mutate.
    let moving: Vec<String> = (0..120)
        .map(|i| format!("delta/file-{i}"))
        .filter(|n| new_ring.owner(n) != ring.owner(n))
        .collect();
    assert!(moving.len() >= 2, "need racing keys for this test");

    let mut handoff = Handoff::begin(&plane, grown.clone(), 8).unwrap();
    // Copy everything in bulk first, so the racing writes land after
    // their keys were copied — the flip's delta pass must fix both.
    while handoff.remaining() > 0 {
        handoff.copy_batch().unwrap();
    }
    let deleted = &moving[0];
    let resized = &moving[1];
    plane
        .delete_at(ring.owner(deleted), map.epoch, deleted)
        .unwrap();
    plane
        .record_size_at(ring.owner(resized), map.epoch, resized, 4096)
        .unwrap();

    handoff.flip().unwrap();
    handoff.gc().unwrap();

    // The deleted key stays deleted; the resized key's new size
    // survived the handoff.
    match plane.lookup_at(new_ring.owner(deleted), grown.epoch, deleted) {
        Err(ShardError::Fs(FsError::NotFound(_))) => {}
        other => panic!("deleted key resurrected by migration: {other:?}"),
    }
    let meta = plane
        .lookup_at(new_ring.owner(resized), grown.epoch, resized)
        .unwrap();
    assert_eq!(meta.size, 4096);
    assert_eq!(plane.file_count(), 119);
}

#[test]
fn plane_reopens_with_its_persisted_post_migration_map() {
    let dir = TempDir::new("persist");
    let grown_epoch;
    let grown_shards;
    {
        let (plane, _reg) = open_plane(&dir, 2);
        let map = plane.shard_map();
        let ring = map.ring();
        for i in 0..40 {
            let name = format!("p/file-{i}");
            plane
                .create_with_at(ring.owner(&name), map.epoch, &name, Default::default())
                .unwrap();
        }
        let grown = map.with_shard_added(map.next_shard_id());
        migrate(&plane, grown.clone(), 16, None).unwrap();
        grown_epoch = grown.epoch;
        grown_shards = grown.shards.len();
    }
    // Reopen with a config that says 2 shards: the persisted 3-shard
    // map must win.
    let (plane, _reg) = open_plane(&dir, 2);
    assert_eq!(plane.epoch(), grown_epoch);
    assert_eq!(plane.shard_map().shards.len(), grown_shards);
    assert_eq!(plane.file_count(), 40);
}

#[test]
fn rebalancer_grows_the_ring_only_when_a_shard_runs_hot() {
    let dir = TempDir::new("hot");
    let (plane, _reg) = open_plane(&dir, 2);
    let map = plane.shard_map();
    let ring = map.ring();
    let hot_name = "hot/key";
    let hot_shard = ring.owner(hot_name);
    plane
        .create_with_at(hot_shard, map.epoch, hot_name, Default::default())
        .unwrap();

    let rb = Rebalancer::new(RebalanceConfig {
        min_total_ops: 100,
        ..RebalanceConfig::default()
    });
    // Below the activity floor: no plan, however skewed.
    assert!(rb.plan(&plane).is_none());
    for _ in 0..500 {
        plane.lookup_at(hot_shard, map.epoch, hot_name).unwrap();
    }
    let planned = rb.plan(&plane).expect("hot shard must trigger a plan");
    assert_eq!(planned.epoch, map.epoch + 1);
    assert_eq!(planned.shards.len(), map.shards.len() + 1);

    let report = rb.rebalance(&plane, None).unwrap().unwrap();
    assert_eq!(report.to_epoch, map.epoch + 1);
    assert_eq!(plane.epoch(), map.epoch + 1);
}

#[test]
fn paxos_backed_shards_serve_metadata() {
    let dir = TempDir::new("paxos");
    let registry = Registry::new();
    let plane = Arc::new(
        ShardedNameserver::open(
            &dir.0,
            small_topo(),
            ShardPlaneConfig {
                shards: 2,
                vnodes: 16,
                paxos_replicas: Some(3),
                ..ShardPlaneConfig::default()
            },
            &registry,
        )
        .unwrap(),
    );
    let router = ShardRouter::new(plane.clone(), &registry.scope("shard_router"));
    for i in 0..10 {
        router
            .create_with(&format!("paxos/f{i}"), Default::default())
            .unwrap();
    }
    router.record_size("paxos/f0", 123).unwrap();
    assert_eq!(router.lookup("paxos/f0").unwrap().size, 123);
    router.delete("paxos/f9").unwrap();
    assert!(matches!(
        router.lookup("paxos/f9"),
        Err(FsError::NotFound(_))
    ));
    assert_eq!(plane.file_count(), 9);
}

#[test]
fn sharded_cluster_appends_and_reads_across_shards_and_migrations() {
    let dir = TempDir::new("cluster");
    let topo = small_topo();
    let hosts = topo.hosts();
    let sc = ShardedCluster::create(
        &dir.0,
        topo.clone(),
        ClusterConfig {
            nameserver: NameserverConfig {
                chunk_size: 16,
                ..NameserverConfig::default()
            },
            ..ClusterConfig::default()
        },
        ShardPlaneConfig {
            shards: 4,
            vnodes: 32,
            ..ShardPlaneConfig::default()
        },
    )
    .unwrap();

    let mut writer = sc.client(hosts[0]);
    for i in 0..12 {
        let name = format!("app/log-{i}");
        writer.create(&name).unwrap();
        writer.append(&name, b"hello sharded world").unwrap();
    }

    // A second client (own router, own cache) reads everything back.
    let (mut reader, router) = sc.client_with_router(hosts[5]);
    router.set_lease(Duration::from_secs(3600));
    for i in 0..12 {
        assert_eq!(
            reader.read(&format!("app/log-{i}")).unwrap(),
            b"hello sharded world"
        );
    }

    // Grow the plane mid-flight; both clients keep working through
    // their stale caches.
    let map = sc.plane().shard_map();
    migrate(
        sc.plane(),
        map.with_shard_added(map.next_shard_id()),
        8,
        None,
    )
    .unwrap();
    writer.append("app/log-0", b"!").unwrap();
    assert_eq!(reader.read("app/log-0").unwrap(), b"hello sharded world!");
    assert_eq!(sc.plane().file_count(), 12);
}

#[test]
fn rename_across_shards_moves_the_entry() {
    let dir = TempDir::new("rename");
    let (plane, reg) = open_plane(&dir, 4);
    let router = ShardRouter::new(plane.clone(), &reg.scope("shard_router"));
    router.create_with("old/name", Default::default()).unwrap();
    router.record_size("old/name", 77).unwrap();

    assert!(router
        .rename("old/name", "new/name", false)
        .unwrap()
        .is_none());
    assert!(matches!(
        router.lookup("old/name"),
        Err(FsError::NotFound(_))
    ));
    assert_eq!(router.lookup("new/name").unwrap().size, 77);

    // Overwrite semantics: refused without the flag, displaced with it.
    router.create_with("third", Default::default()).unwrap();
    assert!(matches!(
        router.rename("new/name", "third", false),
        Err(FsError::AlreadyExists(_))
    ));
    let displaced = router.rename("new/name", "third", true).unwrap();
    assert!(displaced.is_some());
    assert_eq!(router.lookup("third").unwrap().size, 77);
    assert_eq!(plane.file_count(), 1);
}
